"""Table 1: SQL provenance capture on TPC-H and TPC-C.

Paper (their testbed):

    Dataset   #Queries   Latency   Size (nodes+edges)
    TPC-H     2,208      110 s     22,330
    TPC-C     2,200      124 s     34,785

Shape targets: per-query capture latency is significant; the provenance
graph grows large (tens of thousands of elements for ~2.2k queries); TPC-C's
graph is *larger* despite similar query counts, because every write spawns
new version entities (the temporal data model, C1).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from flock.db import Database
from flock.provenance import ProvenanceCatalog, SQLProvenanceCapture
from flock.workloads import (
    create_tpcc_schema,
    create_tpch_schema,
    generate_tpcc_transactions,
    generate_tpch_queries,
)

TPCH_QUERIES = 2208
TPCC_QUERIES = 2200


def _capture_tpch():
    db = Database()
    create_tpch_schema(db)
    catalog = ProvenanceCatalog()
    capture = SQLProvenanceCapture(catalog, database=db)
    summary = capture.capture_many(generate_tpch_queries(TPCH_QUERIES))
    return summary, catalog


def _capture_tpcc():
    db = Database()
    create_tpcc_schema(db)
    catalog = ProvenanceCatalog()
    capture = SQLProvenanceCapture(catalog, database=db)
    summary = capture.capture_many(generate_tpcc_transactions(TPCC_QUERIES))
    return summary, catalog


@pytest.fixture(scope="module")
def table1():
    tpch, _ = _capture_tpch()
    tpcc, _ = _capture_tpcc()
    lines = [
        "Table 1: SQL provenance capture (eager mode)",
        f"{'Dataset':>8} | {'#Queries':>8} | {'Latency':>9} | "
        f"{'Size (nodes+edges)':>18}",
        f"{'TPC-H':>8} | {tpch.query_count:>8} | {tpch.total_seconds:>8.2f}s | "
        f"{tpch.graph_size:>18}",
        f"{'TPC-C':>8} | {tpcc.query_count:>8} | {tpcc.total_seconds:>8.2f}s | "
        f"{tpcc.graph_size:>18}",
        "",
        "Paper: TPC-H 2,208 q / 110 s / 22,330 — TPC-C 2,200 q / 124 s / 34,785",
        f"TPC-C / TPC-H size ratio: "
        f"{tpcc.graph_size / tpch.graph_size:.2f} (paper: 1.56)",
    ]
    write_report("table1_sql_provenance", lines)
    return tpch, tpcc


class TestTable1:
    def test_query_counts(self, table1):
        tpch, tpcc = table1
        assert tpch.query_count == TPCH_QUERIES
        assert tpcc.query_count == TPCC_QUERIES

    def test_graphs_substantially_large(self, table1):
        """The paper's finding (b): tens of thousands of elements."""
        tpch, tpcc = table1
        assert tpch.graph_size > 10_000
        assert tpcc.graph_size > 10_000

    def test_tpcc_larger_due_to_versioning(self, table1):
        """The paper's ordering: TPC-C's write-heavy stream versions tables
        on every statement, out-growing read-only TPC-H."""
        tpch, tpcc = table1
        assert tpcc.graph_size > tpch.graph_size

    def test_latency_scales_with_queries(self, table1):
        tpch, tpcc = table1
        assert tpch.seconds_per_query > 0
        assert tpcc.seconds_per_query > 0


def bench_tpch_capture(benchmark):
    """Eager capture of a 220-query TPC-H batch (1/10th of Table 1)."""

    def run():
        db = Database()
        create_tpch_schema(db)
        catalog = ProvenanceCatalog()
        capture = SQLProvenanceCapture(catalog, database=db)
        return capture.capture_many(generate_tpch_queries(220))

    benchmark(run)


def bench_tpcc_capture(benchmark):
    def run():
        db = Database()
        create_tpcc_schema(db)
        catalog = ProvenanceCatalog()
        capture = SQLProvenanceCapture(catalog, database=db)
        return capture.capture_many(generate_tpcc_transactions(220))

    benchmark(run)


def bench_table1_report(benchmark, table1):
    """Materializes the Table 1 report and times single-query capture."""
    catalog = ProvenanceCatalog()
    capture = SQLProvenanceCapture(catalog)
    query = generate_tpch_queries(1)[0]
    benchmark(lambda: capture.capture_query(query))
