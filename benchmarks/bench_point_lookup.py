"""Indexed point/IN-list lookups vs full scans at one million rows.

The workload is the serving layer's bread and butter: point lookups by
primary key (``WHERE id = ?``) and small IN-lists (``WHERE id IN (...)``)
against a large table. With ``flock.indexes = 1`` (the default) the
optimizer routes eligible predicates through a hash index
(:class:`flock.db.index.HashIndex`); with ``flock.indexes = 0`` the same
statements take the full-scan path.

The gated comparison runs through :meth:`Database.execute_plan` — the
prepared-statement hot path the serving plan cache uses — so both sides pay
identical fixed costs (lock, snapshot, audit) and the measured difference
is purely the access path. One-shot ``execute()`` timings (parse + bind +
optimize every call) are reported for context but not gated: per-statement
overhead is shared by both paths and dilutes the ratio. Results must match
row for row across access paths.

Acceptance gate (ISSUE.md): >=10x speedup for indexed point and IN-list
lookups vs the full scan at 1M rows. A zone-map range scan is reported for
context (not gated — pruning wins depend on clustering).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import cpu_count, write_json_report, write_report
from flock.db import Database
from flock.db.binder import Binder
from flock.db.sql.parser import parse_statement
from flock.db.types import DataType
from flock.db.vector import ColumnVector

ROWS = 1_000_000
REPEATS = 20
QUERIES = {
    "point": "SELECT id, v, x FROM points WHERE id = 123457",
    "inlist": (
        "SELECT COUNT(*) FROM points WHERE id IN "
        "(11, 222222, 333333, 444444, 987654)"
    ),
    "range": "SELECT COUNT(*) FROM points WHERE id > 990000",
}


def _build_engine() -> Database:
    """1M rows loaded by publishing pre-built vectors (benchmark setup only;
    SQL-level loading would dominate the measured section's runtime)."""
    db = Database()
    db.execute(
        "CREATE TABLE points (id INTEGER PRIMARY KEY, v INTEGER, x FLOAT)"
    )
    rng = np.random.default_rng(7)
    no_nulls = np.zeros(ROWS, dtype=bool)
    fresh = [
        ColumnVector(
            DataType.INTEGER, np.arange(1, ROWS + 1, dtype=np.int64), no_nulls
        ),
        ColumnVector(
            DataType.INTEGER, rng.integers(0, 1000, ROWS), no_nulls
        ),
        ColumnVector(DataType.FLOAT, rng.uniform(0, 1, ROWS), no_nulls),
    ]
    table = db.catalog.table("points")
    table.publish(table.build_append(fresh))
    return db


def _prepare(db: Database, sql: str, indexes: bool):
    """Bind + optimize once, with index selection forced on or off."""
    db._indexes_enabled = indexes
    try:
        bound = Binder(db, None).bind_query(parse_statement(sql))
        return db.optimizer.optimize(bound, db)
    finally:
        db._indexes_enabled = True


def _best_plan(db: Database, plan, sql: str) -> tuple[float, str]:
    db.execute_plan(plan, sql=sql)  # warm up (index build / stats caches)
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = db.execute_plan(plan, sql=sql)
        best = min(best, time.perf_counter() - start)
    return best, repr(result.rows())


def _best_execute(db: Database, sql: str) -> float:
    db.execute(sql)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        db.execute(sql)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def lookup_report() -> dict:
    db = _build_engine()
    report: dict = {
        "rows": ROWS,
        "repeats": REPEATS,
        "cpu_count": cpu_count(),
        # The >=10x index-vs-scan gate compares two access paths on the
        # same host, so it applies regardless of core count.
        "gate": {
            "threshold_speedup": 10.0,
            "queries": ["point", "inlist"],
            "applied": True,
            "skipped_reason": None,
        },
        "queries": {},
    }
    for name, sql in QUERIES.items():
        indexed_plan = _prepare(db, sql, indexes=True)
        scan_plan = _prepare(db, sql, indexes=False)
        indexed_s, indexed_rows = _best_plan(db, indexed_plan, sql)
        scan_s, scan_rows = _best_plan(db, scan_plan, sql)
        onehot_indexed_s = _best_execute(db, sql)
        db.execute("SET flock.indexes = 0")
        onehot_scan_s = _best_execute(db, sql)
        db.execute("SET flock.indexes = 1")
        report["queries"][name] = {
            "sql": sql,
            "indexed_s": indexed_s,
            "scan_s": scan_s,
            "speedup": scan_s / indexed_s,
            "one_shot_indexed_s": onehot_indexed_s,
            "one_shot_scan_s": onehot_scan_s,
            "one_shot_speedup": onehot_scan_s / onehot_indexed_s,
            "results_match": indexed_rows == scan_rows,
        }
    db.close()

    lines = [
        "Point/IN-list lookups: hash index vs full scan "
        "(bench_point_lookup.py)",
        f"rows: {ROWS}   best of {REPEATS}   "
        "(prepared-plan path; one-shot execute() in parentheses)",
        "",
        f"{'query':<8}{'indexed_ms':>12}{'scan_ms':>10}{'speedup':>9}"
        f"{'one-shot':>10}{'match':>7}",
    ]
    for name, q in report["queries"].items():
        lines.append(
            f"{name:<8}{q['indexed_s'] * 1000:>12.3f}"
            f"{q['scan_s'] * 1000:>10.3f}{q['speedup']:>8.1f}x"
            f"{q['one_shot_speedup']:>9.1f}x"
            f"{'yes' if q['results_match'] else 'NO':>7}"
        )
    write_report("point_lookup", lines)
    write_json_report("point_lookup", report)
    return report


class TestPointLookup:
    def test_results_identical_across_access_paths(self, lookup_report):
        for name, q in lookup_report["queries"].items():
            assert q["results_match"], name

    def test_point_lookup_speedup(self, lookup_report):
        speedup = lookup_report["queries"]["point"]["speedup"]
        assert speedup >= 10.0, f"point: {speedup:.1f}x"

    def test_inlist_lookup_speedup(self, lookup_report):
        speedup = lookup_report["queries"]["inlist"]["speedup"]
        assert speedup >= 10.0, f"inlist: {speedup:.1f}x"


def bench_point_lookup(benchmark, lookup_report):
    """Benchmark the indexed point lookup (report already written)."""
    db = _build_engine()
    try:
        sql = QUERIES["point"]
        plan = _prepare(db, sql, indexes=True)
        db.execute_plan(plan, sql=sql)  # build the index outside the loop
        benchmark(lambda: db.execute_plan(plan, sql=sql))
    finally:
        db.close()
