"""Serving throughput: FlockServer vs sequential engine calls.

The workload is the paper's canonical enterprise serving scenario (§2, §4.1):
a deployed classification model behind a stream of concurrent point
predictions — ``SELECT applicant_id, PREDICT(loan_model) AS p FROM loans
WHERE applicant_id = ?``. The baseline executes requests one at a time
through the engine (parse + bind + optimize + score per request); the
serving layer runs the same requests from 16 client threads through
:class:`flock.serving.FlockServer`, which reuses cached plans and coalesces
concurrent point lookups into vectorized IN-list scans.

Acceptance gate (ISSUE.md): ≥2× served throughput at concurrency 16 with a
plan-cache hit rate above 90% after warmup.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, cpu_count, write_json_report, write_report
from flock.serving.bench import render_benchmark, run_serving_benchmark

REQUESTS = 1_600 if FULL else 800
N_ROWS = 20_000 if FULL else 5_000


@pytest.fixture(scope="module")
def serving_report() -> dict:
    report = run_serving_benchmark(
        requests=REQUESTS,
        concurrency=16,
        n_rows=N_ROWS,
        workers=8,
        max_batch_size=32,
        batch_wait_ms=2.0,
    )
    report["cpu_count"] = cpu_count()
    # Plan-cache reuse and micro-batching beat per-request parse/bind
    # even on one core, so the >=2x gate applies on any host.
    report["gate"] = {
        "threshold_speedup": 2.0,
        "at_concurrency": 16,
        "min_hit_rate": 0.90,
        "applied": True,
        "skipped_reason": None,
    }
    write_report("serving_throughput", render_benchmark(report))
    write_json_report("serving_throughput", report)
    return report


class TestServingThroughput:
    def test_speedup_at_concurrency_16(self, serving_report):
        assert serving_report["concurrency"] == 16
        assert serving_report["speedup"] >= 2.0

    def test_plan_cache_hit_rate(self, serving_report):
        assert serving_report["hit_rate"] > 0.90

    def test_batching_engaged(self, serving_report):
        assert serving_report["batched_requests"] > 0
        assert serving_report["mean_batch_size"] > 1.0


def bench_serving_throughput(benchmark, serving_report):
    """Benchmark one served burst (fixture already wrote the report)."""
    from flock.serving import FlockServer
    from flock.serving.bench import POINT_QUERY, build_serving_fixture

    session = build_serving_fixture(n_rows=2_000)
    with FlockServer(session, workers=8, batch_wait_ms=1.0) as server:
        server.execute(POINT_QUERY, [1])  # warm the plan cache

        def burst():
            futures = [
                server.submit(POINT_QUERY, [k % 2_000 + 1]) for k in range(64)
            ]
            for future in futures:
                future.result()

        benchmark(burst)
