"""Compressed columnar scans vs plain storage on a lineitem-class table.

The workload is the analytical half of the paper's enterprise picture: a
TPC-H ``lineitem``-shaped fact table (low-cardinality flag/status/shipmode
TEXT columns, small-domain integers, dates, one float measure) scanned by
selective text filters and the Q1-style grouped aggregation. With
``FLOCK_ENCODINGS=1`` (the default) the staged table dictionary-encodes
the text columns and frame-of-reference packs the integers/dates, and the
executor's late-decode fast paths evaluate predicates once per dictionary
entry and group by codes; with ``FLOCK_ENCODINGS=0`` the same statements
run over plain vectors.

Results must match row for row — the encoded engine is the same engine,
bit-identically, just smaller and faster.

Acceptance gates (ISSUE.md): >=3x speedup for the filtered scan and the
grouped aggregation, and >=2x resident-memory reduction for the table's
head version. Both compare two storage layouts on the same host, so they
apply regardless of core count; the honest skip is taken only when the
``FLOCK_ENCODINGS=0`` kill-switch lane runs this file (there is nothing
encoded to measure against).
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import cpu_count, write_json_report, write_report
from flock.db import Database
from flock.db.encoding import encoding_of, vector_nbytes
from flock.db.encoding import _env_enabled as encodings_lane

ROWS = 60_000
REPEATS = 7

RETURNFLAGS = ["A", "N", "R"]
LINESTATUSES = ["F", "O"]
SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]

QUERIES = {
    "filter_eq": (
        "SELECT COUNT(*), SUM(l_quantity) FROM lineitem "
        "WHERE l_returnflag = 'R'"
    ),
    "filter_in": (
        "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem "
        "WHERE l_shipmode IN ('AIR', 'MAIL')"
    ),
    "groupby_q1": (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
        "SUM(l_extendedprice), AVG(l_extendedprice), COUNT(*) "
        "FROM lineitem GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    ),
    "topk": (
        "SELECT l_orderkey, l_shipmode FROM lineitem "
        "ORDER BY l_shipmode, l_orderkey LIMIT 25"
    ),
}

#: Gated queries: the text-predicate scan and the grouped aggregation are
#: the shapes the late-decode fast paths exist for. The IN-list and top-k
#: rows are reported for context.
GATED = ["filter_eq", "groupby_q1"]


def _build_engine(encodings: bool) -> Database:
    db = Database(encodings=encodings)
    db.execute(
        "CREATE TABLE lineitem (l_orderkey INT, l_quantity INT, "
        "l_extendedprice FLOAT, l_returnflag TEXT, l_linestatus TEXT, "
        "l_shipmode TEXT, l_shipdate DATE)"
    )
    rng = random.Random(19)
    db.executemany(
        "INSERT INTO lineitem VALUES (?, ?, ?, ?, ?, ?, ?)",
        [
            (
                i // 4,
                rng.randrange(1, 51),
                round(rng.uniform(900.0, 105_000.0), 2),
                rng.choice(RETURNFLAGS),
                rng.choice(LINESTATUSES),
                rng.choice(SHIPMODES),
                f"199{rng.randrange(2, 9)}-{rng.randrange(1, 13):02d}-"
                f"{rng.randrange(1, 29):02d}",
            )
            for i in range(ROWS)
        ],
    )
    return db


def _best(db: Database, sql: str) -> tuple[float, str]:
    rows = db.execute(sql).rows()  # warm up (stats, zone maps)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        rows = db.execute(sql).rows()
        best = min(best, time.perf_counter() - start)
    return best, repr(rows)


def _head_bytes(db: Database) -> tuple[int, dict[str, str | None]]:
    head = db.catalog.table("lineitem").head_version
    total = sum(vector_nbytes(c) for c in head.columns)
    encodings = {
        field.name: encoding_of(column)
        for field, column in zip(head.schema.columns, head.columns)
    }
    return total, encodings


@pytest.fixture(scope="module")
def columnar_report() -> dict:
    report: dict = {
        "rows": ROWS,
        "repeats": REPEATS,
        "cpu_count": cpu_count(),
        "gate": {
            "threshold_speedup": 3.0,
            "threshold_memory_reduction": 2.0,
            "queries": GATED,
            "applied": encodings_lane(),
            "skipped_reason": None if encodings_lane() else (
                "FLOCK_ENCODINGS=0 lane: plain storage on both sides, "
                "nothing encoded to measure"
            ),
        },
        "queries": {},
    }
    encoded = _build_engine(encodings=True)
    plain = _build_engine(encodings=False)

    encoded_bytes, encoded_layout = _head_bytes(encoded)
    plain_bytes, _ = _head_bytes(plain)
    report["memory"] = {
        "encoded_bytes": encoded_bytes,
        "plain_bytes": plain_bytes,
        "reduction": plain_bytes / encoded_bytes,
        "encodings": encoded_layout,
    }

    for name, sql in QUERIES.items():
        encoded_s, encoded_rows = _best(encoded, sql)
        plain_s, plain_rows = _best(plain, sql)
        report["queries"][name] = {
            "sql": sql,
            "encoded_s": encoded_s,
            "plain_s": plain_s,
            "speedup": plain_s / encoded_s,
            "results_match": encoded_rows == plain_rows,
        }
    encoded.close()
    plain.close()

    memory = report["memory"]
    lines = [
        "Compressed columnar scans vs plain storage "
        "(bench_columnar_scan.py)",
        f"rows: {ROWS}   best of {REPEATS}",
        "",
        f"resident bytes: plain={memory['plain_bytes']}  "
        f"encoded={memory['encoded_bytes']}  "
        f"reduction={memory['reduction']:.1f}x",
        "encodings: " + ", ".join(
            f"{col}={enc or 'plain'}"
            for col, enc in memory["encodings"].items()
        ),
        "",
        f"{'query':<12}{'encoded_ms':>12}{'plain_ms':>10}{'speedup':>9}"
        f"{'match':>7}",
    ]
    for name, q in report["queries"].items():
        lines.append(
            f"{name:<12}{q['encoded_s'] * 1000:>12.3f}"
            f"{q['plain_s'] * 1000:>10.3f}{q['speedup']:>8.1f}x"
            f"{'yes' if q['results_match'] else 'NO':>7}"
        )
    write_report("columnar_scan", lines)
    write_json_report("columnar_scan", report)
    return report


class TestColumnarScan:
    def test_results_identical_across_layouts(self, columnar_report):
        for name, q in columnar_report["queries"].items():
            assert q["results_match"], name

    def test_text_columns_dictionary_encoded(self, columnar_report):
        if not columnar_report["gate"]["applied"]:
            pytest.skip(columnar_report["gate"]["skipped_reason"])
        layout = columnar_report["memory"]["encodings"]
        for column in ("l_returnflag", "l_linestatus", "l_shipmode"):
            assert layout[column] == "dict", layout

    def test_scan_and_groupby_speedup(self, columnar_report):
        if not columnar_report["gate"]["applied"]:
            pytest.skip(columnar_report["gate"]["skipped_reason"])
        for name in GATED:
            speedup = columnar_report["queries"][name]["speedup"]
            assert speedup >= 3.0, f"{name}: {speedup:.1f}x"

    def test_memory_reduction(self, columnar_report):
        if not columnar_report["gate"]["applied"]:
            pytest.skip(columnar_report["gate"]["skipped_reason"])
        reduction = columnar_report["memory"]["reduction"]
        assert reduction >= 2.0, f"{reduction:.2f}x"
