"""DB substrate micro-benchmarks: TPC-H queries, optimizer on/off, DML.

Sanity checks for the relational engine underneath the headline results:
the rule optimizer must not regress query latency, and the engine must
sustain the TPC-C write path that the provenance experiment leans on.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

TPCH_SCALE = float(os.environ.get("FLOCK_TPCH_SCALE", "0.002"))

from benchmarks.conftest import write_report
from flock.db import Database
from flock.db.optimizer.rules import Optimizer
from flock.workloads import (
    create_tpcc_schema,
    create_tpch_schema,
    generate_tpcc_data,
    generate_tpcc_transactions,
    generate_tpch_data,
    tpch_query,
)


@pytest.fixture(scope="module")
def tpch_db():
    db = Database()
    create_tpch_schema(db)
    generate_tpch_data(db, scale=TPCH_SCALE, seed=3)
    return db


@pytest.fixture(scope="module")
def engine_report(tpch_db):
    rng = np.random.default_rng(0)
    queries = {t: tpch_query(t, rng) for t in (1, 3, 5, 6, 10, 18)}
    lines = [
        f"DB engine micro-benchmark: TPC-H (scale {TPCH_SCALE}) latency, "
        "optimizer on vs off",
        f"{'query':>6} | {'optimized':>10} | {'naive':>10}",
    ]
    naive = Optimizer(
        enable_predicate_pushdown=False,
        enable_projection_pruning=False,
        enable_join_rules=False,
    )
    timings = {}
    for template_id, sql in queries.items():
        tpch_db.optimizer = Optimizer()
        tpch_db.execute(sql)
        started = time.perf_counter()
        optimized_rows = tpch_db.execute(sql).rows()
        optimized = time.perf_counter() - started

        tpch_db.optimizer = naive
        tpch_db.execute(sql)
        started = time.perf_counter()
        naive_rows = tpch_db.execute(sql).rows()
        unoptimized = time.perf_counter() - started
        tpch_db.optimizer = Optimizer()

        assert optimized_rows == naive_rows
        timings[template_id] = (optimized, unoptimized)
        lines.append(
            f"{'Q' + str(template_id):>6} | {optimized * 1000:>8.1f}ms | "
            f"{unoptimized * 1000:>8.1f}ms"
        )
    write_report("db_engine", lines)
    return timings


class TestEngineMicro:
    def test_optimizer_never_pathological(self, engine_report):
        for template_id, (optimized, naive) in engine_report.items():
            assert optimized <= naive * 3.0, f"Q{template_id} regressed"

    def test_join_heavy_queries_benefit(self, engine_report):
        # Q5 is a 6-way join: rewrites should win clearly.
        optimized, naive = engine_report[5]
        assert optimized <= naive


def bench_tpch_q1_aggregate(benchmark, tpch_db):
    sql = tpch_query(1, np.random.default_rng(1))
    benchmark(lambda: tpch_db.execute(sql))


def bench_tpch_q3_join(benchmark, tpch_db):
    sql = tpch_query(3, np.random.default_rng(1))
    benchmark(lambda: tpch_db.execute(sql))


def bench_tpch_q6_scan_filter(benchmark, tpch_db):
    sql = tpch_query(6, np.random.default_rng(1))
    benchmark(lambda: tpch_db.execute(sql))


def bench_tpcc_transaction_stream(benchmark):
    db = Database()
    create_tpcc_schema(db)
    generate_tpcc_data(db)
    statements = generate_tpcc_transactions(60, seed=5)

    def run():
        for sql in statements:
            db.execute(sql)

    benchmark.pedantic(run, rounds=3, iterations=1)


def bench_insert_throughput(benchmark):
    db = Database()
    db.execute("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
    values = ", ".join(
        f"({i}, {float(i)}, 'row{i}')" for i in range(1000)
    )
    sql = f"INSERT INTO t VALUES {values}"
    benchmark(lambda: db.execute(sql))
