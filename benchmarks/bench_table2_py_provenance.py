"""Table 2: Python provenance coverage.

Paper (their corpora):

    Dataset     #Scripts   %Models Covered   %Training Datasets Covered
    Kaggle      49         95%               61%
    Microsoft   37         100%              100%

Shape targets: near-total model coverage but markedly lower dataset coverage
on the heterogeneous (Kaggle-like) corpus; full coverage on the uniform
enterprise corpus. Coverage here is *measured* against ground truth, not
asserted: the synthetic corpora contain the same adversarial constructs
(dynamic constructors, runtime-built paths, non-KB loaders) that defeat
static analysis in the wild.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from flock.corpus.scripts import (
    enterprise_corpus,
    evaluate_coverage,
    kaggle_like_corpus,
)
from flock.provenance import PythonProvenanceCapture


@pytest.fixture(scope="module")
def table2():
    analyzer = PythonProvenanceCapture()
    kaggle = evaluate_coverage(kaggle_like_corpus(49), analyzer)
    enterprise = evaluate_coverage(enterprise_corpus(37), analyzer)
    lines = [
        "Table 2: Python provenance coverage",
        f"{'Dataset':>12} | {'#Scripts':>8} | {'%Models':>8} | {'%Datasets':>9}",
        f"{'Kaggle-like':>12} | {kaggle.scripts:>8} | "
        f"{kaggle.model_coverage * 100:>7.0f}% | "
        f"{kaggle.dataset_coverage * 100:>8.0f}%",
        f"{'Enterprise':>12} | {enterprise.scripts:>8} | "
        f"{enterprise.model_coverage * 100:>7.0f}% | "
        f"{enterprise.dataset_coverage * 100:>8.0f}%",
        "",
        "Paper: Kaggle 49 / 95% / 61% — Microsoft 37 / 100% / 100%",
        "",
        "Missed (first 8):",
    ]
    lines.extend(f"  {f}" for f in kaggle.failures[:8])
    write_report("table2_py_provenance", lines)
    return kaggle, enterprise


class TestTable2:
    def test_corpus_sizes(self, table2):
        kaggle, enterprise = table2
        assert kaggle.scripts == 49
        assert enterprise.scripts == 37

    def test_kaggle_model_coverage_near_95(self, table2):
        kaggle, _ = table2
        assert 0.90 <= kaggle.model_coverage < 1.0

    def test_kaggle_dataset_coverage_near_61(self, table2):
        kaggle, _ = table2
        assert 0.50 <= kaggle.dataset_coverage <= 0.75

    def test_enterprise_full_coverage(self, table2):
        _, enterprise = table2
        assert enterprise.model_coverage == 1.0
        assert enterprise.dataset_coverage == 1.0

    def test_dataset_coverage_below_model_coverage(self, table2):
        kaggle, _ = table2
        assert kaggle.dataset_coverage < kaggle.model_coverage


def bench_kaggle_corpus_analysis(benchmark, table2):
    analyzer = PythonProvenanceCapture()
    corpus = kaggle_like_corpus(49)
    benchmark(lambda: evaluate_coverage(corpus, analyzer))


def bench_single_script_analysis(benchmark):
    analyzer = PythonProvenanceCapture()
    source = kaggle_like_corpus(1)[0].source
    benchmark(lambda: analyzer.analyze_script(source))
