"""Figure 4: in-database inference vs standalone scoring.

Left panel: total inference time vs dataset size for four regimes —
``scikit-learn`` (standalone Python library: data exfiltrated from the DBMS,
then the fitted pipeline scores it), ``ORT`` (standalone model-graph
runtime, same exfiltration), ``SONNX`` (in-DBMS PREDICT, cross-optimizer
off: vectorized scoring inside the engine, no exfiltration), ``SONNX-ext``
(in-DBMS PREDICT with the full cross-optimizer: UDF inlining + predicate
push-up + input pruning).

Right panel: speedup over the scikit-learn baseline at the largest size for
``Inline SQL`` (inlining only) and ``Optimized`` (everything). The paper
reports 1× / 17× / 24×; the *ordering and growth* are the reproduction
target (our substrate is an in-process Python engine, not SQL Server).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import FULL, write_report
from flock import create_database
from flock.inference import CrossOptimizer
from flock.ml import LogisticRegression, Pipeline, StandardScaler
from flock.ml.datasets import make_loans
from flock.mlgraph import GraphRuntime, to_graph

SIZES = [1_000, 10_000, 100_000] + ([1_000_000] if FULL else [])
FEATURES = ["income", "credit_score", "loan_amount", "debt_ratio",
            "years_employed"]
QUERY = (
    "SELECT applicant_id, PREDICT(loan_model) AS p FROM loans "
    "WHERE PREDICT(loan_model) > 0.5"
)


def _make_database(n_rows: int, cross_optimizer: CrossOptimizer):
    """A database holding n_rows of loans + a deployed linear pipeline."""
    base = make_loans(2_000, random_state=0)
    pipeline = Pipeline(
        [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
    ).fit(base.feature_matrix(), base.target_vector())

    database, registry = create_database(cross_optimizer)
    database.execute(
        "CREATE TABLE loans (applicant_id INTEGER, income FLOAT, "
        "credit_score FLOAT, loan_amount FLOAT, debt_ratio FLOAT, "
        "years_employed FLOAT, region TEXT)"
    )
    # Bulk-load by staging directly (we are benchmarking scoring, not INSERT
    # parsing).
    rng = np.random.default_rng(1)
    X = base.feature_matrix()
    idx = rng.integers(0, len(X), size=n_rows)
    rows = [
        (
            int(i + 1),
            float(X[j, 0]), float(X[j, 1]), float(X[j, 2]),
            float(X[j, 3]), float(X[j, 4]),
            "north",
        )
        for i, j in enumerate(idx)
    ]
    table = database.catalog.table("loans")
    table.publish(table.build_insert(rows))

    graph = to_graph(pipeline, FEATURES, name="loan_model")
    registry.deploy("loan_model", graph)
    return database, pipeline, graph


def _exfiltrate(database) -> np.ndarray:
    """What a standalone scorer must do: pull the rows out of the DBMS."""
    result = database.execute(
        "SELECT income, credit_score, loan_amount, debt_ratio, "
        "years_employed FROM loans"
    )
    return np.array(result.rows(), dtype=np.float64)


def _time(fn, warmup: bool = True) -> float:
    """Steady-state timing: one warmup run (plan caches, table statistics),
    then one measured run — matching the paper's total-inference-time metric."""
    if warmup:
        fn()
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


_OFF = dict(
    enable_compression=False,
    enable_pruning=False,
    enable_inlining=False,
    enable_strategy_selection=False,
)


@pytest.fixture(scope="module")
def figure4_series():
    """Measure all four regimes across sizes once; benches then sample."""
    series: dict[str, dict[int, float]] = {
        "scikit-learn": {}, "ORT": {}, "SONNX": {}, "SONNX-ext": {},
    }
    for n in SIZES:
        plain_db, pipeline, graph = _make_database(n, CrossOptimizer(**_OFF))
        opt_db, _, _ = _make_database(n, CrossOptimizer())

        def sklearn_regime():
            X = _exfiltrate(plain_db)
            p = pipeline.predict_proba(X)[:, 1]
            return p[p > 0.5]

        def ort_regime():
            X = _exfiltrate(plain_db)
            rt = GraphRuntime()
            out = rt.run(graph, {f: X[:, i] for i, f in enumerate(FEATURES)})
            p = out[[t for f, t in graph.output_field_names()
                     if f == "probability"][0]]
            return p[p > 0.5]

        series["scikit-learn"][n] = _time(sklearn_regime)
        series["ORT"][n] = _time(ort_regime)
        series["SONNX"][n] = _time(lambda: plain_db.execute(QUERY))
        series["SONNX-ext"][n] = _time(lambda: opt_db.execute(QUERY))

    lines = ["Figure 4 (left): total inference time (ms) vs dataset size"]
    header = f"{'rows':>10} | " + " | ".join(
        f"{k:>12}" for k in series
    )
    lines.append(header)
    for n in SIZES:
        lines.append(
            f"{n:>10} | "
            + " | ".join(f"{series[k][n] * 1000:>10.1f}ms" for k in series)
        )
    biggest = SIZES[-1]
    base = series["scikit-learn"][biggest]
    lines.append("")
    lines.append(
        f"Figure 4 (right): speedup vs scikit-learn at {biggest} rows "
        f"(paper: SONNX 17x, SONNX-ext 24x on their testbed)"
    )
    for regime in ("ORT", "SONNX", "SONNX-ext"):
        lines.append(
            f"  {regime:>10}: {base / series[regime][biggest]:.1f}x"
        )
    write_report("fig4_inference", lines)
    return series


class TestFigure4:
    def test_shape_in_db_beats_standalone(self, figure4_series):
        """Who wins: in-DBMS scoring beats exfiltrate-and-score."""
        biggest = SIZES[-1]
        assert figure4_series["SONNX"][biggest] < (
            figure4_series["scikit-learn"][biggest]
        )
        assert figure4_series["SONNX-ext"][biggest] <= (
            figure4_series["SONNX"][biggest] * 1.5
        )

    def test_shape_optimizations_add_speedup(self, figure4_series):
        biggest = SIZES[-1]
        base = figure4_series["scikit-learn"][biggest]
        sonnx_speedup = base / figure4_series["SONNX"][biggest]
        ext_speedup = base / figure4_series["SONNX-ext"][biggest]
        assert ext_speedup >= sonnx_speedup * 0.9  # ext never meaningfully worse
        assert ext_speedup > 2.0  # clear win over standalone


@pytest.fixture(scope="module")
def medium_setup():
    n = 50_000
    plain_db, pipeline, graph = _make_database(n, CrossOptimizer(**_OFF))
    opt_db, _, _ = _make_database(n, CrossOptimizer())
    return plain_db, opt_db, pipeline, graph


def bench_sklearn_standalone(benchmark, medium_setup):
    plain_db, _, pipeline, _ = medium_setup

    def run():
        X = _exfiltrate(plain_db)
        return pipeline.predict_proba(X)[:, 1]

    benchmark(run)


def bench_ort_standalone(benchmark, medium_setup):
    plain_db, _, _, graph = medium_setup
    rt = GraphRuntime()

    def run():
        X = _exfiltrate(plain_db)
        return rt.run(graph, {f: X[:, i] for i, f in enumerate(FEATURES)})

    benchmark(run)


def bench_sonnx_in_db(benchmark, medium_setup):
    plain_db, *_ = medium_setup
    benchmark(lambda: plain_db.execute(QUERY))


def bench_sonnx_ext_in_db(benchmark, medium_setup):
    _, opt_db, *_ = medium_setup
    benchmark(lambda: opt_db.execute(QUERY))


def bench_fig4_full_sweep(benchmark, figure4_series, medium_setup):
    """Runs the whole Figure 4 sweep (via the fixture, which also writes
    benchmarks/results/fig4_inference.txt) and benchmarks the headline
    regime once more for the record."""
    _, opt_db, *_ = medium_setup
    benchmark(lambda: opt_db.execute(QUERY))
