"""Replica read scaling: analytic read QPS through the cluster router.

Runs :func:`flock.cluster.bench.run_replica_scaling_benchmark` at 1/2/4
followers over one seeded durable directory and writes the report (text +
JSON, including the committed ``BENCH_replica_scaling.json`` artifact).

The ≥2.5× read-QPS gate at 4 replicas applies on hosts with ≥4 usable
cores running the worker-process backend (the default wherever flock.proc
is available; ``--process``/``--no-process`` override). Thread followers
share one GIL and fewer than 4 cores cannot serve 4 replicas concurrently
— in either case the gate skips with its reason recorded in the JSON
instead of passing vacuously, and ``benchmarks/conftest.py`` refuses a
skip on a multicore host where the process backend exists. Result
*correctness* (every topology returns the same aggregates) is asserted on
any host.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, write_json_report, write_report
from flock.cluster.bench import (
    READ_QUERIES,
    render_replica_benchmark,
    run_replica_scaling_benchmark,
    usable_cores,
)

REPLICA_COUNTS = (1, 2, 4)
REQUESTS = 480 if FULL else 240
N_ROWS = 80_000 if FULL else 40_000
GATE_SPEEDUP = 2.5
GATE_AT = 4


@pytest.fixture(scope="module")
def replica_report(request) -> dict:
    report = run_replica_scaling_benchmark(
        replica_counts=REPLICA_COUNTS,
        requests=REQUESTS,
        concurrency=8,
        n_rows=N_ROWS,
        process=request.config.getoption("flock_process", default=None),
    )
    cores = report["cores"]
    backend = report["backend"]
    applied = cores >= 4 and backend == "process"
    if applied:
        skipped_reason = None
    elif cores < 4:
        skipped_reason = (
            f"host has {cores} usable core(s); replicas cannot scale "
            "reads below 4"
        )
    else:
        skipped_reason = (
            "thread backend: followers share one GIL and cannot scale "
            "reads; run with the process backend to gate"
        )
    report["cpu_count"] = cores
    report["gate"] = {
        "threshold_speedup": GATE_SPEEDUP,
        "at_replicas": GATE_AT,
        "requires_cores": 4,
        "requires_backend": "process",
        "applied": applied,
        "skipped_reason": skipped_reason,
    }
    write_report(
        "replica_scaling", render_replica_benchmark(report)
    )
    write_json_report("replica_scaling", report)
    return report


class TestReplicaScaling:
    def test_every_topology_measured(self, replica_report):
        counts = [r["replicas"] for r in replica_report["results"]]
        assert counts == list(REPLICA_COUNTS)
        for entry in replica_report["results"]:
            assert entry["read_qps"] > 0
            # The router must actually use the followers for this
            # read-only workload — primary serves nothing.
            assert entry["follower_served"] > 0

    def test_results_identical_across_topologies(self, tmp_path):
        # The same analytic answers at every replica count: routing must
        # not change query semantics.
        import flock
        from flock.cluster import FlockCluster
        from flock.cluster.bench import seed_primary

        root = tmp_path / "db"
        seed_primary(root, n_rows=4_000, random_state=3)
        expected = None
        for count in (1, 2):
            with FlockCluster(root, replicas=count) as cluster:
                cluster.wait_for_catchup(30.0)
                answers = [
                    repr(sorted(cluster.execute(sql).rows()))
                    for sql in READ_QUERIES
                ]
            if expected is None:
                expected = answers
            assert answers == expected, f"{count} replicas diverged"
        with flock.connect(root) as embedded:
            baseline = [
                repr(sorted(embedded.execute(sql).rows()))
                for sql in READ_QUERIES
            ]
        assert baseline == expected, "router diverged from embedded engine"

    def test_read_qps_gate_at_4_replicas(self, replica_report):
        gate = replica_report["gate"]
        if not gate["applied"]:
            pytest.skip(gate["skipped_reason"])
        by_count = {
            r["replicas"]: r for r in replica_report["results"]
        }
        scaling = by_count[GATE_AT]["scaling"]
        assert scaling >= GATE_SPEEDUP, (
            f"{scaling:.2f}x read QPS at {GATE_AT} replicas "
            f"(need >= {GATE_SPEEDUP}x)"
        )


def bench_replica_read_qps(benchmark, tmp_path_factory):
    """Benchmark one routed analytic read on a warm 2-replica cluster."""
    from flock.cluster import FlockCluster
    from flock.cluster.bench import seed_primary

    root = tmp_path_factory.mktemp("replica-bench") / "db"
    seed_primary(root, n_rows=8_000, random_state=5)
    with FlockCluster(root, replicas=2) as cluster:
        cluster.wait_for_catchup(30.0)
        cluster.execute(READ_QUERIES[0])
        benchmark(lambda: cluster.execute(READ_QUERIES[0]))
