"""Ablation: which cross-optimization buys what (§4.1's optimization list).

Runs the Figure 4 scoring query with each optimization enabled in isolation
and all together, for two model families — an inlinable linear pipeline and
a tree ensemble (where compression/pruning act but inlining declines).
Checks the key invariant (results identical under every configuration) and
reports the latency of each configuration.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import write_report
from flock import create_database
from flock.inference import CrossOptimizer
from flock.ml import (
    GradientBoostingClassifier,
    LogisticRegression,
    Pipeline,
    StandardScaler,
)
from flock.ml.datasets import make_loans
from flock.mlgraph import to_graph

N_ROWS = 30_000
QUERY = (
    "SELECT applicant_id, PREDICT(m) AS p FROM loans WHERE PREDICT(m) > 0.5"
)

CONFIGS = {
    "none": dict(enable_compression=False, enable_pruning=False,
                 enable_inlining=False, enable_strategy_selection=False),
    "+compression": dict(enable_compression=True, enable_pruning=False,
                         enable_inlining=False,
                         enable_strategy_selection=False),
    "+pruning": dict(enable_compression=False, enable_pruning=True,
                     enable_inlining=False, enable_strategy_selection=False),
    "+inlining": dict(enable_compression=False, enable_pruning=False,
                      enable_inlining=True, enable_strategy_selection=False),
    "+selection": dict(enable_compression=False, enable_pruning=False,
                       enable_inlining=False, enable_strategy_selection=True),
    "all": dict(enable_compression=True, enable_pruning=True,
                enable_inlining=True, enable_strategy_selection=True),
}


def _make_estimators():
    base = make_loans(2_000, random_state=0)
    X, y = base.feature_matrix(), base.target_vector()
    linear = Pipeline(
        [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
    ).fit(X, y)
    # A sparse variant: two features provably unused.
    sparse = Pipeline(
        [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
    ).fit(X, y)
    sparse.final_estimator.coef_[3] = 0.0
    sparse.final_estimator.coef_[4] = 0.0
    gbm = GradientBoostingClassifier(n_estimators=40, random_state=0).fit(X, y)
    return base, {"linear": linear, "sparse-linear": sparse, "gbm": gbm}


def _database_with(model, config, base, n_rows=N_ROWS):
    database, registry = create_database(CrossOptimizer(**config))
    database.execute(
        "CREATE TABLE loans (applicant_id INTEGER, income FLOAT, "
        "credit_score FLOAT, loan_amount FLOAT, debt_ratio FLOAT, "
        "years_employed FLOAT, region TEXT)"
    )
    rng = np.random.default_rng(2)
    X = base.feature_matrix()
    idx = rng.integers(0, len(X), size=n_rows)
    rows = [
        (int(i + 1), *(float(v) for v in X[j]), "north")
        for i, j in enumerate(idx)
    ]
    table = database.catalog.table("loans")
    table.publish(table.build_insert(rows))
    registry.deploy("m", to_graph(model, base.feature_names, name="m"))
    return database


@pytest.fixture(scope="module")
def ablation():
    base, estimators = _make_estimators()
    results: dict[str, dict[str, float]] = {}
    answers: dict[str, dict[str, list]] = {}
    for model_name, model in estimators.items():
        results[model_name] = {}
        answers[model_name] = {}
        for config_name, config in CONFIGS.items():
            database = _database_with(model, config, base)
            database.execute(QUERY)  # warmup (stats, caches)
            started = time.perf_counter()
            result = database.execute(QUERY)
            results[model_name][config_name] = time.perf_counter() - started
            answers[model_name][config_name] = result.rows()

    lines = ["Ablation: per-optimization latency of the scoring query (ms)"]
    header = f"{'model':>14} | " + " | ".join(
        f"{c:>13}" for c in CONFIGS
    )
    lines.append(header)
    for model_name, per_config in results.items():
        lines.append(
            f"{model_name:>14} | "
            + " | ".join(
                f"{per_config[c] * 1000:>11.1f}ms" for c in CONFIGS
            )
        )
    write_report("ablation_optimizations", lines)
    return results, answers


class TestAblation:
    def test_all_configs_identical_results(self, ablation):
        _, answers = ablation
        for model_name, per_config in answers.items():
            baseline = per_config["none"]
            for config_name, rows in per_config.items():
                assert len(rows) == len(baseline), (model_name, config_name)
                for (id_a, p_a), (id_b, p_b) in zip(rows, baseline):
                    assert id_a == id_b
                    assert p_a == pytest.approx(p_b, abs=1e-9)

    def test_inlining_speeds_up_linear(self, ablation):
        results, _ = ablation
        linear = results["linear"]
        assert linear["+inlining"] < linear["none"] * 1.1

    def test_full_stack_not_worse_than_none(self, ablation):
        results, _ = ablation
        for model_name, per_config in results.items():
            assert per_config["all"] <= per_config["none"] * 1.5


def bench_ablation_none(benchmark):
    base, estimators = _make_estimators()
    database = _database_with(estimators["linear"], CONFIGS["none"], base,
                              n_rows=10_000)
    database.execute(QUERY)
    benchmark(lambda: database.execute(QUERY))


def bench_ablation_all(benchmark, ablation):
    base, estimators = _make_estimators()
    database = _database_with(estimators["linear"], CONFIGS["all"], base,
                              n_rows=10_000)
    database.execute(QUERY)
    benchmark(lambda: database.execute(QUERY))
