"""Morsel-parallel scaling: scan/aggregate and batch PREDICT at 1/2/4 workers.

Two workloads sized so the morsel executor engages its parallel paths:

- **q6** — a TPC-H Q6-style scan-heavy aggregate (selective predicate, one
  SUM of a product expression) over a synthetic lineitem table;
- **predict** — a batch ``SUM(PREDICT(model))`` over a patient table with a
  deployed scaler + logistic-regression pipeline.

Each workload runs at ``SET flock.workers = 1 / 2 / 4`` on the *same*
engine and data; results must be bit-identical across worker counts (the
parallel executor's determinism contract), and the report records wall
time and speedup per worker count.

The ≥2.5× speedup gate only applies on hosts with ≥4 usable cores — thread
parallelism cannot beat physics on fewer; on smaller hosts the correctness
assertions still run and the speedup rows are reported as measured.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import FULL, write_json_report, write_report
from flock.db import Database

Q6_ROWS = 600_000 if FULL else 120_000
PATIENT_ROWS = 60_000 if FULL else 24_000
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3

Q6_QUERY = (
    "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
    "WHERE l_shipdate >= 8766 AND l_shipdate < 9131 "
    "AND l_discount >= 0.05 AND l_discount <= 0.07 AND l_quantity < 24"
)
PREDICT_QUERY = "SELECT SUM(PREDICT(readmit)), AVG(PREDICT(readmit)) FROM patients"


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _bulk_insert(db: Database, table: str, columns: np.ndarray) -> None:
    """Chunked multi-row INSERTs (the engine's fastest SQL-level load)."""
    n = len(columns[0])
    columns = [col.tolist() for col in columns]  # python literals for SQL
    chunk = 2_000
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        values = ", ".join(
            "(" + ", ".join(repr(col[i]) for col in columns) + ")"
            for i in range(start, stop)
        )
        db.execute(f"INSERT INTO {table} VALUES {values}")


def _build_q6_engine() -> Database:
    db = Database(workers=1)
    db.execute(
        "CREATE TABLE lineitem (l_quantity FLOAT, l_extendedprice FLOAT, "
        "l_discount FLOAT, l_shipdate INT)"
    )
    rng = np.random.default_rng(42)
    _bulk_insert(db, "lineitem", [
        rng.uniform(1, 50, Q6_ROWS).round(2),
        rng.uniform(900, 105_000, Q6_ROWS).round(2),
        rng.uniform(0.0, 0.10, Q6_ROWS).round(2),
        rng.integers(8_000, 10_000, Q6_ROWS),
    ])
    return db


def _build_predict_session():
    from flock.lifecycle import FlockSession
    from flock.ml import LogisticRegression, Pipeline, StandardScaler
    from flock.ml.datasets import make_patients

    session = FlockSession(eager_provenance=False, monitor_models=False)
    session.load_dataset(make_patients(PATIENT_ROWS, random_state=0))
    session.train_and_deploy(
        "readmit",
        Pipeline([
            ("s", StandardScaler()),
            ("m", LogisticRegression(max_iter=200)),
        ]),
        "patients",
        [
            "age", "prior_admissions", "length_of_stay",
            "chronic_conditions", "medication_count",
        ],
        "readmitted",
    )
    return session


def _time_at_workers(db: Database, query: str) -> dict:
    """Run *query* at each worker count: best-of-N wall time + result."""
    timings: dict[int, float] = {}
    results: dict[int, str] = {}
    for workers in WORKER_COUNTS:
        db.execute(f"SET flock.workers = {workers}")
        db.execute(query)  # warm up (pool spin-up, first-touch caches)
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = db.execute(query)
            best = min(best, time.perf_counter() - start)
        timings[workers] = best
        results[workers] = repr(result.rows())
    db.execute("SET flock.workers = 1")
    return {"timings": timings, "results": results}


@pytest.fixture(scope="module")
def scaling_report() -> dict:
    q6_db = _build_q6_engine()
    session = _build_predict_session()
    predict_db = session.database
    for db in (q6_db, predict_db):
        db.execute("SET flock.morsel_rows = 8192")
        db.execute("SET flock.parallel_min_rows = 2048")

    cores = _usable_cores()
    report = {
        "cores": cores,
        "cpu_count": cores,
        "rows": {"q6": Q6_ROWS, "patients": PATIENT_ROWS},
        "repeats": REPEATS,
        "worker_counts": list(WORKER_COUNTS),
        "q6": _time_at_workers(q6_db, Q6_QUERY),
        "predict": _time_at_workers(predict_db, PREDICT_QUERY),
    }
    q6_db.close()
    predict_db.close()
    for name in ("q6", "predict"):
        timings = report[name]["timings"]
        report[name]["speedups"] = {
            workers: timings[1] / timings[workers]
            for workers in WORKER_COUNTS
        }
    # Gate honesty: the JSON must say whether the >=2.5x check applied on
    # this host, not just leave a reader to infer it from "cores".
    report["gate"] = {
        "threshold_speedup": 2.5,
        "at_workers": 4,
        "requires_cores": 4,
        "applied": cores >= 4,
        "skipped_reason": (
            None if cores >= 4
            else f"host has {cores} usable core(s); thread speedups are "
            "hardware-bound below 4"
        ),
    }

    lines = [
        "Morsel-parallel scaling (bench_parallel_scaling.py)",
        f"usable cores: {report['cores']}"
        + ("  ** fewer than 4: speedups below are hardware-bound, not"
           " executor-bound; the >=2.5x gate needs a >=4-core host **"
           if report["cores"] < 4 else ""),
        f"q6 rows: {Q6_ROWS}   patients rows: {PATIENT_ROWS}   "
        f"best of {REPEATS}",
        "",
        f"{'workload':<10}{'workers':>8}{'wall_s':>10}{'speedup':>9}",
    ]
    for name in ("q6", "predict"):
        timings = report[name]["timings"]
        for workers in WORKER_COUNTS:
            speedup = timings[1] / timings[workers]
            lines.append(
                f"{name:<10}{workers:>8}{timings[workers]:>10.4f}"
                f"{speedup:>9.2f}"
            )
    write_report("parallel_scaling", lines)
    write_json_report("parallel_scaling", report)
    return report


class TestParallelScaling:
    def test_results_bit_identical_across_worker_counts(
        self, scaling_report
    ):
        for name in ("q6", "predict"):
            results = scaling_report[name]["results"]
            assert results[2] == results[1], name
            assert results[4] == results[1], name

    def test_speedup_at_4_workers(self, scaling_report):
        cores = scaling_report["cores"]
        if cores < 4:
            pytest.skip(
                f"host has {cores} usable core(s); the 2.5x gate "
                "requires >=4 — rerun on a multicore host"
            )
        for name in ("q6", "predict"):
            timings = scaling_report[name]["timings"]
            speedup = timings[1] / timings[4]
            assert speedup >= 2.5, (
                f"{name}: {speedup:.2f}x at 4 workers"
            )


def bench_parallel_q6(benchmark, scaling_report):
    """Benchmark the Q6 aggregate at 4 workers (report already written)."""
    db = _build_q6_engine()
    try:
        db.execute("SET flock.workers = 4")
        benchmark(lambda: db.execute(Q6_QUERY))
    finally:
        db.close()
