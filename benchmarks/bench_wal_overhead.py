"""WAL overhead and replay throughput on the TPC-C workload.

The durability machinery (flock.db.wal) must be cheap enough to leave on:
the acceptance gate is ≤2× wall time on the TPC-C load + transaction mix
with group commit, relative to the pure in-memory engine. The same run
measures recovery speed — records/s and rows/s replayed when the loaded
directory is reopened.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.conftest import FULL, write_report
from flock.db import Database
from flock.workloads import (
    create_tpcc_schema,
    generate_tpcc_data,
    generate_tpcc_transactions,
)

STATEMENTS = 600 if FULL else 250
SCALE = dict(
    warehouses=1,
    districts_per_warehouse=3,
    customers_per_district=20 if FULL else 10,
    items=50 if FULL else 30,
)


def _run_workload(database) -> int:
    """Load TPC-C and push the transaction mix; every write statement is an
    autocommit WAL commit, which is what makes the fsync cadence honest."""
    create_tpcc_schema(database)
    counts = generate_tpcc_data(database, **SCALE)
    statements = generate_tpcc_transactions(
        statement_count=STATEMENTS,
        warehouses=SCALE["warehouses"],
        districts_per_warehouse=SCALE["districts_per_warehouse"],
        customers_per_district=SCALE["customers_per_district"],
    )
    conn = database.connect()
    for sql in statements:
        conn.execute(sql)
    return sum(counts.values())


@pytest.fixture(scope="module")
def wal_report() -> dict:
    root = Path(tempfile.mkdtemp(prefix="flock-wal-bench-"))
    report: dict = {}
    try:
        start = time.perf_counter()
        memory_db = Database()
        report["rows_loaded"] = _run_workload(memory_db)
        report["memory_s"] = time.perf_counter() - start

        for mode, kwargs in [
            ("commit", dict(sync_mode="commit")),
            ("group", dict(sync_mode="group", group_window_ms=0.0)),
        ]:
            directory = root / mode
            start = time.perf_counter()
            db = Database.open(directory, checkpoint_bytes=0, **kwargs)
            _run_workload(db)
            report[f"{mode}_s"] = time.perf_counter() - start
            report[f"{mode}_log_bytes"] = db.wal.log_bytes
            db.close()
            report[f"{mode}_overhead"] = (
                report[f"{mode}_s"] / report["memory_s"]
            )

        # Recovery: reopen the commit-mode directory and replay its log.
        recovered = Database.open(root / "commit")
        recovery = recovered.wal.last_recovery
        report["replay_records"] = recovery.records_scanned
        report["replay_ms"] = recovery.replay_ms
        report["replay_records_per_s"] = (
            recovery.records_scanned / (recovery.replay_ms / 1000.0)
        )
        report["replay_rows_per_s"] = (
            report["rows_loaded"] / (recovery.replay_ms / 1000.0)
        )
        recovered.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)

    write_report(
        "wal_overhead",
        [
            "WAL overhead on TPC-C load + transaction mix "
            f"({report['rows_loaded']} rows, {STATEMENTS} statements)",
            "",
            f"{'configuration':<24}{'wall s':>10}{'overhead':>10}"
            f"{'log KiB':>10}",
            f"{'in-memory':<24}{report['memory_s']:>10.3f}{1.0:>10.2f}"
            f"{'-':>10}",
            f"{'wal sync=commit':<24}{report['commit_s']:>10.3f}"
            f"{report['commit_overhead']:>10.2f}"
            f"{report['commit_log_bytes'] / 1024:>10.1f}",
            f"{'wal sync=group':<24}{report['group_s']:>10.3f}"
            f"{report['group_overhead']:>10.2f}"
            f"{report['group_log_bytes'] / 1024:>10.1f}",
            "",
            "Recovery replay of the sync=commit log:",
            f"  records replayed   {report['replay_records']}",
            f"  replay wall ms     {report['replay_ms']:.1f}",
            f"  records/s          {report['replay_records_per_s']:.0f}",
            f"  rows/s             {report['replay_rows_per_s']:.0f}",
            "",
            "Gate: group-commit overhead <= 2.0x in-memory.",
        ],
    )
    return report


class TestWalOverhead:
    def test_group_commit_overhead_within_gate(self, wal_report):
        assert wal_report["group_overhead"] <= 2.0

    def test_replay_recovers_every_record(self, wal_report):
        assert wal_report["replay_records"] > 0
        assert wal_report["replay_records_per_s"] > 0

    def test_log_actually_carried_the_workload(self, wal_report):
        assert wal_report["commit_log_bytes"] > 100_000


def bench_wal_commit_append(benchmark):
    """Benchmark the per-commit WAL cost in isolation (append + fsync)."""
    root = Path(tempfile.mkdtemp(prefix="flock-wal-append-"))
    try:
        db = Database.open(root, checkpoint_bytes=0)
        db.execute("CREATE TABLE bench (k INT, v TEXT)")
        counter = iter(range(10_000_000))

        def one_commit():
            db.execute(
                "INSERT INTO bench VALUES (?, ?)",
                [next(counter), "x" * 64],
            )

        benchmark(one_commit)
        db.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
