"""Benchmark harness: one module per paper table/figure, plus ablations."""
