"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures and writes the
measured rows/series to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can be checked against fresh runs. Set ``FLOCK_BENCH_FULL=1`` to include the
paper's largest dataset sizes (slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("FLOCK_BENCH_FULL", "0") == "1"


def write_report(name: str, lines: list[str]) -> None:
    """Persist a reproduced table/figure as plain text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL
