"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures and writes the
measured rows/series to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can be checked against fresh runs. Set ``FLOCK_BENCH_FULL=1`` to include the
paper's largest dataset sizes (slower).

Benchmarks with machine-readable output additionally call
:func:`write_json_report`, which writes ``benchmarks/results/<name>.json``
and refreshes the committed ``BENCH_<name>.json`` artifact at the repo root
so result history travels with the code. Every such payload carries the
same metadata envelope — ``cpu_count`` (the host's usable cores, so a
committed number can be judged against the machine that produced it) and
``gate`` (``applied``/``skipped_reason`` plus the thresholds, so an
artifact records whether its acceptance gate actually ran or honestly
skipped) — asserted here so the schema cannot drift per benchmark.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

FULL = os.environ.get("FLOCK_BENCH_FULL", "0") == "1"


def pytest_addoption(parser):
    """``pytest benchmarks/bench_shard_scaling.py --process`` forces the
    worker-process backend for the scaling benchmarks (``--no-process``
    forces threads). The default, None, lets each benchmark pick process
    workers whenever the platform supports them."""
    group = parser.getgroup("flock benchmarks")
    group.addoption(
        "--process", dest="flock_process", action="store_true",
        default=None, help="process-backed shards/replicas (flock.proc)",
    )
    group.addoption(
        "--no-process", dest="flock_process", action="store_false",
        help="force the in-process thread backend",
    )


def cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def write_report(name: str, lines: list[str]) -> None:
    """Persist a reproduced table/figure as plain text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")


def write_json_report(name: str, payload: dict) -> None:
    """Persist a benchmark's machine-readable results.

    Writes ``benchmarks/results/<name>.json`` and the committed repo-root
    artifact ``BENCH_<name>.json`` (same content). Enforces the shared
    metadata envelope: ``cpu_count`` and a ``gate`` dict with ``applied``
    and ``skipped_reason``.
    """
    assert isinstance(payload.get("cpu_count"), int), (
        f"benchmark {name!r}: payload must record 'cpu_count' "
        f"(use benchmarks.conftest.cpu_count())"
    )
    gate = payload.get("gate")
    assert isinstance(gate, dict), (
        f"benchmark {name!r}: payload must record a 'gate' dict "
        f"(use applied=False with a skipped_reason when nothing is gated)"
    )
    assert isinstance(gate.get("applied"), bool), (
        f"benchmark {name!r}: gate must record boolean 'applied'"
    )
    assert "skipped_reason" in gate and (
        gate["skipped_reason"] is None
        or isinstance(gate["skipped_reason"], str)
    ), f"benchmark {name!r}: gate must record 'skipped_reason' (str | None)"
    assert gate["applied"] == (gate["skipped_reason"] is None), (
        f"benchmark {name!r}: a skipped gate needs its reason and an "
        f"applied gate must not carry one"
    )
    assert any(
        key.startswith("threshold_") and isinstance(value, (int, float))
        for key, value in gate.items()
    ), (
        f"benchmark {name!r}: gate must record at least one numeric "
        f"'threshold_*' entry — an artifact without its acceptance bar "
        f"cannot be judged later"
    )
    # The no-silent-skip rule for backend-aware scaling benchmarks (the
    # payload carries "backend"): on a multicore host where the process
    # backend is available, the gate MUST apply — a skip there is an
    # accidental regression to the GIL-bound thread tier, and CI on
    # multicore runners must fail instead of passing on it.
    if "backend" in payload and payload["cpu_count"] >= 4:
        from flock.proc import proc_available

        if proc_available():
            assert payload["backend"] == "process", (
                f"benchmark {name!r}: {payload['cpu_count']} cores and the "
                f"process backend is available, but the run used the "
                f"{payload['backend']!r} backend — scaling numbers from a "
                f"GIL-bound tier must not be recorded on this host"
            )
            assert gate["applied"] is True, (
                f"benchmark {name!r}: {payload['cpu_count']} cores, process "
                f"backend available, yet the gate skipped "
                f"({gate['skipped_reason']!r}) — silent skips on multicore "
                f"hosts are forbidden"
            )
    data = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(data)
    (REPO_ROOT / f"BENCH_{name}.json").write_text(data)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL
