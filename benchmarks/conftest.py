"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures and writes the
measured rows/series to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can be checked against fresh runs. Set ``FLOCK_BENCH_FULL=1`` to include the
paper's largest dataset sizes (slower).

Benchmarks with machine-readable output additionally call
:func:`write_json_report`, which writes ``benchmarks/results/<name>.json``
and refreshes the committed ``BENCH_<name>.json`` artifact at the repo root
so result history travels with the code.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

FULL = os.environ.get("FLOCK_BENCH_FULL", "0") == "1"


def write_report(name: str, lines: list[str]) -> None:
    """Persist a reproduced table/figure as plain text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")


def write_json_report(name: str, payload: dict) -> None:
    """Persist a benchmark's machine-readable results.

    Writes ``benchmarks/results/<name>.json`` and the committed repo-root
    artifact ``BENCH_<name>.json`` (same content).
    """
    data = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(data)
    (REPO_ROOT / f"BENCH_{name}.json").write_text(data)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL
