"""Shard write scaling: bulk-load write QPS through the shard router.

Runs :func:`flock.shard.bench.run_shard_scaling_benchmark` at 1/2/4 shards
over fresh directories and writes the report (text + JSON, including the
committed ``BENCH_shard_scaling.json`` artifact).

The ≥2× write-QPS gate at 4 shards applies on hosts with ≥4 usable cores
running the worker-process backend (the default wherever flock.proc is
available; ``--process``/``--no-process`` override). Thread shards share
one GIL and fewer than 4 cores cannot run 4 appends concurrently — in
either case the gate skips with its reason recorded in the JSON instead
of passing vacuously, and ``benchmarks/conftest.py`` refuses a skip on a
multicore host where the process backend exists. Result *correctness*
(every topology loads the same rows and answers the same aggregates, and
the sharded answers match an unsharded engine bit for bit) is asserted on
any host.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, cpu_count, write_json_report, write_report
from flock.shard.bench import (
    CHECK_QUERY,
    build_rows,
    render_shard_benchmark,
    run_shard_scaling_benchmark,
)

SHARD_COUNTS = (1, 2, 4)
N_ROWS = 48_000 if FULL else 24_000
GATE_SPEEDUP = 2.0
GATE_AT = 4


@pytest.fixture(scope="module")
def shard_report(request) -> dict:
    report = run_shard_scaling_benchmark(
        shard_counts=SHARD_COUNTS,
        n_rows=N_ROWS,
        process=request.config.getoption("flock_process", default=None),
    )
    cores = report["cores"]
    backend = report["backend"]
    applied = cores >= 4 and backend == "process"
    if applied:
        skipped_reason = None
    elif cores < 4:
        skipped_reason = (
            f"host has {cores} usable core(s); concurrent per-shard "
            "appends cannot scale writes below 4"
        )
    else:
        skipped_reason = (
            "thread backend: per-shard appends share one GIL and cannot "
            "scale writes; run with the process backend to gate"
        )
    report["cpu_count"] = cores
    report["gate"] = {
        "threshold_speedup": GATE_SPEEDUP,
        "at_shards": GATE_AT,
        "requires_cores": 4,
        "requires_backend": "process",
        "applied": applied,
        "skipped_reason": skipped_reason,
    }
    write_report("shard_scaling", render_shard_benchmark(report))
    write_json_report("shard_scaling", report)
    return report


class TestShardScaling:
    def test_every_topology_measured(self, shard_report):
        counts = [r["shards"] for r in shard_report["results"]]
        assert counts == list(SHARD_COUNTS)
        for entry in shard_report["results"]:
            assert entry["write_qps"] > 0
            assert sum(entry["per_shard_rows"]) == N_ROWS
        # Hashing must actually spread the load: at 4 shards every shard
        # holds some of the table.
        by_count = {r["shards"]: r for r in shard_report["results"]}
        assert all(n > 0 for n in by_count[4]["per_shard_rows"])

    def test_aggregates_identical_across_topologies(self, shard_report):
        assert shard_report["results_match"], [
            r["check"] for r in shard_report["results"]
        ]

    def test_sharded_matches_unsharded_engine(self, tmp_path):
        # The routed load answers bit-for-bit what one engine answers for
        # the same rows: sharding must not change write semantics.
        import flock

        rows = build_rows(4_000, random_state=3)
        answers = []
        for shards in (0, 2):
            path = tmp_path / f"db{shards}"
            client = (
                flock.connect(path, shards=shards)
                if shards
                else flock.connect(path)
            )
            with client:
                client.execute(
                    "CREATE TABLE shipments (id INT PRIMARY KEY, "
                    "ref TEXT, region TEXT, amount FLOAT)"
                )
                client.executemany(
                    "INSERT INTO shipments VALUES (?, ?, ?, ?)", rows
                )
                answers.append(repr(client.execute(CHECK_QUERY).rows()))
        assert answers[0] == answers[1], "sharded load diverged"

    def test_write_qps_gate_at_4_shards(self, shard_report):
        gate = shard_report["gate"]
        if not gate["applied"]:
            pytest.skip(gate["skipped_reason"])
        by_count = {r["shards"]: r for r in shard_report["results"]}
        scaling = by_count[GATE_AT]["scaling"]
        assert scaling >= GATE_SPEEDUP, (
            f"{scaling:.2f}x write QPS at {GATE_AT} shards "
            f"(need >= {GATE_SPEEDUP}x)"
        )


def bench_shard_bulk_load(benchmark, tmp_path_factory):
    """Benchmark one scattered executemany block on a warm 2-shard tier."""
    import flock

    root = tmp_path_factory.mktemp("shard-bench") / "db"
    rows = build_rows(12_000, random_state=5)
    with flock.connect(root, shards=2) as client:
        client.execute(
            "CREATE TABLE shipments (id INT PRIMARY KEY, "
            "ref TEXT, region TEXT, amount FLOAT)"
        )
        client.executemany(
            "INSERT INTO shipments VALUES (?, ?, ?, ?)", rows[:2_000]
        )
        blocks = iter(range(2_000, len(rows), 2_000))

        def load_block():
            start = next(blocks, None)
            if start is None:  # pragma: no cover - rounds exceed blocks
                pytest.skip("out of fresh blocks")
            client.executemany(
                "INSERT INTO shipments VALUES (?, ?, ?, ?)",
                rows[start : start + 2_000],
            )

        benchmark(load_block)
