"""Figure 3: ML systems in the public cloud and major companies.

Renders the feature-support matrix and checks the two trends the paper reads
from it: (1) mature proprietary solutions have stronger data-management
support; (2) no complete third-party offering exists.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from flock.landscape import group_scores, render_matrix, trend_summary


@pytest.fixture(scope="module")
def landscape_report():
    lines = ["Figure 3: ML systems feature-support matrix", ""]
    lines.append(render_matrix())
    lines.append("")
    scores = group_scores()
    lines.append("Average support by group (GOOD=2, OK=1, NO=0):")
    for system, per_group in scores.items():
        rendered = ", ".join(
            f"{group}={value:.2f}" for group, value in per_group.items()
        )
        lines.append(f"  {system:<18} {rendered}")
    trends = trend_summary()
    lines.append("")
    lines.append(
        f"Trend 1 — data management, proprietary avg "
        f"{trends['dm_proprietary']:.2f} vs third-party "
        f"{trends['dm_third_party']:.2f} (gap {trends['dm_gap']:+.2f})"
    )
    lines.append(
        f"Trend 2 — best third-party completeness: "
        f"{trends['best_third_party_completeness'] * 100:.0f}% of features"
    )
    write_report("fig3_landscape", lines)
    return trends


class TestFigure3:
    def test_trend_1(self, landscape_report):
        assert landscape_report["dm_gap"] > 0.5

    def test_trend_2(self, landscape_report):
        assert landscape_report["best_third_party_completeness"] < 0.9


def bench_fig3_matrix_analysis(benchmark, landscape_report):
    benchmark(lambda: (group_scores(), trend_summary()))
