"""Figure 2: notebook coverage (%) for top-K packages, 2017 vs 2019.

Regenerates the coverage curves from the synthetic corpora calibrated to the
paper's two callouts: the 2019 crawl sees ~3× more packages in total, and
the top-10 packages cover ~5 points more of the notebooks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from flock.corpus.analysis import DEFAULT_KS, analyze_corpus
from flock.corpus.generator import YEAR_2017, YEAR_2019, generate_corpus


@pytest.fixture(scope="module")
def curves():
    a17 = analyze_corpus(generate_corpus(YEAR_2017))
    a19 = analyze_corpus(generate_corpus(YEAR_2019))

    lines = ["Figure 2: notebook coverage (%) for top-K packages"]
    lines.append(f"{'K':>6} | {'2017':>8} | {'2019':>8}")
    for k in DEFAULT_KS:
        lines.append(
            f"{k:>6} | {a17.at(k) * 100:>7.1f}% | {a19.at(k) * 100:>7.1f}%"
        )
    ratio = a19.total_packages / a17.total_packages
    lines.append("")
    lines.append(
        f"Total packages: 2017={a17.total_packages} "
        f"2019={a19.total_packages} ({ratio:.1f}x — paper: '3x more packages')"
    )
    lines.append(
        f"Top-10 coverage delta: {(a19.at(10) - a17.at(10)) * 100:+.1f} points "
        f"(paper: '5% more coverage')"
    )
    lines.append(f"2019 top packages: {', '.join(a19.top_packages[:5])}")
    write_report("fig2_coverage", lines)
    return a17, a19


class TestFigure2:
    def test_three_times_more_packages(self, curves):
        a17, a19 = curves
        assert 2.5 <= a19.total_packages / a17.total_packages <= 4.0

    def test_top10_covers_more_in_2019(self, curves):
        a17, a19 = curves
        delta = a19.at(10) - a17.at(10)
        assert 0.02 <= delta <= 0.10  # around the paper's ~5 points

    def test_head_solidified(self, curves):
        _, a19 = curves
        assert set(a19.top_packages[:4]) >= {"numpy", "pandas"}


def bench_fig2_generate_and_analyze(benchmark, curves):
    """Benchmark one full generate+analyze pass (2017 corpus)."""
    benchmark(lambda: analyze_corpus(generate_corpus(YEAR_2017)))
