"""Observability overhead: tracing + metrics must stay under 10%.

The observability subsystem (span trees via a contextvar, process metrics)
is always on, so its cost rides on every statement. This bench runs the
Figure 4 scoring query with tracing enabled and with tracing disabled
(``observability.set_enabled(False)`` hands out a shared no-op span) and
asserts the enabled/disabled ratio stays under 1.10 — the acceptance bar
for shipping instrumentation inside the hot path.

Timings take the minimum of several interleaved runs: the min is the
noise-robust estimator for "how fast can this go", and interleaving keeps
cache/GC drift from biasing one regime.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import FULL, write_report
from flock import observability
from flock.inference import CrossOptimizer

from benchmarks.bench_fig4_inference import QUERY, _make_database

N_ROWS = 100_000 if FULL else 20_000
REPEATS = 7
OVERHEAD_BUDGET = 0.10


@pytest.fixture(scope="module")
def overhead_measurement():
    """Min-of-N timings of the fig4 query with tracing on vs off."""
    database, _, _ = _make_database(N_ROWS, CrossOptimizer())
    run = lambda: database.execute(QUERY)  # noqa: E731

    run()  # warmup: plan caches, model preparation
    enabled_times: list[float] = []
    disabled_times: list[float] = []
    assert observability.enabled()
    try:
        for _ in range(REPEATS):
            started = time.perf_counter()
            run()
            enabled_times.append(time.perf_counter() - started)

            observability.set_enabled(False)
            started = time.perf_counter()
            run()
            disabled_times.append(time.perf_counter() - started)
            observability.set_enabled(True)
    finally:
        observability.set_enabled(True)

    run()  # one final traced run so the span tree can be inspected
    trace = database.last_trace

    enabled = min(enabled_times)
    disabled = min(disabled_times)
    overhead = enabled / disabled - 1.0

    write_report("observability_overhead", [
        f"Observability overhead on the fig4 query ({N_ROWS} rows, "
        f"min of {REPEATS})",
        f"  tracing enabled : {enabled * 1000:8.2f} ms",
        f"  tracing disabled: {disabled * 1000:8.2f} ms",
        f"  overhead        : {overhead:+8.1%} "
        f"(budget {OVERHEAD_BUDGET:.0%})",
    ])
    return enabled, disabled, overhead, trace


class TestObservabilityOverhead:
    def test_overhead_under_budget(self, overhead_measurement):
        _, _, overhead, _ = overhead_measurement
        assert overhead < OVERHEAD_BUDGET

    def test_trace_recorded_while_enabled(self, overhead_measurement):
        # The enabled runs really traced: a full statement span tree with
        # per-operator children was left behind.
        *_, trace = overhead_measurement
        assert trace is not None and trace.name == "db.statement"
        assert any(s.name.startswith("exec.") for s in trace.walk())


def bench_traced_query(benchmark, overhead_measurement):
    database, _, _ = _make_database(N_ROWS, CrossOptimizer())
    database.execute(QUERY)
    benchmark(lambda: database.execute(QUERY))
