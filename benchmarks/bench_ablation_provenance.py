"""Ablation: provenance-graph compression/summarization (§4.2, C1).

The paper: "the provenance data model can become substantially large in
size (e.g., a table having as many versions as the insertions that have
happened to it). For these reasons, we develop optimized capture techniques,
through compression and summarization." This bench measures how much each
technique reclaims on the TPC-C capture from Table 1.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_report
from flock.db import Database
from flock.provenance import (
    ProvenanceCatalog,
    SQLProvenanceCapture,
    compress_provenance,
)
from flock.workloads import create_tpcc_schema, generate_tpcc_transactions


@pytest.fixture(scope="module")
def captured_graph():
    db = Database()
    create_tpcc_schema(db)
    catalog = ProvenanceCatalog()
    capture = SQLProvenanceCapture(catalog, database=db)
    capture.capture_many(generate_tpcc_transactions(1100))
    return catalog.graph


@pytest.fixture(scope="module")
def compression_report(captured_graph):
    variants = {
        "none": dict(summarize_versions=False, dedupe_edges=False),
        "dedupe only": dict(summarize_versions=False, dedupe_edges=True),
        "versions only": dict(summarize_versions=True, dedupe_edges=False),
        "both": dict(summarize_versions=True, dedupe_edges=True),
    }
    rows = {}
    for name, config in variants.items():
        _, report = compress_provenance(captured_graph, **config)
        rows[name] = report
    lines = [
        "Ablation: provenance compression on the TPC-C capture",
        f"{'technique':>14} | {'before':>8} | {'after':>8} | {'ratio':>6}",
    ]
    for name, report in rows.items():
        lines.append(
            f"{name:>14} | {report.size_before:>8} | {report.size_after:>8} "
            f"| {report.ratio:>5.2f}"
        )
    write_report("ablation_provenance", lines)
    return rows


class TestProvenanceCompression:
    def test_uncompressed_is_identity(self, compression_report):
        assert compression_report["none"].ratio == pytest.approx(1.0)

    def test_each_technique_helps(self, compression_report):
        assert compression_report["dedupe only"].ratio < 1.0
        assert compression_report["versions only"].ratio < 1.0

    def test_combined_best(self, compression_report):
        both = compression_report["both"].ratio
        assert both <= compression_report["dedupe only"].ratio
        assert both <= compression_report["versions only"].ratio
        assert both < 0.5  # versioned TPC-C compresses heavily


def bench_compress_tpcc_graph(benchmark, captured_graph):
    benchmark(lambda: compress_provenance(captured_graph))
