"""Setup shim.

The environment has no ``wheel`` package, so PEP 660 editable installs
(which build an editable wheel) fail; this setup.py lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
older pips) fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
