"""Patient readmission risk with end-to-end provenance (paper §3, iv; §4.2).

"Copying CSV files on a laptop and maximizing average model accuracy just
doesn't cut it" — this example shows what replaces it: training data stays
in the DBMS, every model version's full genesis is recorded, and governance
questions ("which models must be retrained if this column changes?",
"where did this prediction come from?") are one call each.

Run:  python examples/patient_readmission.py
"""

from flock.lifecycle import FlockSession
from flock.ml import GradientBoostingClassifier
from flock.ml.datasets import make_patients
from flock.provenance.model import EntityType

FEATURES = ["age", "prior_admissions", "length_of_stay",
            "chronic_conditions", "medication_count"]


def main() -> None:
    session = FlockSession()
    session.load_dataset(make_patients(400, random_state=3))

    # Version 1: trained on all features.
    session.train_and_deploy(
        "readmit_model",
        GradientBoostingClassifier(n_estimators=40, random_state=0),
        "patients", FEATURES, "readmitted",
        description="readmission risk v1",
    )

    # Score inside the DBMS, grouped by ward.
    print("Average predicted readmission risk by ward:")
    for ward, n, risk in session.sql(
        "SELECT ward, COUNT(*) AS n, "
        "ROUND(AVG(PREDICT(readmit_model)), 3) AS avg_risk "
        "FROM patients GROUP BY ward ORDER BY avg_risk DESC"
    ).rows():
        print(f"  {ward:<12} n={n:<4} risk={risk}")

    # ------------------------------------------------------------------
    # Provenance: the model's full genesis.
    # ------------------------------------------------------------------
    print("\nLineage of readmit_model v1:")
    for entity in session.model_lineage("readmit_model", version=1):
        print(f"  {entity.entity_type.value:<16} {entity.name}")

    # The C3 question: a schema change is proposed for patients.age —
    # which deployed models are invalidated?
    print("\nModels depending on patients.age:",
          session.models_affected_by_column("patients", "age"))
    print("Models depending on patients.ward:",
          session.models_affected_by_column("patients", "ward"),
          "(none: the model never saw it)")

    # ------------------------------------------------------------------
    # Data changed → retrain → versions coexist, both fully tracked.
    # ------------------------------------------------------------------
    session.sql(
        "UPDATE patients SET prior_admissions = prior_admissions + 1 "
        "WHERE ward = 'oncology'"
    )
    session.train_and_deploy(
        "readmit_model",
        GradientBoostingClassifier(n_estimators=60, random_state=1),
        "patients", FEATURES, "readmitted",
        description="readmission risk v2 (post-update retrain)",
    )
    print("\nDeployed versions:",
          session.sql(
              "SELECT version, description FROM flock_models "
              "WHERE name = 'readmit_model' ORDER BY version"
          ).rows())

    best = session.training.best_run("readmit_model", "train_accuracy")
    print(f"Best run by training accuracy: {best.run_id} "
          f"(acc={best.metrics['train_accuracy']:.3f}, "
          f"n_estimators={best.hyperparameters['n_estimators']})")

    # The table itself is versioned: the UPDATE created a new version that
    # the provenance graph knows about.
    patients_table = session.database.catalog.table("patients")
    print(f"\npatients table has {patients_table.version_count} stored "
          f"versions (every write is a snapshot)")
    versions = session.provenance.versions_of(
        EntityType.MODEL_VERSION, "readmit_model:v2"
    )
    print("provenance knows model version v2:", bool(versions))

    # Python-side provenance: a data scientist's script is analyzed
    # statically and connected to the same catalog.
    script = """
import pandas as pd
from sklearn.ensemble import GradientBoostingClassifier
frame = pd.read_sql_table('patients', engine)
model = GradientBoostingClassifier(n_estimators=25)
model.fit(frame.drop(columns=['readmitted']), frame['readmitted'])
"""
    analysis = session.py_capture.analyze_script(script, "notebook_42")
    model = analysis.models[0]
    print(f"\nStatic analysis of notebook_42: found {model.class_name} "
          f"trained on {model.training_datasets} "
          f"with {model.hyperparameters}")

    # ------------------------------------------------------------------
    # Model monitoring: every in-DBMS PREDICT feeds the drift monitor.
    # Simulate an aging population, score it, and read the drift report.
    # ------------------------------------------------------------------
    session.sql("UPDATE patients SET age = age + 25 WHERE age < 60")
    session.sql("SELECT AVG(PREDICT(readmit_model)) FROM patients")
    report = session.drift_report("readmit_model")
    print(f"\nDrift after population shift "
          f"({report.observations} scored rows):")
    for feature, psi in sorted(report.feature_psi.items()):
        flag = " <-- drifted" if psi > 0.25 else ""
        print(f"  {feature:<20} PSI={psi:.3f}{flag}")
    if report.is_drifted():
        print("drift threshold exceeded -> schedule retraining")


if __name__ == "__main__":
    main()
