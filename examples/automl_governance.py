"""Governed AutoML: tracked search, fairness audit, drift watch.

The paper's enterprise customers in one sentence: "automate it, and don't
get me sued" (§3). This example automates model selection while keeping
every step governable — each candidate is a tracked training run, the winner
is fairness-audited per region before deployment, and the deployed model is
drift-monitored from its first scored row.

Run:  python examples/automl_governance.py
"""

from flock.lifecycle import AutoTuner, FlockSession, grid
from flock.ml import (
    DecisionTreeClassifier,
    LogisticRegression,
    Pipeline,
    StandardScaler,
)
from flock.ml.datasets import make_loans
from flock.ml.fairness import fairness_report_from_sql
from flock.mlgraph import to_graph

FEATURES = ["income", "credit_score", "loan_amount", "debt_ratio",
            "years_employed"]


def scaled_logit(l2: float = 0.0, max_iter: int = 200) -> Pipeline:
    """Logistic regression needs scaling on raw dollar-valued features."""
    return Pipeline(
        [("scale", StandardScaler()),
         ("clf", LogisticRegression(l2=l2, max_iter=max_iter))]
    )


def main() -> None:
    session = FlockSession()
    session.load_dataset(make_loans(800, random_state=21))
    X, y = session.table_matrix("loans", FEATURES, "approved")

    # ------------------------------------------------------------------
    # 1. AutoML: every candidate is a tracked run in the training service.
    # ------------------------------------------------------------------
    tuner = AutoTuner(training=session.training, random_state=0)
    candidates = (
        grid(scaled_logit, l2=[0.0, 0.5])
        + grid(DecisionTreeClassifier, max_depth=[3, 6], random_state=[0])
    )
    result = tuner.search("loan_model", candidates, X, y)
    print(result.summary())
    print(f"\n{len(session.training.runs('loan_model'))} tracked runs "
          f"(reconstructible search)")

    # ------------------------------------------------------------------
    # 2. Deploy the winner into the DBMS.
    # ------------------------------------------------------------------
    graph = to_graph(result.best_estimator, FEATURES, name="loan_model")
    session.registry.deploy(
        "loan_model", graph,
        description=f"automl winner: {result.best_candidate.describe}",
        metrics={result.metric_name: result.best_score},
    )
    session._register_monitor(
        "loan_model", result.best_estimator, FEATURES, X
    )

    # ------------------------------------------------------------------
    # 3. Fairness audit before go-live, through governed channels.
    # ------------------------------------------------------------------
    report = fairness_report_from_sql(
        session.database,
        table="loans",
        model_name="loan_model",
        group_column="region",
        label_column="approved",
    )
    print("\n" + report.summary())
    if report.is_fair():
        print("four-fifths rule satisfied across regions -> ship it")
    else:
        print(f"violations: {report.violations()} -> block deployment")

    # ------------------------------------------------------------------
    # 4. Drift watch: in production, every PREDICT feeds the monitor.
    # ------------------------------------------------------------------
    session.sql("SELECT AVG(PREDICT(loan_model)) FROM loans")
    drift = session.drift_report("loan_model")
    print(f"\ndrift after {drift.observations} scored rows: "
          f"max feature PSI = {drift.max_feature_psi:.3f} "
          f"({'DRIFTED' if drift.is_drifted() else 'stable'})")

    # Simulate an economic shock and re-check.
    session.sql("UPDATE loans SET income = income * 0.4")
    session.sql("SELECT AVG(PREDICT(loan_model)) FROM loans")
    drift = session.drift_report("loan_model")
    print(f"after income shock: drifted features = "
          f"{drift.drifted_features()} -> retrain")


if __name__ == "__main__":
    main()
