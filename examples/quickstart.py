"""Quickstart: train in the "cloud", score in the DBMS, govern everything.

Run:  python examples/quickstart.py
"""

from flock.lifecycle import FlockSession
from flock.ml import LogisticRegression, Pipeline, StandardScaler
from flock.ml.datasets import make_loans


def main() -> None:
    # One EGML deployment: database + registry + training service +
    # provenance catalog + policy engine. (Monitoring is off here so the
    # optimizer may inline the model fully; see patient_readmission.py for
    # the monitored variant.)
    session = FlockSession(monitor_models=False)

    # 1. Data lives in the DBMS.
    session.load_dataset(make_loans(500, random_state=0))
    print("Loaded", session.sql("SELECT COUNT(*) FROM loans").scalar(),
          "loan applications into the DBMS")

    # 2. Train in the (simulated) cloud; deploy into the DBMS transactionally.
    run = session.train_and_deploy(
        "loan_model",
        Pipeline([("scale", StandardScaler()),
                  ("clf", LogisticRegression(max_iter=300))]),
        table_name="loans",
        feature_names=["income", "credit_score", "loan_amount",
                       "debt_ratio", "years_employed"],
        target_name="approved",
        description="loan approval v1",
    )
    print(f"Training run {run.run_id}: {run.status}, metrics={run.metrics}")

    # 3. Score in SQL — inference is part of the query language. Values
    # bind through '?' placeholders; no string interpolation.
    result = session.sql(
        "SELECT applicant_id, PREDICT(loan_model) AS approval_prob "
        "FROM loans WHERE PREDICT(loan_model) > ? "
        "ORDER BY approval_prob DESC LIMIT 5",
        [0.9],
    )
    print("\nTop applicants by predicted approval probability:")
    for applicant_id, probability in result.rows():
        print(f"  applicant {applicant_id}: {probability:.3f}")
    print("Query stats:", result.stats)

    # 4. The cross-optimizer compiled the model into the query plan:
    print("\nWhat the optimizer did:",
          session.database.cross_optimizer.last_report)
    print("\nOptimized plan, annotated with measured execution "
          "(EXPLAIN ANALYZE):")
    print(session.database.explain_analyze(
        "SELECT applicant_id FROM loans WHERE PREDICT(loan_model) > ?",
        params=[0.9],
    ))

    # The engine measures itself: per-operator spans and process metrics.
    from flock import observability
    print("\nWhere statement time went (span tree of the last query):")
    print(observability.render_span_tree(session.database.last_trace))
    print("\nEngine metrics so far:")
    print(observability.render_metrics(
        observability.metrics().snapshot("db.")
    ))

    # 5. Governance came for free.
    print("\nModels are data:",
          session.sql("SELECT name, version FROM flock_models").rows())
    print("Audit chain intact:", session.database.audit.log.verify_chain())
    print("Models depending on loans.income:",
          session.models_affected_by_column("loans", "income"))


if __name__ == "__main__":
    main()
