"""Loan approval at a regulated financial institution (paper §3, scenario i).

Shows the parts of EGML that plain ML tooling does not give you:
role-based access to data *and* models, an immutable audit trail, business
policies that can override or veto the model, and end-to-end explainability
for any individual decision.

Run:  python examples/loan_approval.py
"""

from flock.errors import SecurityError
from flock.lifecycle import FlockSession
from flock.ml import LogisticRegression, Pipeline, StandardScaler
from flock.ml.datasets import make_loans
from flock.policy import CapPolicy, OverridePolicy, VetoPolicy

FEATURES = ["income", "credit_score", "loan_amount", "debt_ratio",
            "years_employed"]


def main() -> None:
    session = FlockSession()
    session.load_dataset(make_loans(600, random_state=7))
    session.train_and_deploy(
        "loan_model",
        Pipeline([("scale", StandardScaler()),
                  ("clf", LogisticRegression(max_iter=300))]),
        "loans", FEATURES, "approved",
        description="loan approval, quarterly retrain",
    )
    database = session.database

    # ------------------------------------------------------------------
    # Access control: analysts read data; only the scoring role may run
    # the model; nobody gets more than they were granted.
    # ------------------------------------------------------------------
    database.execute("CREATE ROLE analyst")
    database.execute("GRANT SELECT ON loans TO analyst")
    database.execute("CREATE USER maria")
    database.execute("GRANT analyst TO maria")

    print("maria (analyst) can read data:")
    print(" ", database.execute(
        "SELECT COUNT(*) AS applications FROM loans", user="maria"
    ).to_dicts())

    try:
        database.execute("SELECT PREDICT(loan_model) FROM loans",
                         user="maria")
    except SecurityError as exc:
        print("maria cannot score the model:", exc)

    database.security.grant("PREDICT", "model:loan_model", "maria")
    print("after GRANT PREDICT, maria scores:",
          database.execute(
              "SELECT ROUND(AVG(PREDICT(loan_model)), 3) FROM loans",
              user="maria",
          ).scalar())

    # ------------------------------------------------------------------
    # Business policies sit between the model and the decision (§4.1).
    # ------------------------------------------------------------------
    session.policies.add_policy(VetoPolicy(
        "kyc_incomplete",
        lambda v, ctx: not ctx.get("kyc_complete", False),
        reason="know-your-customer checks incomplete",
        priority=10,
    ))
    session.policies.add_policy(OverridePolicy(
        "regulatory_floor",
        condition=lambda v, ctx: ctx.get("region") == "sanctioned",
        replacement=0.0,
        reason="sanctioned region: automatic decline per compliance",
        priority=20,
    ))
    session.policies.add_policy(CapPolicy(
        "exposure_cap",
        lambda ctx: 0.5 if ctx.get("loan_amount", 0) > 100_000 else 1.0,
        priority=50,
    ))

    candidates = session.sql(
        "SELECT applicant_id, loan_amount, region, "
        "PREDICT(loan_model) AS p FROM loans ORDER BY p DESC LIMIT 4"
    )
    print("\nDecisions after policy review:")
    for applicant_id, loan_amount, region, probability in candidates.rows():
        decision = session.policies.decide(
            "loan_model",
            probability,
            {
                "applicant_id": applicant_id,
                "loan_amount": loan_amount,
                "region": region,
                "kyc_complete": applicant_id % 3 != 0,  # demo flag
            },
        )
        verdict = "VETOED" if decision.vetoed else (
            f"score {decision.final_value:.3f}"
            + (" (overridden)" if decision.overridden else "")
        )
        print(f"  applicant {applicant_id}: model={probability:.3f} -> "
              f"{verdict}")

    # Any decision is explainable end to end.
    last = session.policies.state.decisions()[-1]
    print("\nWhy? —")
    print(session.policies.state.explain(last.decision_id))

    # ------------------------------------------------------------------
    # The audit trail has everything: data access, scoring, deployments.
    # ------------------------------------------------------------------
    log = database.audit.log
    print("\nAudit (last 5 records):")
    for record in list(log)[-5:]:
        print(f"  #{record.sequence} {record.user} {record.action} "
              f"{record.object_name}")
    print("chain verified:", log.verify_chain())


if __name__ == "__main__":
    main()
