"""Auto-tuning big-data job parallelism with policy overrides (paper §4.1).

The paper's concrete production story: models predict the right degree of
parallelism for large jobs (Cosmos clusters), but "they occasionally predict
resource requirements in excess of the amounts allowed by user-specified
caps. Business rules expressed as policies then override the model." The
policy module closes the loop: monitor → override → act transactionally →
explain.

Run:  python examples/bigdata_job_tuning.py
"""

from flock.lifecycle import FlockSession
from flock.ml import GradientBoostingRegressor
from flock.ml.datasets import make_bigdata_jobs
from flock.policy import CapPolicy, FloorPolicy

FEATURES = ["input_gb", "operator_count", "stage_count",
            "historical_runtime"]


def main() -> None:
    session = FlockSession()
    session.load_dataset(make_bigdata_jobs(500, random_state=11))
    session.train_and_deploy(
        "parallelism_model",
        GradientBoostingRegressor(n_estimators=60, random_state=0),
        "bigdata_jobs", FEATURES, "best_parallelism",
        description="token/parallelism predictor",
    )

    # User-specified caps from the customer's contract.
    session.policies.add_policy(FloorPolicy("at_least_one", 1.0, priority=40))
    session.policies.add_policy(CapPolicy(
        "customer_cap",
        lambda ctx: ctx["customer_cap"],
        priority=50,
    ))

    # Allocation ledger in the DBMS: every allocation is one transaction.
    session.sql(
        "CREATE TABLE allocations (job_id INT, tokens FLOAT, "
        "overridden BOOLEAN)"
    )

    jobs = session.sql(
        "SELECT job_id, PREDICT(parallelism_model) AS predicted "
        "FROM bigdata_jobs ORDER BY predicted DESC LIMIT 8"
    )
    print("Allocating parallelism for the 8 hungriest jobs "
          "(customer cap: 24 tokens):")
    for job_id, predicted in jobs.rows():
        decision = session.policies.decide(
            "parallelism_model",
            predicted,
            {"job_id": job_id, "customer_cap": 24.0},
        )
        committed = session.policies.act_in_database(
            decision,
            session.database,
            [
                (
                    "INSERT INTO allocations VALUES (?, ?, ?)",
                    [int(job_id), float(decision.final_value),
                     bool(decision.overridden)],
                )
            ],
        )
        marker = "CAPPED" if decision.overridden else "as predicted"
        print(f"  job {job_id:>4}: model={predicted:6.1f} -> "
              f"allocated {decision.final_value:5.1f} ({marker}, "
              f"committed={committed})")

    overridden = session.sql(
        "SELECT COUNT(*) FROM allocations WHERE overridden = TRUE"
    ).scalar()
    print(f"\n{overridden} of 8 allocations were overridden by policy")
    print(f"override rate overall: "
          f"{session.policies.state.override_rate('parallelism_model'):.0%}")

    # Debuggability: reconstruct why a specific allocation happened.
    first = session.policies.state.decisions()[0]
    print("\nFull trace of the first decision:")
    print(session.policies.state.explain(first.decision_id))

    # Failed actions roll back atomically — nothing half-applied.
    decision = session.policies.decide(
        "parallelism_model", 10.0, {"customer_cap": 24.0}
    )
    ok = session.policies.act_in_database(
        decision,
        session.database,
        [
            "INSERT INTO allocations VALUES (999, 10.0, FALSE)",
            "INSERT INTO no_such_table VALUES (1)",  # fails on purpose
        ],
    )
    ghost = session.sql(
        "SELECT COUNT(*) FROM allocations WHERE job_id = 999"
    ).scalar()
    print(f"\nFailed multi-statement action: committed={ok}, "
          f"rows left behind={ghost} (rolled back atomically)")


if __name__ == "__main__":
    main()
