"""Replicated serving: one connect() call from laptop scale to read tier.

The same `flock.connect()` opens every topology — this example walks the
ladder: embedded durable engine, then a 2-follower replicated cluster
serving reads off WAL shipping, then a failover promotion that loses
nothing.

Run:  python examples/replicated_serving.py
"""

import shutil
import tempfile

import flock
from flock.ml import LogisticRegression, Pipeline, StandardScaler
from flock.ml.datasets import load_dataset_into, make_loans
from flock.mlgraph import to_graph


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="flock-replicated-")

    # 1. Seed a durable database — embedded mode, WAL + crash recovery.
    dataset = make_loans(400, random_state=0)
    with flock.connect(data_dir) as client:
        load_dataset_into(client.db, dataset)
        pipeline = Pipeline(
            [("scale", StandardScaler()),
             ("clf", LogisticRegression(max_iter=300))]
        ).fit(dataset.feature_matrix(), dataset.target_vector())
        client.registry.deploy(
            "loan_model",
            to_graph(pipeline, dataset.feature_names, name="loan_model"),
        )
        print("Seeded", client.execute(
            "SELECT COUNT(*) FROM loans").scalar(), "loans +", "loan_model")

    # 2. Reopen as a replicated tier: a primary takes writes and streams
    # every committed WAL record to two follower replicas; the router
    # fans read-only statements across them (max_staleness=0 keeps reads
    # on fully caught-up followers only).
    with flock.connect(data_dir, replicas=2, max_staleness=0) as client:
        # Writes route to the primary and replicate.
        client.execute(
            "INSERT INTO loans VALUES (9001, 75000.0, 710.0, 240000.0, "
            "0.21, 12.0, 'north', 1)"
        )
        client.cluster.wait_for_catchup()

        # Reads (including PREDICT) route to followers.
        top = client.execute(
            "SELECT applicant_id, PREDICT(loan_model) AS p FROM loans "
            "ORDER BY p DESC LIMIT 3"
        )
        print("Top approvals (served by a follower):", top.rows())

        stats = client.stats()
        for follower in stats["followers"]:
            print(f"  {follower['name']}: applied_lsn="
                  f"{follower['applied_lsn']} lag={follower['lag']}")

        # 3. Failover: promote through the normal recovery machinery.
        # Acknowledged commits are in the WAL by definition — none lost.
        report = client.cluster.promote()
        print(f"Promoted {report['promoted']['name']} "
              f"(epoch {report['epoch']})")
        assert client.execute(
            "SELECT COUNT(*) FROM loans WHERE applicant_id = 9001"
        ).scalar() == 1
        print("Committed write survived failover.")

    shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
