"""Script execution, session ergonomics, and cross-feature interactions."""

import pytest

from flock.db import Database
from flock.db.persist import load_database, save_database


class TestExecuteScript:
    def test_script_with_transaction_block(self, db):
        conn = db.connect()
        results = conn.execute_script(
            """
            CREATE TABLE t (a INT);
            BEGIN;
            INSERT INTO t VALUES (1);
            INSERT INTO t VALUES (2);
            COMMIT;
            SELECT COUNT(*) FROM t;
            """
        )
        assert results[-1].scalar() == 2
        assert results[1].statement_type == "BEGIN"

    def test_script_rollback_block(self, db):
        conn = db.connect()
        results = conn.execute_script(
            """
            CREATE TABLE t (a INT);
            BEGIN;
            INSERT INTO t VALUES (1);
            ROLLBACK;
            SELECT COUNT(*) FROM t;
            """
        )
        assert results[-1].scalar() == 0

    def test_script_stops_at_first_error(self, db):
        from flock.errors import BindError

        conn = db.connect()
        with pytest.raises(BindError):
            conn.execute_script(
                "CREATE TABLE t (a INT); SELECT nope FROM t; "
                "INSERT INTO t VALUES (1)"
            )
        # The statement after the failure never ran.
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_comments_and_blank_statements(self, db):
        conn = db.connect()
        results = conn.execute_script(
            "-- setup\nCREATE TABLE t (a INT);;\n/* no-op */ ;"
            "INSERT INTO t VALUES (1);"
        )
        assert len(results) == 2


class TestVersionedPersistenceInteraction:
    def test_tpcc_versions_survive_snapshot(self, tmp_path):
        from flock.workloads import (
            create_tpcc_schema,
            generate_tpcc_data,
            generate_tpcc_transactions,
        )

        db = Database()
        create_tpcc_schema(db)
        generate_tpcc_data(db)
        for sql in generate_tpcc_transactions(80, seed=9):
            db.execute(sql)
        stock_versions = db.catalog.table("stock").version_count
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.catalog.table("stock").version_count == stock_versions
        # Historical version scans agree.
        v_old = db.catalog.table("stock").scan(version_id=1)
        r_old = restored.catalog.table("stock").scan(version_id=1)
        assert list(v_old.rows()) == list(r_old.rows())


class TestSessionErgonomics:
    def test_table_matrix_shapes(self):
        from flock.lifecycle import FlockSession
        from flock.ml.datasets import make_patients

        session = FlockSession()
        session.load_dataset(make_patients(60, random_state=0))
        X, y = session.table_matrix(
            "patients", ["age", "length_of_stay"], "readmitted"
        )
        assert X.shape == (60, 2)
        assert set(y.tolist()) <= {0, 1}

    def test_eager_provenance_can_be_disabled(self):
        from flock.lifecycle import FlockSession
        from flock.ml.datasets import make_loans
        from flock.provenance.model import EntityType

        session = FlockSession(eager_provenance=False)
        session.load_dataset(make_loans(30, random_state=0))
        session.sql("SELECT COUNT(*) FROM loans")
        assert session.provenance.search(EntityType.QUERY) == []

    def test_drift_report_requires_monitoring(self):
        from flock.errors import FlockError
        from flock.lifecycle import FlockSession

        session = FlockSession(monitor_models=False)
        with pytest.raises(FlockError):
            session.drift_report("ghost")


class TestModelRollbackThroughSession:
    def test_rollback_restores_served_predictions(self):
        import numpy as np

        from flock.lifecycle import FlockSession
        from flock.ml import LogisticRegression, Pipeline, StandardScaler
        from flock.ml.datasets import make_loans

        session = FlockSession(monitor_models=False)
        session.load_dataset(make_loans(120, random_state=5))
        features = ["income", "credit_score"]
        session.train_and_deploy(
            "m",
            Pipeline([("s", StandardScaler()),
                      ("c", LogisticRegression(max_iter=120))]),
            "loans", features, "approved",
        )
        v1 = session.sql(
            "SELECT PREDICT(m) AS p FROM loans ORDER BY applicant_id"
        ).column("p")
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=5), "loans",
            features, "approved",
        )
        v2 = session.sql(
            "SELECT PREDICT(m) AS p FROM loans ORDER BY applicant_id"
        ).column("p")
        assert not np.allclose(v1, v2)
        session.registry.rollback("m", to_version=1)
        v3 = session.sql(
            "SELECT PREDICT(m) AS p FROM loans ORDER BY applicant_id"
        ).column("p")
        assert np.allclose(v1, v3)
        # The rollback itself is in the models-as-data table and the audit.
        versions = session.sql(
            "SELECT version FROM flock_models WHERE name = 'm'"
        ).column("version")
        assert versions == [1, 2, 3]
