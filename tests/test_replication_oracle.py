"""Replication oracle: primary and followers must be repr-identical.

Each round drives a seeded random DML workload (inserts, deletes, updates,
DDL, deploys, multi-statement transactions) through the cluster router
while injecting replication lag — followers pause and resume at random, so
records queue and apply in bursts. At the end of a round the oracle waits
for full catch-up and compares the *complete* logical state of every
follower against the primary: same tables, same sorted rows per table,
same mirrored model catalog. Any divergence means a record was lost,
reordered, double-applied or applied differently by the replay path.

Knobs (environment variables): ``FLOCK_ORACLE_ROUNDS`` (default 3),
``FLOCK_ORACLE_OPS`` (default 80), ``FLOCK_ORACLE_SEED`` and
``FLOCK_ORACLE_ARTIFACTS`` — a directory to dump the diverged state into
(CI uploads it on failure).
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

from flock.cluster import FlockCluster
from flock.proc import proc_enabled

ROUNDS = int(os.environ.get("FLOCK_ORACLE_ROUNDS", "3"))
OPS = int(os.environ.get("FLOCK_ORACLE_OPS", "80"))
SEED = int(os.environ.get("FLOCK_ORACLE_SEED", "20260808"))


def _tiny_graph():
    from flock.ml import LinearRegression
    from flock.ml.datasets import make_regression
    from flock.mlgraph import to_graph

    X, y, _ = make_regression(30, 2, random_state=11)
    return to_graph(LinearRegression().fit(X, y), ["f0", "f1"])


def logical_state(db) -> dict[str, list]:
    """Every user-visible table as sorted row reprs (order-independent)."""
    state: dict[str, list] = {}
    for name in sorted(db.catalog.table_names()):
        rows = db.execute(f"SELECT * FROM {name}").rows()
        state[name] = sorted(repr(row) for row in rows)
    return state


def run_round(cluster: FlockCluster, rng: random.Random, ops: int) -> None:
    graph = _tiny_graph()
    cluster.execute(
        "CREATE TABLE IF NOT EXISTS orac (k INT PRIMARY KEY, v TEXT)"
    )
    cluster.execute("CREATE TABLE IF NOT EXISTS side (k INT, w FLOAT)")
    live: list[int] = []
    marker = 0
    tables = 0
    deploys = 0
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.35:
            marker += 1
            cluster.execute(
                "INSERT INTO orac VALUES (?, ?)", [marker, f"v{marker}"]
            )
            live.append(marker)
        elif roll < 0.50 and live:
            victim = live.pop(rng.randrange(len(live)))
            cluster.execute(f"DELETE FROM orac WHERE k = {victim}")
        elif roll < 0.65 and live:
            target = rng.choice(live)
            cluster.execute(
                f"UPDATE orac SET v = 'u{target}' WHERE k = {target}"
            )
        elif roll < 0.80:
            marker += 1
            # Multi-statement transaction: both tables or neither.
            conn = cluster.database.connect()
            conn.execute("BEGIN")
            conn.execute(f"INSERT INTO orac VALUES ({marker}, 'tx')")
            conn.execute(f"INSERT INTO side VALUES ({marker}, 0.5)")
            conn.execute("COMMIT")
            live.append(marker)
        elif roll < 0.90:
            tables += 1
            cluster.execute(
                f"CREATE TABLE IF NOT EXISTS orac_extra_{tables} (k INT)"
            )
            cluster.execute(f"INSERT INTO orac_extra_{tables} VALUES (1)")
        else:
            deploys += 1
            cluster.registry.deploy(f"orac_m{deploys}", graph)

        # Lag injection: random pause/resume keeps followers applying in
        # bursts instead of lock-step with the primary.
        if rng.random() < 0.15 and cluster.followers:
            follower = rng.choice(cluster.followers)
            follower.pause()
        if rng.random() < 0.15:
            for follower in cluster.followers:
                follower.resume()

        if rng.random() < 0.25:
            cluster.execute("SELECT COUNT(*) FROM orac")

    for follower in cluster.followers:
        follower.resume()


def dump_divergence(cluster, primary_state, follower) -> None:
    artifacts = os.environ.get("FLOCK_ORACLE_ARTIFACTS")
    if not artifacts:
        return
    dest = Path(artifacts)
    dest.mkdir(parents=True, exist_ok=True)
    (dest / "primary.json").write_text(
        json.dumps(primary_state, indent=2, sort_keys=True)
    )
    (dest / f"{follower.name}.json").write_text(
        json.dumps(logical_state(follower.database), indent=2,
                   sort_keys=True)
    )
    (dest / "status.json").write_text(
        json.dumps(cluster.stats(), indent=2, sort_keys=True, default=repr)
    )


def test_replication_oracle(tmp_path):
    rng = random.Random(SEED)
    for round_no in range(ROUNDS):
        replicas = rng.choice([1, 2, 3])
        with FlockCluster(
            tmp_path / f"round{round_no}", replicas=replicas
        ) as cluster:
            if proc_enabled(None):
                # Under FLOCK_PROC=1 each follower must be hosted by its
                # own worker process — assert the seam engaged so the CI
                # process lane cannot silently regress to threads.
                assert cluster.backend == "process"
                for follower in cluster.followers:
                    assert follower.status()["backend"] == "process"
                    assert follower.status()["pid"] != os.getpid()
            run_round(cluster, rng, OPS)
            assert cluster.wait_for_catchup(30.0), (
                f"round {round_no}: followers failed to catch up: "
                f"{cluster.stats()['followers']}"
            )
            primary_state = logical_state(cluster.database)
            for follower in cluster.followers:
                assert follower.error is None, (
                    f"round {round_no}: {follower.name} diverged applying: "
                    f"{follower.error!r}"
                )
                follower_state = logical_state(follower.database)
                if follower_state != primary_state:
                    dump_divergence(cluster, primary_state, follower)
                assert follower_state == primary_state, (
                    f"round {round_no} ({replicas} replicas): "
                    f"{follower.name} state diverged from primary"
                )
                # The model catalog replicated too.
                assert (
                    sorted(follower.registry.model_names())
                    == sorted(cluster.registry.model_names())
                )
