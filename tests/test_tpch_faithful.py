"""Faithful TPC-H vs engine-subset rewrites: a decorrelation oracle.

Every one of the 22 faithful templates (correlated scalar subqueries,
EXISTS/NOT EXISTS, uncorrelated scalar subqueries, CTEs) must return
*repr-identical* rows to its pre-decorrelation rewrite on the same
instance — the rewrites were hand-derived to the exact join shapes the
decorrelator emits, so any float drift or row-order divergence is a bug.

The engine tier is environment-selected, matching the CI matrix:
``FLOCK_WORKERS`` flows to the morsel-parallel executor on its own, and
``FLOCK_SHARDS > 1`` routes the whole battery through a hash-sharded
cluster (scatter-gather reads over merged snapshots).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import flock
from flock.workloads import (
    TPCH_FAITHFUL,
    TPCH_REWRITTEN,
    create_tpch_schema,
    generate_tpch_data,
    tpch_params,
)

SCALE = float(os.environ.get("FLOCK_TPCH_SCALE", "0.002"))
SHARDS = int(os.environ.get("FLOCK_SHARDS", "1"))


@pytest.fixture(scope="module")
def tpch_engine(tmp_path_factory):
    if SHARDS > 1:
        client = flock.connect(
            tmp_path_factory.mktemp("tpch_shards") / "tpch", shards=SHARDS
        )
    else:
        client = flock.connect()
    create_tpch_schema(client)
    generate_tpch_data(client, scale=SCALE, seed=42)
    yield client
    client.close()


@pytest.fixture(scope="module")
def instance_params(tpch_engine):
    """One parameter draw, with data-dependent thresholds derived live.

    The rewritten Q11/Q22 take the faithful forms' scalar-subquery values
    as literal parameters; computing them through the engine and
    substituting their exact ``repr`` (floats round-trip) keeps both forms
    on the same instance bit-for-bit.
    """
    params = tpch_params(np.random.default_rng(5))
    threshold = tpch_engine.execute(
        "SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.0001 "
        "FROM partsupp ps2 "
        "JOIN supplier s2 ON ps2.ps_suppkey = s2.s_suppkey "
        "JOIN nation n2 ON s2.s_nationkey = n2.n_nationkey "
        f"WHERE n2.n_name = '{params['nation1']}'"
    ).scalar()
    params["threshold"] = repr(threshold) if threshold is not None else "0.0"
    codes = ", ".join(f"'{params[f'cc{i}']}'" for i in range(1, 8))
    balance = tpch_engine.execute(
        "SELECT AVG(c2.c_acctbal) FROM customer c2 "
        "WHERE c2.c_acctbal > 0.00 "
        f"AND SUBSTR(c2.c_phone, 1, 2) IN ({codes})"
    ).scalar()
    params["balance"] = repr(balance) if balance is not None else "0.0"
    return params


@pytest.mark.parametrize("template_id", sorted(TPCH_FAITHFUL))
def test_faithful_matches_rewrite(tpch_engine, instance_params, template_id):
    faithful = TPCH_FAITHFUL[template_id].format(**instance_params).strip()
    rewritten = TPCH_REWRITTEN[template_id].format(**instance_params).strip()
    f_result = tpch_engine.execute(faithful)
    r_result = tpch_engine.execute(rewritten)
    assert f_result.batch.num_columns == r_result.batch.num_columns
    assert repr(f_result.rows()) == repr(r_result.rows()), (
        f"Q{template_id}: faithful form diverged from its rewrite"
    )


def test_faithful_set_differs_where_it_should():
    # The templates exercising new constructs are genuinely distinct text;
    # the rest are shared objects, not near-duplicates.
    changed = {i for i in TPCH_FAITHFUL if TPCH_FAITHFUL[i]
               is not TPCH_REWRITTEN[i]}
    assert changed == {2, 4, 11, 15, 17, 20, 21, 22}
    assert "EXISTS" in TPCH_FAITHFUL[4]
    assert "WITH revenue AS" in TPCH_FAITHFUL[15]
    assert TPCH_FAITHFUL[15].count("revenue") >= 3  # CTE used twice in FROM
    assert "NOT EXISTS" in TPCH_FAITHFUL[21]
