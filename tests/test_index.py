"""Hash indexes and zone maps: DDL, planning, MVCC, durability, faults."""

from __future__ import annotations

import numpy as np
import pytest

from flock.db import Database
from flock.db import index as index_module
from flock.db.index import ZONE_ROWS
from flock.errors import CatalogError, FaultInjected, SecurityError
from flock.observability.metrics import metrics
from flock.testing import faultpoints


@pytest.fixture(autouse=True)
def _force_index_paths(monkeypatch):
    # These tests assert index behavior directly; neutralize the
    # FLOCK_INDEXES kill switch so the no-index CI lane can run them too.
    monkeypatch.delenv("FLOCK_INDEXES", raising=False)


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, cat INTEGER, "
        "price FLOAT, name TEXT)"
    )
    database.executemany(
        "INSERT INTO items VALUES (?, ?, ?, ?)",
        [(i, i % 7, float(i) / 2, f"n{i % 5}") for i in range(1, 501)],
    )
    return database


# ----------------------------------------------------------------------
# DDL surface
# ----------------------------------------------------------------------
class TestIndexDDL:
    def test_create_and_drop_index(self, db):
        db.execute("CREATE INDEX items_cat ON items (cat)")
        assert db.catalog.has_index("items_cat")
        db.execute("DROP INDEX items_cat")
        assert not db.catalog.has_index("items_cat")

    def test_drop_index_if_exists(self, db):
        db.execute("DROP INDEX IF EXISTS nope")  # no error
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX nope")

    def test_duplicate_index_name_rejected(self, db):
        db.execute("CREATE INDEX items_cat ON items (cat)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX items_cat ON items (id)")

    def test_unknown_table_and_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX i1 ON missing (cat)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX i2 ON items (missing)")

    def test_drop_table_drops_its_indexes(self, db):
        db.execute("CREATE INDEX items_cat ON items (cat)")
        db.execute("DROP TABLE items")
        assert not db.catalog.has_index("items_cat")

    def test_auto_primary_key_index(self, db):
        table = db.catalog.table("items")
        idx = table.index("items_pkey")
        assert idx is not None and idx.defn.auto
        # Auto indexes live on the table only, outside the DDL namespace.
        assert not db.catalog.has_index("items_pkey")

    def test_index_ddl_bumps_invalidation_epoch(self, db):
        before = db.invalidation_epoch
        db.execute("CREATE INDEX items_cat ON items (cat)")
        mid = db.invalidation_epoch
        db.execute("DROP INDEX items_cat")
        assert before < mid < db.invalidation_epoch

    def test_non_admin_needs_table_ownership(self, db):
        db.execute("CREATE USER bob")
        with pytest.raises(SecurityError):
            db.execute("CREATE INDEX b1 ON items (cat)", user="bob")


# ----------------------------------------------------------------------
# Planning and execution
# ----------------------------------------------------------------------
class TestIndexAccessPaths:
    def test_point_lookup_uses_pk_index(self, db):
        plan = db.explain("SELECT name FROM items WHERE id = 42")
        assert "IndexLookup" in plan and "index=items_pkey" in plan
        rows = db.execute("SELECT name FROM items WHERE id = 42").rows()
        assert rows == [("n2",)]

    def test_in_list_uses_index(self, db):
        plan = db.explain("SELECT id FROM items WHERE id IN (3, 7, 499)")
        assert "IndexLookup" in plan and "keys=3" in plan
        rows = db.execute(
            "SELECT id FROM items WHERE id IN (3, 7, 499) ORDER BY id"
        ).rows()
        assert rows == [(3,), (7,), (499,)]

    def test_secondary_index_on_non_unique_column(self, db):
        db.execute("CREATE INDEX items_cat ON items (cat)")
        with_index = db.execute(
            "SELECT id FROM items WHERE cat = 3 ORDER BY id"
        ).rows()
        db.execute("SET flock.indexes = 0")
        without = db.execute(
            "SELECT id FROM items WHERE cat = 3 ORDER BY id"
        ).rows()
        assert with_index == without and len(with_index) > 50

    def test_low_selectivity_predicate_skips_index(self, db):
        # cat has 7 distinct values over 500 rows: ~14% per key is under
        # the 20% ceiling, but two additional duplicates of every key push
        # a 3-key IN list over it.
        db.execute("CREATE INDEX items_cat ON items (cat)")
        plan = db.explain("SELECT id FROM items WHERE cat IN (1, 2, 3)")
        assert "IndexLookup" not in plan

    def test_explain_analyze_reports_index(self, db):
        text = db.explain_analyze("SELECT name FROM items WHERE id = 7")
        assert "index=items_pkey" in text

    def test_explain_analyze_reports_morsels_pruned(self):
        database = Database()
        database.execute("CREATE TABLE big (k INTEGER, v INTEGER)")
        n = ZONE_ROWS * 3
        database.executemany(
            "INSERT INTO big VALUES (?, ?)",
            [(i, i % 10) for i in range(n)],
        )
        text = database.explain_analyze(
            f"SELECT COUNT(*) FROM big WHERE k >= {ZONE_ROWS * 2}"
        )
        assert "zones=" in text
        assert "morsels_pruned=2" in text

    def test_disabled_indexes_fall_back_to_scan(self, db):
        db.execute("SET flock.indexes = 0")
        plan = db.explain("SELECT name FROM items WHERE id = 42")
        assert "IndexLookup" not in plan
        rows = db.execute("SELECT name FROM items WHERE id = 42").rows()
        assert rows == [("n2",)]
        db.execute("SET flock.indexes = 1")
        assert "IndexLookup" in db.explain(
            "SELECT name FROM items WHERE id = 42"
        )

    def test_set_flock_indexes_validates(self, db):
        from flock.errors import BindError

        with pytest.raises(BindError):
            db.execute("SET flock.indexes = 2")
        db.execute("CREATE USER eve")
        with pytest.raises(SecurityError):
            db.execute("SET flock.indexes = 0", user="eve")

    def test_index_results_match_scan_on_duplicates_and_misses(self, db):
        db.execute("CREATE INDEX items_cat ON items (cat)")
        for sql in (
            "SELECT id FROM items WHERE cat = 999 ORDER BY id",  # miss
            "SELECT id FROM items WHERE id IN (0, 1, 1, 2) ORDER BY id",
            "SELECT COUNT(*) FROM items WHERE id = 250",
        ):
            indexed = db.execute(sql).rows()
            db.execute("SET flock.indexes = 0")
            scanned = db.execute(sql).rows()
            db.execute("SET flock.indexes = 1")
            assert indexed == scanned, sql


# ----------------------------------------------------------------------
# Transactional correctness
# ----------------------------------------------------------------------
class TestIndexMVCC:
    def test_own_staged_writes_visible_inside_transaction(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO items VALUES (1000, 1, 0.5, 'staged')")
        # The snapshot is this txn's staged version, not the head: the
        # lookup declines (index only reflects published heads) and the
        # scan fallback still sees the staged row.
        rows = conn.execute(
            "SELECT name FROM items WHERE id = 1000"
        ).rows()
        assert rows == [("staged",)]
        conn.execute("ROLLBACK")
        assert db.execute(
            "SELECT name FROM items WHERE id = 1000"
        ).rows() == []

    def test_index_advances_on_insert_commits(self, db):
        # Build the PK index, then insert: a pure-INSERT commit advances
        # it in place instead of marking it stale.
        db.execute("SELECT id FROM items WHERE id = 1")
        before = metrics().counter("index.advances").value
        db.execute("INSERT INTO items VALUES (501, 1, 1.0, 'new')")
        assert metrics().counter("index.advances").value > before
        assert db.execute(
            "SELECT name FROM items WHERE id = 501"
        ).rows() == [("new",)]

    def test_index_rebuilds_after_update_and_delete(self, db):
        db.execute("SELECT id FROM items WHERE id = 1")
        db.execute("UPDATE items SET cat = 0 WHERE id = 10")
        db.execute("DELETE FROM items WHERE id = 20")
        assert db.execute(
            "SELECT COUNT(*) FROM items WHERE id = 20"
        ).rows() == [(0,)]
        assert db.execute(
            "SELECT cat FROM items WHERE id = 10"
        ).rows() == [(0,)]

    def test_multi_statement_transaction_commit(self, db):
        db.execute("SELECT id FROM items WHERE id = 1")  # build index
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO items VALUES (600, 1, 1.0, 'a')")
        conn.execute("INSERT INTO items VALUES (601, 2, 2.0, 'b')")
        conn.execute("COMMIT")
        rows = db.execute(
            "SELECT id FROM items WHERE id IN (600, 601) ORDER BY id"
        ).rows()
        assert rows == [(600,), (601,)]


# ----------------------------------------------------------------------
# Zone maps
# ----------------------------------------------------------------------
class TestZoneMaps:
    def _version(self, values):
        database = Database()
        database.execute("CREATE TABLE z (k INTEGER)")
        database.executemany(
            "INSERT INTO z VALUES (?)", [(v,) for v in values]
        )
        return database.catalog.table("z").head_version

    def test_prune_row_mask_drops_out_of_range_zones(self):
        values = list(range(ZONE_ROWS * 3))
        version = self._version(values)
        mask, pruned, total = index_module.prune_row_mask(
            version, [(0, ">=", ZONE_ROWS * 2)]
        )
        assert (pruned, total) == (2, 3)
        assert mask is not None and int(mask.sum()) == ZONE_ROWS

    def test_null_rows_are_prunable(self):
        # A zone of pure NULLs can never satisfy a comparison.
        values = [None] * ZONE_ROWS + list(range(ZONE_ROWS))
        version = self._version(values)
        mask, pruned, total = index_module.prune_row_mask(
            version, [(0, "<", ZONE_ROWS)]
        )
        assert (pruned, total) == (1, 2)
        database_rows = np.nonzero(mask)[0]
        assert database_rows[0] == ZONE_ROWS  # all-null zone dropped

    def test_null_literal_drops_everything(self):
        version = self._version(list(range(ZONE_ROWS)))
        mask, pruned, total = index_module.prune_row_mask(
            version, [(0, "=", None)]
        )
        assert pruned == total == 1
        assert mask is not None and int(mask.sum()) == 0

    def test_no_predicate_match_returns_none_mask(self):
        version = self._version(list(range(ZONE_ROWS * 2)))
        mask, pruned, _total = index_module.prune_row_mask(
            version, [(0, ">=", 0)]
        )
        assert mask is None and pruned == 0

    def test_append_reuses_full_zone_prefix(self):
        database = Database()
        database.execute("CREATE TABLE z (k INTEGER)")
        database.executemany(
            "INSERT INTO z VALUES (?)",
            [(v,) for v in range(ZONE_ROWS)],
        )
        v1 = database.catalog.table("z").head_version
        z1 = index_module.zones_for(v1, 0)
        database.executemany(
            "INSERT INTO z VALUES (?)",
            [(v,) for v in range(ZONE_ROWS, ZONE_ROWS * 2)],
        )
        v2 = database.catalog.table("z").head_version
        z2 = index_module.zones_for(v2, 0)
        assert z2.mins[0] == z1.mins[0] and z2.maxs[0] == z1.maxs[0]
        assert len(z2.mins) == 2

    def test_zone_pruned_results_match_scan(self):
        database = Database()
        database.execute("CREATE TABLE z (k INTEGER, v FLOAT)")
        rng = np.random.default_rng(3)
        database.executemany(
            "INSERT INTO z VALUES (?, ?)",
            [
                (int(k), float(x))
                for k, x in zip(
                    np.sort(rng.integers(0, 10_000, ZONE_ROWS * 2)),
                    rng.uniform(0, 1, ZONE_ROWS * 2),
                )
            ],
        )
        sql = "SELECT COUNT(*), SUM(v) FROM z WHERE k > 9000"
        pruned = database.execute(sql).rows()
        database.execute("SET flock.indexes = 0")
        scanned = database.execute(sql).rows()
        assert repr(pruned) == repr(scanned)


# ----------------------------------------------------------------------
# Durability: checkpoints, WAL replay, crash recovery
# ----------------------------------------------------------------------
class TestIndexDurability:
    def test_persist_round_trip_keeps_index_defs(self, db, tmp_path):
        from flock.db.persist import load_database, save_database

        db.execute("CREATE INDEX items_cat ON items (cat)")
        save_database(db, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.catalog.has_index("items_cat")
        assert "IndexLookup" in restored.explain(
            "SELECT name FROM items WHERE id = 42"
        )
        assert restored.execute(
            "SELECT name FROM items WHERE id = 42"
        ).rows() == [("n2",)]

    def test_wal_replay_restores_indexes(self, tmp_path):
        durable = Database.open(tmp_path / "db")
        durable.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)"
        )
        durable.execute("CREATE INDEX t_v ON t (v)")
        durable.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, i * 2) for i in range(100)]
        )
        durable.execute("DROP INDEX t_v")
        durable.execute("CREATE INDEX t_v2 ON t (v)")
        # Crash: reopen without close — recovery replays the WAL.
        reopened = Database.open(tmp_path / "db")
        assert reopened.catalog.has_index("t_v2")
        assert not reopened.catalog.has_index("t_v")
        assert reopened.execute(
            "SELECT v FROM t WHERE k = 42"
        ).rows() == [(84,)]
        assert "IndexLookup" in reopened.explain(
            "SELECT v FROM t WHERE k = 42"
        )
        reopened.close()

    def test_checkpoint_then_replay_is_idempotent(self, tmp_path):
        durable = Database.open(tmp_path / "db", checkpoint_bytes=0)
        durable.execute(
            "CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)"
        )
        durable.execute("CREATE INDEX t_v ON t (v)")
        durable.execute("INSERT INTO t VALUES (1, 10)")
        durable.checkpoint()
        durable.execute("INSERT INTO t VALUES (2, 20)")
        reopened = Database.open(tmp_path / "db", checkpoint_bytes=0)
        assert reopened.catalog.has_index("t_v")
        assert reopened.execute(
            "SELECT k FROM t WHERE v = 20"
        ).rows() == [(2,)]
        reopened.close()


# ----------------------------------------------------------------------
# Fault injection and observability
# ----------------------------------------------------------------------
class TestIndexFaultsAndMetrics:
    def test_rebuild_faultpoint_fires_and_recovers(self, db):
        faultpoints.clear()
        try:
            faultpoints.set_fault("index.pre_rebuild", action="error")
            with pytest.raises(FaultInjected):
                db.execute("SELECT name FROM items WHERE id = 42")
        finally:
            faultpoints.clear()
        # Disarmed: the next lookup rebuilds and answers correctly.
        assert db.execute(
            "SELECT name FROM items WHERE id = 42"
        ).rows() == [("n2",)]

    def test_lookup_and_rebuild_counters(self, db):
        lookups = metrics().counter("index.lookups").value
        rebuilds = metrics().counter("index.rebuilds").value
        db.execute("SELECT name FROM items WHERE id = 42")
        assert metrics().counter("index.lookups").value > lookups
        assert metrics().counter("index.rebuilds").value > rebuilds

    def test_dropped_index_in_cached_plan_falls_back(self, db):
        from flock.db.binder import Binder
        from flock.db.sql.parser import parse_statement

        sql = "SELECT name FROM items WHERE id = 42"
        bound = Binder(db, None).bind_query(parse_statement(sql))
        plan = db.optimizer.optimize(bound, db)
        # Simulate a stale serving-cache plan: drop the index under it.
        db.catalog.table("items").drop_index("items_pkey")
        fallbacks = metrics().counter("index.fallbacks").value
        result = db.execute_plan(plan, sql=sql)
        assert result.rows() == [("n2",)]
        assert metrics().counter("index.fallbacks").value > fallbacks
