"""End-to-end accountability: scoring and decisions in the provenance graph."""

import pytest

from flock.lifecycle import FlockSession
from flock.ml import LogisticRegression
from flock.ml.datasets import make_loans
from flock.policy import CapPolicy, PolicyEngine, VetoPolicy
from flock.provenance import ProvenanceCatalog, SQLProvenanceCapture
from flock.provenance.model import EntityType, Relation


class TestPredictProvenance:
    def test_capture_records_model_read(self):
        catalog = ProvenanceCatalog()
        capture = SQLProvenanceCapture(catalog)
        result = capture.capture_query(
            "SELECT id, PREDICT(risk_model) AS p FROM patients "
            "WHERE PREDICT(risk_model) > 0.5"
        )
        assert result.models_scored == ["risk_model"]
        model = catalog.find(EntityType.MODEL, "risk_model")
        assert model is not None
        reads = catalog.graph.edges(relation=Relation.READS,
                                    dst_id=model.entity_id)
        assert len(reads) == 1  # deduped across the two PREDICT mentions

    def test_predict_args_columns_still_captured(self):
        catalog = ProvenanceCatalog()
        capture = SQLProvenanceCapture(catalog)
        result = capture.capture_query(
            "SELECT PREDICT(m, age, income) FROM people"
        )
        assert set(result.input_columns) == {"people.age", "people.income"}
        assert result.models_scored == ["m"]


class TestDecisionProvenance:
    def test_decisions_recorded_with_links(self):
        catalog = ProvenanceCatalog()
        engine = PolicyEngine(
            [CapPolicy("cap", 1.0)], provenance_catalog=catalog
        )
        decision = engine.decide("m", 5.0, {})
        entity = catalog.find(
            EntityType.DECISION, f"decision-{decision.decision_id}"
        )
        assert entity is not None
        assert entity.properties["vetoed"] is False
        upstream = {
            e.name
            for e in catalog.graph.lineage(entity.entity_id, "upstream")
        }
        assert upstream == {"m", "cap"}

    def test_pass_through_policies_not_linked(self):
        catalog = ProvenanceCatalog()
        engine = PolicyEngine(
            [CapPolicy("cap", 100.0)], provenance_catalog=catalog
        )
        decision = engine.decide("m", 1.0, {})
        entity = catalog.find(
            EntityType.DECISION, f"decision-{decision.decision_id}"
        )
        governed = catalog.graph.edges(
            relation=Relation.GOVERNED_BY, src_id=entity.entity_id
        )
        assert governed == []

    def test_vetoed_decision_recorded(self):
        catalog = ProvenanceCatalog()
        engine = PolicyEngine(
            [VetoPolicy("nope", lambda v, c: True)],
            provenance_catalog=catalog,
        )
        decision = engine.decide("m", 1.0, {})
        entity = catalog.find(
            EntityType.DECISION, f"decision-{decision.decision_id}"
        )
        assert entity.properties["vetoed"] is True

    def test_no_catalog_no_recording(self):
        engine = PolicyEngine([CapPolicy("cap", 1.0)])
        engine.decide("m", 5.0, {})  # must not raise


class TestFullChain:
    def test_table_change_impact_reaches_decisions(self):
        """The governance question in full: who is affected if this data
        changes? Answer: the model trained on it, the queries that scored
        it, and the decisions made from those scores."""
        session = FlockSession()
        session.load_dataset(make_loans(80, random_state=1))
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=50), "loans",
            ["income", "credit_score"], "approved",
        )
        session.sql("SELECT PREDICT(m) FROM loans LIMIT 3")
        session.policies.add_policy(CapPolicy("cap", 0.9))
        decision = session.policies.decide("m", 0.95, {})

        model_version = session.provenance.find(
            EntityType.MODEL_VERSION, "m:v1"
        )
        impacted_types = {
            e.entity_type
            for e in session.provenance.graph.impacted_by(
                model_version.entity_id
            )
        }
        # The model version traces back to the training run at minimum.
        assert EntityType.TRAINING_RUN in impacted_types

        model = session.provenance.find(EntityType.MODEL, "m")
        impacted = session.provenance.graph.impacted_by(model.entity_id)
        kinds = {e.entity_type for e in impacted}
        assert EntityType.QUERY in kinds  # the scoring query
        assert EntityType.DECISION in kinds  # the governed decision
