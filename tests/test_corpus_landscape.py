"""Tests for the evaluation substrates: notebook corpus and landscape."""

import dataclasses

import numpy as np
import pytest

from flock.corpus.analysis import analyze_corpus, observed_popularity
from flock.corpus.generator import (
    HEAD_PACKAGES,
    YEAR_2017,
    YEAR_2019,
    CorpusConfig,
    generate_corpus,
    package_universe,
    zipf_weights,
)
from flock.errors import FlockError
from flock.landscape import (
    FEATURES,
    SYSTEMS,
    Support,
    feature_matrix,
    group_scores,
    render_matrix,
    trend_summary,
)

SMALL_2017 = dataclasses.replace(YEAR_2017, n_notebooks=2000)
SMALL_2019 = dataclasses.replace(YEAR_2019, n_notebooks=6000)


class TestGenerator:
    def test_deterministic(self):
        a = generate_corpus(SMALL_2017)
        b = generate_corpus(SMALL_2017)
        assert [nb.packages for nb in a.notebooks[:20]] == [
            nb.packages for nb in b.notebooks[:20]
        ]

    def test_every_notebook_imports_something(self):
        corpus = generate_corpus(SMALL_2017)
        assert all(len(nb.packages) >= 1 for nb in corpus.notebooks)

    def test_zipf_weights_normalized_and_monotone(self):
        weights = zipf_weights(100, 1.5, tail_mass=0.1)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 1e-15).all()

    def test_universe_head_first(self):
        names = package_universe(100)
        assert names[: len(HEAD_PACKAGES)] == HEAD_PACKAGES

    def test_config_validation(self):
        with pytest.raises(FlockError):
            CorpusConfig(2020, n_packages=2)
        with pytest.raises(FlockError):
            CorpusConfig(2020, zipf_exponent=-1.0)
        with pytest.raises(FlockError):
            CorpusConfig(2020, tail_mass=1.5)


class TestCoverageAnalysis:
    def test_curve_monotone_in_k(self):
        curve = analyze_corpus(generate_corpus(SMALL_2017))
        values = list(curve.coverage)
        assert values == sorted(values)

    def test_head_packages_dominate(self):
        curve = analyze_corpus(generate_corpus(SMALL_2017))
        assert "numpy" in curve.top_packages[:3]

    def test_unknown_k_raises(self):
        curve = analyze_corpus(generate_corpus(SMALL_2017))
        with pytest.raises(KeyError):
            curve.at(12345)

    def test_popularity_sorted(self):
        corpus = generate_corpus(SMALL_2017)
        popularity = observed_popularity(corpus)
        counts = [c for _, c in popularity]
        assert counts == sorted(counts, reverse=True)

    def test_paper_observations_hold(self):
        """Figure 2's two callouts: ~3× more packages; top-10 covers more."""
        a17 = analyze_corpus(generate_corpus(SMALL_2017))
        a19 = analyze_corpus(generate_corpus(SMALL_2019))
        ratio = a19.total_packages / a17.total_packages
        assert ratio > 2.0
        assert a19.at(10) > a17.at(10)


class TestLandscape:
    def test_matrix_complete(self):
        matrix = feature_matrix()
        assert len(matrix) == len(SYSTEMS) * len(FEATURES)
        assert all(isinstance(v, Support) for v in matrix.values())

    def test_groups(self):
        groups = {g for g, _ in FEATURES}
        assert groups == {"Training", "Serving", "Data Management"}

    def test_paper_trend_1_proprietary_data_management(self):
        trends = trend_summary()
        assert trends["dm_gap"] > 0.5  # clearly stronger

    def test_paper_trend_2_no_complete_third_party(self):
        trends = trend_summary()
        assert trends["best_third_party_completeness"] < 0.9

    def test_scores_in_range(self):
        for system_scores in group_scores().values():
            for value in system_scores.values():
                assert 0.0 <= value <= 2.0

    def test_render_contains_all_systems(self):
        text = render_matrix()
        for system in SYSTEMS:
            assert system.name in text
        assert "legend" in text

    def test_unknown_cells_excluded_from_scores(self):
        # LinkedIn has an UNKNOWN cell: its Training average must still be
        # a valid number.
        scores = group_scores()["LinkedIn ProML"]
        assert np.isfinite(scores["Training"])
