"""Model registry tests: versioning, transactional deployment, governance."""

import numpy as np
import pytest

from flock import create_database
from flock.db.types import DataType
from flock.errors import RegistryError
from flock.ml import LinearRegression
from flock.ml.datasets import make_regression
from flock.mlgraph import to_graph
from flock.registry import ModelRegistry


@pytest.fixture
def graph():
    X, y, _ = make_regression(50, 3, random_state=0)
    model = LinearRegression().fit(X, y)
    return to_graph(model, ["a", "b", "c"], name="m")


class TestDeployment:
    def test_versions_increment(self, graph):
        registry = ModelRegistry()
        v1 = registry.deploy("m", graph)
        v2 = registry.deploy("m", graph)
        assert (v1.version, v2.version) == (1, 2)
        assert registry.latest("m").version == 2
        assert registry.version("m", 1).version == 1
        assert len(registry.versions("m")) == 2

    def test_unknown_model(self):
        registry = ModelRegistry()
        with pytest.raises(RegistryError):
            registry.latest("ghost")
        with pytest.raises(RegistryError):
            registry.versions("ghost")

    def test_unknown_version(self, graph):
        registry = ModelRegistry()
        registry.deploy("m", graph)
        with pytest.raises(RegistryError):
            registry.version("m", 7)

    def test_non_graph_rejected(self):
        registry = ModelRegistry()
        with pytest.raises(RegistryError):
            registry.deploy("m", {"not": "a graph"})

    def test_deploy_many_atomic_visibility(self, graph):
        registry = ModelRegistry()
        versions = registry.deploy_many([("a", graph), ("b", graph)])
        assert [v.name for v in versions] == ["a", "b"]
        assert registry.has_model("a") and registry.has_model("b")

    def test_empty_deploy_many_rejected(self):
        with pytest.raises(RegistryError):
            ModelRegistry().deploy_many([])

    def test_rollback_is_append_only(self, graph):
        import numpy as np

        from flock.mlgraph import GraphRuntime, Node, TensorSpec
        from flock.mlgraph.graph import Graph

        other = Graph(
            "m",
            [TensorSpec("a"), TensorSpec("b"), TensorSpec("c")],
            [TensorSpec("score")],
            [
                Node("pack", ["a", "b", "c"], ["mat"]),
                Node("linear", ["mat"], ["score"],
                     {"weights": [9.0, 9.0, 9.0], "bias": 0.0}),
            ],
            output_kinds={"score": "score"},
        )
        registry = ModelRegistry()
        registry.deploy("m", graph)  # v1
        registry.deploy("m", other)  # v2 (the bad rollout)
        rolled = registry.rollback("m", to_version=1)
        assert rolled.version == 3
        assert "rollback to v1" in rolled.description
        # v3 serves v1's behaviour.
        feeds = {n: np.ones(2) for n in ("a", "b", "c")}
        v1_out = GraphRuntime().run(registry.version("m", 1).graph, feeds)
        v3_out = GraphRuntime().run(registry.latest("m").graph, feeds)
        key = registry.latest("m").graph.output_names[0]
        assert np.allclose(v1_out[key], v3_out[key])
        # History intact: all three versions remain queryable.
        assert [v.version for v in registry.versions("m")] == [1, 2, 3]

    def test_rollback_unknown_version(self, graph):
        registry = ModelRegistry()
        registry.deploy("m", graph)
        with pytest.raises(RegistryError):
            registry.rollback("m", to_version=5)

    def test_metrics_and_run_id_recorded(self, graph):
        registry = ModelRegistry()
        mv = registry.deploy(
            "m", graph, metrics={"r2": 0.9}, training_run_id="run-7"
        )
        assert mv.metrics == {"r2": 0.9}
        assert mv.training_run_id == "run-7"


class TestSignature:
    def test_signature_shape(self, graph):
        registry = ModelRegistry()
        registry.deploy("m", graph)
        signature = registry.signature("m")
        assert signature.input_names == ["a", "b", "c"]
        assert signature.input_dtypes == [DataType.FLOAT] * 3
        assert signature.output_fields[0].name == "score"
        assert signature.output_fields[0].dtype is DataType.FLOAT

    def test_scoring_artifact_is_graph(self, graph):
        registry = ModelRegistry()
        registry.deploy("m", graph)
        assert registry.scoring_artifact("m") is graph


class TestModelsAsData:
    def test_deploy_mirrors_into_system_table(self, graph):
        database, registry = create_database()
        registry.deploy("m", graph, description="first")
        rows = database.execute(
            "SELECT name, version, description FROM flock_models"
        ).rows()
        assert rows == [("m", 1, "first")]

    def test_multi_model_rollout_single_version_bump(self, graph):
        database, registry = create_database()
        table = database.catalog.table(ModelRegistry.SYSTEM_TABLE)
        before = table.version_count
        registry.deploy_many([("a", graph), ("b", graph)])
        # One transaction → exactly one new table version for both rows.
        assert table.version_count == before + 1
        assert database.execute(
            "SELECT COUNT(*) FROM flock_models"
        ).scalar() == 2

    def test_deployment_audited(self, graph):
        database, registry = create_database()
        registry.deploy("m", graph)
        records = database.audit.log.records(action="DEPLOY_MODEL")
        assert records and records[0].object_name == "model:m"

    def test_registry_reload_from_database(self, graph):
        database, registry = create_database()
        registry.deploy("m", graph)
        registry.deploy("m", graph)
        fresh = ModelRegistry()
        loaded = fresh.load_from_database(database)
        assert loaded == 2
        assert fresh.latest("m").version == 2
        # The reloaded graph still scores.
        restored = fresh.scoring_artifact("m")
        from flock.mlgraph import GraphRuntime

        out = GraphRuntime().run(
            restored,
            {"a": np.zeros(2), "b": np.zeros(2), "c": np.zeros(2)},
        )
        assert len(out[restored.output_names[0]]) == 2
