"""Write-ahead logging, checkpointing and recovery.

These tests exercise the durability machinery through its public entry
points (``Database.open`` / ``flock.open_session``): commits must survive a
reopen byte-for-byte, checkpoints must truncate the log without losing
state, and injected append/fsync/checkpoint failures must poison the log
rather than acknowledge an undurable commit.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

import flock
from flock.db import Database
from flock.db import wal as wal_module
from flock.errors import (
    DurabilityError,
    FaultInjected,
    FlockError,
    SecurityError,
)
from flock.testing import faultpoints


@pytest.fixture(autouse=True)
def _clean_faults():
    faultpoints.clear()
    yield
    faultpoints.clear()


def reopen(db: Database, path, **kwargs) -> Database:
    db.close()
    return Database.open(path, **kwargs)


# ----------------------------------------------------------------------
# Basic durability roundtrips
# ----------------------------------------------------------------------
class TestDurabilityRoundtrip:
    def test_fresh_directory_then_reopen(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        db.execute("UPDATE t SET b = 'z' WHERE a = 2")
        db.execute("DELETE FROM t WHERE a = 1")
        expected = db.execute("SELECT * FROM t ORDER BY a").rows()

        db = reopen(db, tmp_path)
        assert db.execute("SELECT * FROM t ORDER BY a").rows() == expected
        report = db.wal.last_recovery
        assert report.commits_replayed == 3  # insert, update, delete
        assert report.ddl_replayed >= 1
        assert report.tail_status == "clean"
        db.close()

    def test_awkward_values_survive(self, tmp_path):
        """NULL, NaN, ±inf, DATE and unicode all round-trip the log."""
        db = Database.open(tmp_path)
        db.execute(
            "CREATE TABLE v (id INT PRIMARY KEY, f FLOAT, s TEXT, d DATE, "
            "ok BOOLEAN)"
        )
        db.execute(
            "INSERT INTO v VALUES (?, ?, ?, ?, ?)",
            [1, float("nan"), "naïve — ünïcode", "2024-02-29", True],
        )
        db.execute(
            "INSERT INTO v VALUES (?, ?, ?, ?, ?)",
            [2, float("inf"), None, None, False],
        )
        db.execute(
            "INSERT INTO v VALUES (?, ?, ?, ?, ?)",
            [3, float("-inf"), "", "1970-01-01", None],
        )

        db = reopen(db, tmp_path)
        rows = db.execute("SELECT * FROM v ORDER BY id").rows()
        assert math.isnan(rows[0][1])
        assert rows[0][2] == "naïve — ünïcode"
        import datetime

        assert rows[0][3:] == (datetime.date(2024, 2, 29), True)
        assert rows[1][1:] == (float("inf"), None, None, False)
        assert rows[2][1:] == (
            float("-inf"),
            "",
            datetime.date(1970, 1, 1),
            None,
        )
        db.close()

    def test_multi_statement_transaction_is_atomic(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (x INT)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO a VALUES (1)")
        conn.execute("INSERT INTO b VALUES (1)")
        conn.execute("COMMIT")
        # An open transaction at close time must not survive.
        conn.execute("BEGIN")
        conn.execute("INSERT INTO a VALUES (2)")

        db = reopen(db, tmp_path)
        assert db.execute("SELECT * FROM a").rows() == [(1,)]
        assert db.execute("SELECT * FROM b").rows() == [(1,)]
        db.close()

    def test_rollback_never_reaches_the_log(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        before = db.wal.log_bytes
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.execute("ROLLBACK")
        assert db.wal.log_bytes == before
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
        db.close()

    def test_executemany_durable(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)")
        db.executemany(
            "INSERT INTO kv VALUES (?, ?)", [(i, f"v{i}") for i in range(40)]
        )
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM kv").scalar() == 40
        assert db.execute(
            "SELECT v FROM kv WHERE k = 17"
        ).scalar() == "v17"
        db.close()

    def test_version_history_replays_identically(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("DELETE FROM t WHERE x = 1")
        live = db.catalog.table("t")
        live_ids = [v.version_id for v in live.versions()]
        live_ops = [v.operation for v in live.versions()]

        db = reopen(db, tmp_path)
        recovered = db.catalog.table("t")
        assert [v.version_id for v in recovered.versions()] == live_ids
        assert [v.operation for v in recovered.versions()] == live_ops
        db.close()


# ----------------------------------------------------------------------
# DDL, security and views
# ----------------------------------------------------------------------
class TestCatalogAndSecurityReplay:
    def test_views_users_grants_survive(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE emp (id INT, dept TEXT, salary FLOAT)")
        db.execute(
            "INSERT INTO emp VALUES (1, 'eng', 100.0), (2, 'hr', 70.0)"
        )
        db.execute("CREATE VIEW eng AS SELECT * FROM emp WHERE dept = 'eng'")
        db.execute("CREATE USER analyst")
        db.execute("GRANT SELECT ON eng TO analyst")

        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM eng").scalar() == 1
        # The grant line survives: analyst reads the view, not the table.
        assert db.execute(
            "SELECT COUNT(*) FROM eng", user="analyst"
        ).scalar() == 1
        with pytest.raises(SecurityError):
            db.execute("SELECT * FROM emp", user="analyst")
        db.close()

    def test_drop_table_and_view_replay(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("CREATE VIEW v AS SELECT * FROM t")
        db.execute("DROP VIEW v")
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (y TEXT)")
        db.execute("INSERT INTO t VALUES ('second life')")

        db = reopen(db, tmp_path)
        assert db.catalog.view_names() == []
        assert db.execute("SELECT y FROM t").rows() == [("second life",)]
        db.close()

    def test_revoke_replays(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("CREATE USER u")
        db.execute("GRANT SELECT ON t TO u")
        db.execute("REVOKE SELECT ON t FROM u")
        db = reopen(db, tmp_path)
        with pytest.raises(SecurityError):
            db.execute("SELECT * FROM t", user="u")
        db.close()


# ----------------------------------------------------------------------
# Model deployment durability (the paper's "models are data" claim)
# ----------------------------------------------------------------------
class TestModelDurability:
    def test_deployed_model_predicts_after_reopen(self, tmp_path):
        from flock.ml import LinearRegression
        from flock.ml.datasets import make_regression
        from flock.mlgraph import to_graph

        X, y, _ = make_regression(50, 3, random_state=0)
        graph = to_graph(LinearRegression().fit(X, y), ["a", "b", "c"])

        session = flock.open_session(tmp_path)
        session.db.execute("CREATE TABLE pts (a FLOAT, b FLOAT, c FLOAT)")
        session.db.execute("INSERT INTO pts VALUES (0.1, -0.4, 2.0)")
        session.registry.deploy("m", graph, description="durable")
        live = session.db.execute(
            "SELECT PREDICT(m, a, b, c) FROM pts"
        ).scalar()
        session.db.close()

        session = flock.open_session(tmp_path)
        recovered = session.db.execute(
            "SELECT PREDICT(m, a, b, c) FROM pts"
        ).scalar()
        assert recovered == pytest.approx(live, abs=0, rel=0)
        # Exactly one mirrored row and exactly one DEPLOY audit record.
        assert session.db.execute(
            "SELECT COUNT(*) FROM flock_models WHERE name = 'm'"
        ).scalar() == 1
        deploys = session.db.audit.log.records(action="DEPLOY_MODEL")
        assert len(deploys) == 1
        assert session.db.audit.log.verify_chain()
        session.db.close()


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_checkpoint_truncates_and_recovers(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.checkpoint()
        assert db.wal.generation == 2
        assert db.wal.log_bytes == 0
        db.execute("INSERT INTO t VALUES (2)")

        db = reopen(db, tmp_path)
        report = db.wal.last_recovery
        assert report.checkpoint_loaded
        assert report.generation == 2
        # Only the post-checkpoint commit replays from the log.
        assert report.commits_replayed == 1
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db.close()

    def test_audit_chain_spans_checkpoint(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        live = [(r.sequence, r.action) for r in db.audit.log]
        db.checkpoint()
        db.execute("INSERT INTO t VALUES (2)")
        live.append(
            [(r.sequence, r.action) for r in db.audit.log][-1]
        )

        db = reopen(db, tmp_path)
        recovered = [(r.sequence, r.action) for r in db.audit.log]
        assert recovered == live
        assert db.audit.log.verify_chain()
        db.close()

    def test_auto_checkpoint_on_log_growth(self, tmp_path):
        db = Database.open(tmp_path, checkpoint_bytes=2000)
        db.execute("CREATE TABLE t (x INT, payload TEXT)")
        for i in range(30):
            db.execute(f"INSERT INTO t VALUES ({i}, '{'p' * 200}')")
        assert db.wal.generation > 1  # at least one auto-checkpoint fired
        assert db.wal.log_bytes < 2000 + 1500
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 30
        db.close()

    def test_checkpoint_bytes_zero_disables(self, tmp_path):
        db = Database.open(tmp_path, checkpoint_bytes=0)
        db.execute("CREATE TABLE t (x TEXT)")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ('{'q' * 300}')")
        assert db.wal.generation == 1
        db.close()

    def test_checkpoint_requires_durable_database(self):
        with pytest.raises(FlockError, match="durable"):
            Database().checkpoint()


# ----------------------------------------------------------------------
# Fault injection: poisoning and interrupted checkpoints
# ----------------------------------------------------------------------
class TestFaultPoisoning:
    def test_fsync_failure_poisons_until_reopen(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        faultpoints.set_fault("wal.pre_fsync", action="error")
        with pytest.raises(FaultInjected):
            db.execute("INSERT INTO t VALUES (2)")
        assert db.wal.poisoned
        # The failed commit rolled back; nothing new is acknowledged.
        with pytest.raises(DurabilityError, match="poisoned"):
            db.execute("INSERT INTO t VALUES (3)")
        faultpoints.clear()

        db = reopen(db, tmp_path)
        survivors = {r[0] for r in db.execute("SELECT x FROM t").rows()}
        assert 1 in survivors
        assert 3 not in survivors
        db.execute("INSERT INTO t VALUES (4)")  # healthy again
        db.close()

    def test_append_failure_during_ddl_poisons(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        faultpoints.set_fault("wal.pre_fsync", action="error")
        with pytest.raises(FaultInjected):
            db.execute("CREATE TABLE u (y INT)")
        faultpoints.clear()
        with pytest.raises(DurabilityError):
            db.execute("INSERT INTO t VALUES (1)")
        db = reopen(db, tmp_path)
        db.execute("INSERT INTO t VALUES (1)")
        db.close()

    def test_mid_write_checkpoint_failure_is_harmless(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        faultpoints.set_fault("checkpoint.mid_write", action="error")
        with pytest.raises(FaultInjected):
            db.checkpoint()
        faultpoints.clear()
        # The failed snapshot never swapped in: the WAL is untouched and
        # the engine keeps committing.
        assert not db.wal.poisoned
        assert db.wal.generation == 1
        db.execute("INSERT INTO t VALUES (2)")
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
        assert not (tmp_path / "checkpoint.new").exists()
        db.close()

    def test_pre_swap_checkpoint_failure_is_harmless(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        faultpoints.set_fault("checkpoint.pre_swap", action="error")
        with pytest.raises(FaultInjected):
            db.checkpoint()
        faultpoints.clear()
        assert not db.wal.poisoned
        db.execute("INSERT INTO t VALUES (2)")
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db.close()

    def test_post_swap_checkpoint_failure_poisons(self, tmp_path):
        """Snapshot swapped in but the log still carries the old generation:
        acknowledging another commit would write into a log recovery must
        discard, so the WAL refuses everything until reopen."""
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        faultpoints.set_fault("checkpoint.post_swap", action="error")
        with pytest.raises(FaultInjected):
            db.checkpoint()
        faultpoints.clear()
        assert db.wal.poisoned
        with pytest.raises(DurabilityError):
            db.execute("INSERT INTO t VALUES (2)")

        db = reopen(db, tmp_path)
        report = db.wal.last_recovery
        assert report.tail_status == "stale_generation"
        assert report.generation == 2
        assert db.execute("SELECT x FROM t").rows() == [(1,)]
        db.execute("INSERT INTO t VALUES (2)")
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db.close()


# ----------------------------------------------------------------------
# Sync modes
# ----------------------------------------------------------------------
class TestSyncModes:
    @pytest.mark.parametrize("mode", ["commit", "group", "off"])
    def test_roundtrip_in_every_mode(self, tmp_path, mode):
        db = Database.open(tmp_path, sync_mode=mode, group_window_ms=0.0)
        db.execute("CREATE TABLE t (x INT)")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i})")
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 10
        db.close()

    def test_group_commit_concurrent_writers(self, tmp_path):
        import threading

        db = Database.open(tmp_path, sync_mode="group", group_window_ms=0.5)
        db.execute("CREATE TABLE t (x INT, worker INT)")
        errors: list[BaseException] = []

        def work(worker: int) -> None:
            try:
                for i in range(15):
                    db.execute(
                        f"INSERT INTO t VALUES ({i}, {worker})"
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 60
        db.close()

    def test_invalid_sync_mode_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="sync mode"):
            Database.open(tmp_path, sync_mode="yolo")


# ----------------------------------------------------------------------
# Audit durability edges
# ----------------------------------------------------------------------
class TestAuditDurability:
    def test_trailing_read_audits_survive_clean_close(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT * FROM t")  # read-only: audits, no WAL commit
        db.execute("SELECT COUNT(*) FROM t")
        live = [(r.sequence, r.action) for r in db.audit.log]
        live_qlog = len(db.query_log)

        db = reopen(db, tmp_path)
        assert [(r.sequence, r.action) for r in db.audit.log] == live
        assert len(db.query_log) == live_qlog
        assert db.audit.log.verify_chain()
        db.close()


# ----------------------------------------------------------------------
# Legacy snapshots and misc
# ----------------------------------------------------------------------
class TestLegacyAndMisc:
    def test_flat_persist_snapshot_opens_durably(self, tmp_path):
        """A directory written by persist.save_database (the shell's .save)
        seeds a durable database."""
        from flock.db.persist import save_database

        mem = Database()
        mem.execute("CREATE TABLE t (x INT)")
        mem.execute("INSERT INTO t VALUES (7)")
        save_database(mem, tmp_path)

        db = Database.open(tmp_path)
        assert db.wal.last_recovery.checkpoint_loaded
        assert db.execute("SELECT x FROM t").rows() == [(7,)]
        db.execute("INSERT INTO t VALUES (8)")
        db = reopen(db, tmp_path)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2
        db.close()

    def test_open_is_idempotent_on_empty_dir(self, tmp_path):
        db = Database.open(tmp_path)
        db.close()
        db = Database.open(tmp_path)
        assert db.wal.last_recovery.tail_status in ("clean", "missing")
        db.close()

    def test_recovery_report_as_dict(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db = reopen(db, tmp_path)
        report = db.wal.last_recovery.as_dict()
        assert report["directory"] == str(tmp_path)
        assert report["tail_status"] == "clean"
        assert report["ddl_replayed"] == 1
        db.close()

    def test_double_close_is_safe(self, tmp_path):
        db = Database.open(tmp_path)
        db.execute("CREATE TABLE t (x INT)")
        db.close()
        db.close()
