"""Operator-level observability: metrics, spans, EXPLAIN ANALYZE, and the
parameterized execute() API."""

from __future__ import annotations

import pytest

from flock import FlockSession, create_database, observability
from flock.db import Database
from flock.errors import BindError, TypeMismatchError
from flock.inference import CrossOptimizer
from flock.observability import (
    Histogram,
    MetricsRegistry,
    get_tracer,
    metrics,
    render_metrics,
    render_span_tree,
    set_enabled,
)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(7)
        registry.gauge("g").dec(2)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.5}
        assert snap["g"] == {"type": "gauge", "value": 5.0}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_histogram_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p95"] == pytest.approx(95.05)
        assert snap["p99"] == pytest.approx(99.01)

    def test_histogram_window_bounds_percentiles(self):
        h = Histogram("h", window=10)
        for v in range(1, 101):
            h.observe(v)
        # Lifetime totals are exact; percentiles cover the last 10 samples
        # (91..100).
        assert h.count == 100
        assert h.percentile(0.0) == 91.0
        assert h.percentile(1.0) == 100.0
        assert h.percentile(0.5) == pytest.approx(95.5)

    def test_histogram_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_snapshot_prefix_filter_and_names(self):
        registry = MetricsRegistry()
        registry.counter("db.statements").inc()
        registry.counter("exec.operators").inc()
        assert set(registry.snapshot("db.")) == {"db.statements"}
        assert registry.names() == ["db.statements", "exec.operators"]

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_global_registry_is_shared(self):
        assert metrics() is metrics()

    def test_render_metrics_text(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        registry.histogram("h").observe(1.0)
        text = render_metrics(registry.snapshot())
        assert "value=2" in text
        assert "p95" in text


# ----------------------------------------------------------------------
# Trace spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting(self):
        tracer = get_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", {"k": 1}) as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert tracer.last_root is outer
        assert outer.children == [inner]
        assert inner.attributes == {"k": 1}
        assert outer.duration_ns >= inner.duration_ns

    def test_exception_safety(self):
        tracer = get_tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        root = tracer.last_root
        assert root.name == "outer"
        assert root.status == "error"
        assert root.children[0].status == "error"
        assert "ValueError: boom" in root.children[0].error
        # The contextvar unwound cleanly despite the raise.
        assert tracer.current() is None

    def test_find_and_walk(self):
        tracer = get_tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        root = tracer.last_root
        assert root.find("c").name == "c"
        assert root.find("nope") is None
        assert [s.name for s in root.walk()] == ["a", "b", "c"]

    def test_to_dict_and_render(self):
        tracer = get_tracer()
        with tracer.span("root", {"rows": 3}):
            with tracer.span("child"):
                pass
        payload = tracer.last_root.to_dict()
        assert payload["name"] == "root"
        assert payload["attributes"] == {"rows": 3}
        assert payload["children"][0]["name"] == "child"
        text = render_span_tree(tracer.last_root)
        assert "root" in text and "child" in text and "ms" in text
        assert render_span_tree(None) == "(no trace recorded)"

    def test_disabled_tracing_is_inert(self):
        tracer = get_tracer()
        with tracer.span("sentinel"):
            pass
        sentinel = tracer.last_root
        set_enabled(False)
        try:
            with tracer.span("invisible") as span:
                span.set_attribute("k", "v")
            assert span.attributes == {}
            assert tracer.last_root is sentinel  # no new root recorded
        finally:
            set_enabled(True)


# ----------------------------------------------------------------------
# Engine integration: statement spans, metrics, query log
# ----------------------------------------------------------------------
class TestEngineObservability:
    def test_statement_metrics_recorded(self, emp_db):
        before = metrics().counter("db.statements").value
        emp_db.execute("SELECT COUNT(*) FROM emp")
        after = metrics().snapshot("db.")
        assert after["db.statements"]["value"] == before + 1
        assert after["db.statement_ms"]["count"] >= 1

    def test_statement_trace_recorded(self, emp_db):
        emp_db.execute("SELECT name FROM emp WHERE salary > 80")
        trace = emp_db.last_trace
        assert trace is not None and trace.name == "db.statement"
        assert trace.attributes["statement"] == "SELECT"
        assert trace.find("exec.ScanNode") is not None
        assert trace.find("db.bind") is not None
        scan = trace.find("exec.ScanNode")
        assert scan.attributes["rows_out"] == 5

    def test_recent_traces_ring(self, emp_db):
        for _ in range(3):
            emp_db.execute("SELECT COUNT(*) FROM emp")
        assert len(emp_db.recent_traces) >= 3
        assert emp_db.recent_traces[-1] is emp_db.last_trace

    def test_query_log_has_durations(self, emp_db):
        emp_db.execute("SELECT COUNT(*) FROM emp")
        entry = emp_db.query_log[-1]
        assert entry.duration_ms > 0.0

    def test_failed_statement_still_logged_once(self, emp_db):
        log_before = len(emp_db.query_log)
        errors_before = metrics().counter("db.statement_errors").value
        with pytest.raises(BindError):
            emp_db.execute("SELECT nope FROM emp")
        assert len(emp_db.query_log) == log_before + 1
        assert not emp_db.query_log[-1].success
        assert metrics().counter("db.statement_errors").value == \
            errors_before + 1

    def test_result_stats_populated(self, emp_db):
        result = emp_db.execute("SELECT name FROM emp")
        assert result.stats is not None
        assert result.stats.statement_type == "SELECT"
        assert result.stats.rows == 5
        assert result.stats.wall_ms > 0.0
        assert "5 rows" in str(result.stats)

    def test_scoring_spans_and_metrics(self, loan_setup):
        database, *_ = loan_setup
        # Force a real Predict operator (inlining would erase it).
        database.cross_optimizer.enable_inlining = False
        batches_before = metrics().counter("predict.batches").value
        database.execute("SELECT PREDICT(loan_model) FROM loans")
        trace = database.last_trace
        assert trace.find("predict.score") is not None
        assert trace.find("mlgraph.run") is not None
        assert trace.find("xopt.apply") is not None
        assert metrics().counter("predict.batches").value > batches_before


# ----------------------------------------------------------------------
# QueryResult consumer surface
# ----------------------------------------------------------------------
class TestQueryResultSurface:
    def test_len_rows_scalar_to_dict(self, emp_db):
        result = emp_db.execute(
            "SELECT name, salary FROM emp WHERE dept = 'eng' ORDER BY name"
        )
        assert len(result) == 2
        assert result.rows() == [("ann", 100.0), ("bob", 90.0)]
        assert result.to_dict() == {
            "name": ["ann", "bob"],
            "salary": [100.0, 90.0],
        }
        assert result.to_dicts()[0] == {"name": "ann", "salary": 100.0}
        scalar = emp_db.execute("SELECT COUNT(*) FROM emp").scalar()
        assert scalar == 5

    def test_len_of_dml_result(self, emp_db):
        result = emp_db.execute("DELETE FROM emp WHERE dept = 'hr'")
        assert result.affected_rows == 2
        assert len(result) == 2  # row_count mirrors affected_rows for DML
        assert result.rows() == []  # but there is no result batch


# ----------------------------------------------------------------------
# Parameter binding
# ----------------------------------------------------------------------
class TestParameterBinding:
    def test_select_params(self, emp_db):
        result = emp_db.execute(
            "SELECT name FROM emp WHERE salary > ? AND dept = ?",
            [80, "eng"],
        )
        assert sorted(r[0] for r in result.rows()) == ["ann", "bob"]

    def test_insert_update_delete_params(self, emp_db):
        emp_db.execute(
            "INSERT INTO emp VALUES (?, ?, ?, ?, ?)",
            [6, "fred", "eng", 95.0, "2023-04-01"],
        )
        assert emp_db.execute(
            "SELECT COUNT(*) FROM emp WHERE name = ?", ["fred"]
        ).scalar() == 1
        emp_db.execute(
            "UPDATE emp SET salary = ? WHERE name = ?", [97.5, "fred"]
        )
        assert emp_db.execute(
            "SELECT salary FROM emp WHERE name = ?", ["fred"]
        ).scalar() == 97.5
        result = emp_db.execute("DELETE FROM emp WHERE name = ?", ["fred"])
        assert result.affected_rows == 1

    def test_null_parameter(self, emp_db):
        result = emp_db.execute(
            "SELECT name FROM emp WHERE salary IS NULL AND ? IS NULL",
            [None],
        )
        assert result.rows() == [("dee",)]

    def test_missing_params_rejected(self, emp_db):
        with pytest.raises(BindError, match="no parameters"):
            emp_db.execute("SELECT name FROM emp WHERE salary > ?")

    def test_count_mismatch_rejected(self, emp_db):
        with pytest.raises(BindError, match="placeholder"):
            emp_db.execute(
                "SELECT name FROM emp WHERE salary > ?", [80, "extra"]
            )
        with pytest.raises(BindError, match="placeholder"):
            emp_db.execute("SELECT name FROM emp", [1])

    def test_type_mismatch_error(self, emp_db):
        with pytest.raises(TypeMismatchError, match="parameter 1"):
            emp_db.execute(
                "SELECT name FROM emp WHERE salary > ?", [[1, 2, 3]]
            )

    def test_params_not_interpolated(self, emp_db):
        # A classic injection payload stays an inert string value.
        result = emp_db.execute(
            "SELECT name FROM emp WHERE name = ?",
            ["x' OR '1'='1"],
        )
        assert result.rows() == []


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------
class TestExplainAnalyze:
    def test_plain_explain_unchanged(self, emp_db):
        text = emp_db.explain("SELECT name FROM emp WHERE salary > 80")
        assert "Scan(emp" in text
        assert "rows=" not in text

    def test_analyze_annotates_rows_and_time(self, emp_db):
        result = emp_db.execute(
            "EXPLAIN ANALYZE SELECT name FROM emp WHERE salary > ?", [80]
        )
        text = "\n".join(row[0] for row in result.rows())
        assert "rows=" in text and "time=" in text
        scan_line = next(l for l in text.splitlines() if "Scan(emp" in l)
        assert "rows=5" in scan_line
        filter_line = next(l for l in text.splitlines() if "Filter" in l)
        assert "rows=3" in filter_line and "rows_in=5" in filter_line
        assert "Execution:" in text

    def test_explain_analyze_helper(self, emp_db):
        text = emp_db.explain_analyze("SELECT COUNT(*) FROM emp")
        assert "rows=1" in text  # the aggregate output
        assert "time=" in text

    def test_analyze_on_predict_join(self, loan_setup):
        database, *_ = loan_setup
        database.cross_optimizer.enable_inlining = False
        database.execute("CREATE TABLE region_caps (region TEXT, cap FLOAT)")
        database.execute(
            "INSERT INTO region_caps VALUES (?, ?), (?, ?), (?, ?), (?, ?)",
            ["north", 1.0, "south", 2.0, "east", 3.0, "west", 4.0],
        )
        text = database.explain_analyze(
            "SELECT c.cap, PREDICT(loan_model) FROM loans l "
            "JOIN region_caps c ON l.region = c.region"
        )
        predict_line = next(
            l for l in text.splitlines() if "Predict(" in l
        )
        # Every loan matches exactly one region: 200 rows flow through the
        # Predict operator, which also reports its scoring strategy.
        assert "rows=200" in predict_line
        assert "strategy=" in predict_line
        join_line = next(l for l in text.splitlines() if "Join" in l)
        assert "rows=200" in join_line

    def test_analyze_leaves_audit_trail(self, emp_db):
        before = len(emp_db.audit.log.records(action="SELECT"))
        emp_db.execute("EXPLAIN ANALYZE SELECT name FROM emp")
        assert len(emp_db.audit.log.records(action="SELECT")) == before + 1

    def test_plain_explain_does_not_execute(self, emp_db):
        before = len(emp_db.audit.log.records(action="SELECT"))
        emp_db.execute("EXPLAIN SELECT name FROM emp")
        assert len(emp_db.audit.log.records(action="SELECT")) == before

    def test_explain_rejects_dml(self, emp_db):
        with pytest.raises(BindError):
            emp_db.explain("DELETE FROM emp", analyze=True)


# ----------------------------------------------------------------------
# FlockSession handles
# ----------------------------------------------------------------------
class TestFlockSessionHandles:
    def test_create_database_returns_session(self):
        session = create_database()
        assert isinstance(session, FlockSession)
        assert isinstance(session.db, Database)
        assert session.database is session.db
        assert session.cross_optimizer is session.db.cross_optimizer
        assert session.registry is session.db.model_store

    def test_tuple_unpacking_still_works(self):
        database, registry = create_database()
        assert isinstance(database, Database)
        assert registry is database.model_store

    def test_custom_cross_optimizer_carried(self):
        co = CrossOptimizer(enable_inlining=False)
        session = create_database(co)
        assert session.cross_optimizer is co


# ----------------------------------------------------------------------
# flock stats CLI
# ----------------------------------------------------------------------
class TestStatsCli:
    def test_stats_subcommand(self, capsys):
        from flock.cli import main

        code = main([
            "stats",
            "--query", "CREATE TABLE t (a INT)",
            "--query", "INSERT INTO t VALUES (1), (2), (3)",
            "--query", "SELECT COUNT(*) FROM t",
            "--prefix", "db.",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "db.statements" in out
        assert "last statement trace:" in out
        assert "db.statement" in out

    def test_stats_json(self, capsys):
        import json

        from flock.cli import main

        code = main(["stats", "--query", "CREATE TABLE t (a INT)", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload
        assert payload["last_trace"]["name"] == "db.statement"

    def test_shell_stats_and_trace_commands(self):
        from flock.cli import ShellState, execute_line, make_state

        state = make_state()
        execute_line(state, "CREATE TABLE t (a INT)")
        execute_line(state, "INSERT INTO t VALUES (1)")
        assert "db.statements" in execute_line(state, ".stats db.")
        assert "db.statement" in execute_line(state, ".trace")
        assert "INSERT" in execute_line(state, ".log 5")
