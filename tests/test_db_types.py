"""Unit tests for flock.db.types."""

import datetime

import numpy as np
import pytest

from flock.db.types import (
    DataType,
    coerce_value,
    common_type,
    date_to_days,
    days_to_date,
    infer_type,
    python_value,
)
from flock.errors import TypeMismatchError


class TestInferType:
    def test_bool_before_int(self):
        # bool is a subclass of int; it must infer as BOOLEAN.
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(False) is DataType.BOOLEAN

    def test_scalars(self):
        assert infer_type(3) is DataType.INTEGER
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type("x") is DataType.TEXT
        assert infer_type(datetime.date(2020, 1, 1)) is DataType.DATE

    def test_numpy_scalars(self):
        assert infer_type(np.int64(4)) is DataType.INTEGER
        assert infer_type(np.float64(4.5)) is DataType.FLOAT

    def test_unsupported(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())


class TestCoerce:
    def test_none_passes_through(self):
        for dtype in DataType:
            assert coerce_value(None, dtype) is None

    def test_int_coercions(self):
        assert coerce_value(5, DataType.INTEGER) == 5
        assert coerce_value(5.0, DataType.INTEGER) == 5
        with pytest.raises(TypeMismatchError):
            coerce_value(5.5, DataType.INTEGER)
        with pytest.raises(TypeMismatchError):
            coerce_value(True, DataType.INTEGER)
        with pytest.raises(TypeMismatchError):
            coerce_value("5", DataType.INTEGER)

    def test_float_coercions(self):
        assert coerce_value(5, DataType.FLOAT) == 5.0
        assert isinstance(coerce_value(5, DataType.FLOAT), float)
        with pytest.raises(TypeMismatchError):
            coerce_value("x", DataType.FLOAT)

    def test_text(self):
        assert coerce_value("hello", DataType.TEXT) == "hello"
        with pytest.raises(TypeMismatchError):
            coerce_value(5, DataType.TEXT)

    def test_boolean(self):
        assert coerce_value(True, DataType.BOOLEAN) is True
        with pytest.raises(TypeMismatchError):
            coerce_value(1, DataType.BOOLEAN)

    def test_date_from_string_and_date(self):
        days = coerce_value("1970-01-11", DataType.DATE)
        assert days == 10
        assert coerce_value(datetime.date(1970, 1, 11), DataType.DATE) == 10
        assert coerce_value(10, DataType.DATE) == 10

    def test_model_opaque(self):
        payload = {"any": "thing"}
        assert coerce_value(payload, DataType.MODEL) is payload


class TestDates:
    def test_epoch(self):
        assert date_to_days("1970-01-01") == 0
        assert days_to_date(0) == datetime.date(1970, 1, 1)

    def test_roundtrip(self):
        for iso in ("1992-02-29", "1998-12-01", "2026-07-07"):
            assert days_to_date(date_to_days(iso)).isoformat() == iso


class TestCommonType:
    def test_same(self):
        assert common_type(DataType.TEXT, DataType.TEXT) is DataType.TEXT

    def test_numeric_unify(self):
        assert common_type(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT

    def test_incompatible(self):
        with pytest.raises(TypeMismatchError):
            common_type(DataType.TEXT, DataType.INTEGER)


class TestPythonValue:
    def test_date_back_to_date(self):
        assert python_value(10, DataType.DATE) == datetime.date(1970, 1, 11)

    def test_none(self):
        assert python_value(None, DataType.INTEGER) is None

    def test_numpy_unwrapped(self):
        assert isinstance(python_value(np.int64(3), DataType.INTEGER), int)
        assert isinstance(python_value(np.float64(3), DataType.FLOAT), float)
