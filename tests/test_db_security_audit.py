"""Access control and audit log tests."""

import pytest

from flock.db import Database
from flock.db.audit import AuditLog
from flock.db.security import SecurityManager, model_object
from flock.errors import SecurityError


class TestSecurityManager:
    def test_admin_always_allowed(self):
        sec = SecurityManager()
        assert sec.is_allowed("admin", "DELETE", "anything")

    def test_direct_grant(self):
        sec = SecurityManager()
        sec.create_user("alice")
        assert not sec.is_allowed("alice", "SELECT", "emp")
        sec.grant("SELECT", "emp", "alice")
        assert sec.is_allowed("alice", "SELECT", "emp")
        assert not sec.is_allowed("alice", "DELETE", "emp")

    def test_all_privilege(self):
        sec = SecurityManager()
        sec.create_user("alice")
        sec.grant("ALL", "emp", "alice")
        for privilege in ("SELECT", "INSERT", "UPDATE", "DELETE"):
            assert sec.is_allowed("alice", privilege, "emp")

    def test_role_inheritance(self):
        sec = SecurityManager()
        sec.create_user("alice")
        sec.create_role("analyst")
        sec.grant("SELECT", "emp", "analyst")
        sec.grant("analyst", None, "alice")  # role grant
        assert sec.is_allowed("alice", "SELECT", "emp")

    def test_nested_roles(self):
        sec = SecurityManager()
        sec.create_user("u")
        sec.create_role("inner")
        sec.create_role("outer")
        sec.grant("SELECT", "t", "inner")
        sec.grant("inner", None, "outer")
        sec.grant("outer", None, "u")
        assert sec.is_allowed("u", "SELECT", "t")

    def test_revoke(self):
        sec = SecurityManager()
        sec.create_user("alice")
        sec.grant("SELECT", "emp", "alice")
        sec.revoke("SELECT", "emp", "alice")
        assert not sec.is_allowed("alice", "SELECT", "emp")

    def test_duplicate_principal(self):
        sec = SecurityManager()
        sec.create_user("alice")
        with pytest.raises(SecurityError):
            sec.create_user("ALICE")

    def test_check_raises(self):
        sec = SecurityManager()
        sec.create_user("bob")
        with pytest.raises(SecurityError):
            sec.check("bob", "SELECT", "emp")

    def test_unknown_user_denied(self):
        sec = SecurityManager()
        assert not sec.is_allowed("ghost", "SELECT", "emp")

    def test_model_object_namespace(self):
        assert model_object("LoanModel") == "model:loanmodel"


class TestEngineSecurity:
    def test_select_requires_privilege(self, emp_db):
        emp_db.execute("CREATE USER intern")
        with pytest.raises(SecurityError):
            emp_db.execute("SELECT * FROM emp", user="intern")
        emp_db.execute("GRANT SELECT ON emp TO intern")
        result = emp_db.execute("SELECT COUNT(*) FROM emp", user="intern")
        assert result.scalar() == 5

    def test_dml_requires_specific_privileges(self, emp_db):
        emp_db.execute("CREATE USER writer")
        emp_db.execute("GRANT INSERT ON emp TO writer")
        emp_db.execute(
            "INSERT INTO emp VALUES (9, 'zed', 'ops', 10.0, '2024-01-01')",
            user="writer",
        )
        with pytest.raises(SecurityError):
            emp_db.execute("DELETE FROM emp WHERE id = 9", user="writer")

    def test_only_admin_manages_grants(self, emp_db):
        emp_db.execute("CREATE USER mallory")
        with pytest.raises(SecurityError):
            emp_db.execute("GRANT ALL ON emp TO mallory", user="mallory")

    def test_unknown_user_cannot_connect(self, emp_db):
        with pytest.raises(SecurityError):
            emp_db.connect("ghost")

    def test_table_creator_owns_table(self, db):
        db.execute("CREATE USER owner")
        db.execute("CREATE TABLE mine (a INT)", user="owner")
        db.execute("INSERT INTO mine VALUES (1)", user="owner")
        db.execute("DROP TABLE mine", user="owner")

    def test_predict_requires_model_privilege(self, loan_setup):
        database, registry, dataset, _ = loan_setup
        database.execute("CREATE USER scorer")
        database.execute("GRANT SELECT ON loans TO scorer")
        with pytest.raises(SecurityError):
            database.execute(
                "SELECT PREDICT(loan_model) FROM loans", user="scorer"
            )
        database.security.grant("PREDICT", model_object("loan_model"), "scorer")
        result = database.execute(
            "SELECT PREDICT(loan_model) AS p FROM loans LIMIT 3",
            user="scorer",
        )
        assert result.row_count == 3


class TestAuditLog:
    def test_chain_verification(self):
        log = AuditLog()
        for i in range(5):
            log.record("u", "SELECT", f"t{i}")
        assert log.verify_chain()
        assert len(log) == 5

    def test_tampering_detected(self):
        log = AuditLog()
        log.record("u", "SELECT", "t")
        log.record("u", "DELETE", "t")
        # Forge the first record in place.
        forged = log._records[0].__class__(
            sequence=1,
            timestamp=log._records[0].timestamp,
            user="mallory",
            action="SELECT",
            object_name="t",
            detail="",
            success=True,
            previous_digest=log._records[0].previous_digest,
            digest=log._records[0].digest,
        )
        log._records[0] = forged
        assert not log.verify_chain()

    def test_truncation_detected(self):
        log = AuditLog()
        log.record("u", "A", "x")
        log.record("u", "B", "y")
        del log._records[0]
        assert not log.verify_chain()

    def test_filters(self):
        log = AuditLog()
        log.record("alice", "SELECT", "emp")
        log.record("bob", "DELETE", "emp")
        log.record("alice", "SELECT", "dept")
        assert len(log.records(user="alice")) == 2
        assert len(log.records(action="delete")) == 1
        assert len(log.records(object_name="emp")) == 2

    def test_engine_records_statements(self, emp_db):
        emp_db.execute("SELECT COUNT(*) FROM emp")
        emp_db.execute("DELETE FROM emp WHERE id = 5")
        actions = [r.action for r in emp_db.audit.log]
        assert "SELECT" in actions
        assert "DELETE" in actions
        assert emp_db.audit.log.verify_chain()

    def test_predict_is_audited(self, loan_setup):
        database, *_ = loan_setup
        database.execute("SELECT PREDICT(loan_model) FROM loans LIMIT 1")
        predict_records = database.audit.log.records(action="PREDICT")
        assert predict_records
        assert predict_records[-1].object_name == "model:loan_model"
