"""Tests for featurizers, pipelines and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.errors import ModelError, NotFittedError
from flock.ml import (
    ColumnTransformer,
    LogisticRegression,
    MinMaxScaler,
    OneHotEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
    TextHasher,
)
from flock.ml import metrics as M
from flock.ml.datasets import make_classification


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 2))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        out = StandardScaler().fit_transform(X)
        assert not np.isnan(out).any()

    def test_inverse_transform_roundtrip(self):
        X = np.random.default_rng(1).normal(size=(50, 3)) * 4 + 2
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    @settings(deadline=None, max_examples=25)
    @given(
        st.lists(
            st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=2),
            min_size=2,
            max_size=50,
        )
    )
    def test_property_bounded_output(self, rows):
        X = np.array(rows)
        out = StandardScaler().fit_transform(X)
        # Standardized data has |z| <= sqrt(n) always.
        assert (np.abs(out) <= np.sqrt(len(rows)) + 1e-6).all()


class TestMinMaxScaler:
    def test_unit_interval(self):
        X = np.random.default_rng(2).uniform(-50, 50, size=(40, 3))
        out = MinMaxScaler().fit_transform(X)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out.max() == pytest.approx(1.0)

    def test_transform_can_exceed_bounds_on_new_data(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == 2.0


class TestImputer:
    def test_mean_strategy(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = SimpleImputer().fit_transform(X)
        assert out[0, 1] == 4.0

    def test_median_strategy(self):
        X = np.array([[1.0], [100.0], [2.0], [np.nan]])
        imputer = SimpleImputer(strategy="median").fit(X)
        assert imputer.statistics_[0] == 2.0

    def test_constant_strategy(self):
        X = np.array([[np.nan]])
        out = SimpleImputer(strategy="constant", fill_value=-1.0).fit_transform(X)
        assert out[0, 0] == -1.0

    def test_all_nan_column_uses_fill_value(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer(strategy="mean", fill_value=0.0).fit_transform(X)
        assert (out == 0.0).all()

    def test_bad_strategy(self):
        with pytest.raises(ModelError):
            SimpleImputer(strategy="magic")


class TestOneHotEncoder:
    def test_basic_encoding(self):
        X = np.array([["red"], ["blue"], ["red"]], dtype=object)
        enc = OneHotEncoder().fit(X)
        out = enc.transform(X)
        assert out.shape == (3, 2)
        assert out.sum() == 3.0
        assert enc.output_names(["color"]) == ["color=blue", "color=red"]

    def test_unknown_category_is_all_zeros(self):
        X = np.array([["a"], ["b"]], dtype=object)
        enc = OneHotEncoder().fit(X)
        out = enc.transform(np.array([["zzz"]], dtype=object))
        assert (out == 0).all()

    def test_multi_column(self):
        X = np.array([["a", "x"], ["b", "y"]], dtype=object)
        enc = OneHotEncoder().fit(X)
        assert enc.n_output_features_ == 4
        assert enc.transform(X).shape == (2, 4)


class TestTextHasher:
    def test_deterministic_across_instances(self):
        X = np.array([["the quick brown fox"]], dtype=object)
        a = TextHasher(n_buckets=32).fit_transform(X)
        b = TextHasher(n_buckets=32).fit_transform(X)
        assert np.array_equal(a, b)

    def test_token_counts(self):
        X = np.array([["cat cat dog"]], dtype=object)
        out = TextHasher(n_buckets=64).fit_transform(X)
        assert out.sum() == 3.0

    def test_none_cells_skipped(self):
        X = np.array([[None]], dtype=object)
        out = TextHasher(n_buckets=8).fit_transform(X)
        assert out.sum() == 0.0

    def test_bucket_validation(self):
        with pytest.raises(ModelError):
            TextHasher(n_buckets=0)


class TestPipeline:
    def test_end_to_end(self):
        X, y = make_classification(150, 4, random_state=0)
        pipe = Pipeline(
            [("scale", StandardScaler()), ("clf", LogisticRegression(max_iter=150))]
        ).fit(X, y)
        assert M.accuracy_score(y, pipe.predict(X)) > 0.8
        assert pipe.predict_proba(X).shape == (150, 2)

    def test_intermediate_must_be_transformer(self):
        with pytest.raises(ModelError):
            Pipeline(
                [
                    ("clf", LogisticRegression()),
                    ("scale", StandardScaler()),
                ]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            Pipeline(
                [("a", StandardScaler()), ("a", LogisticRegression())]
            )

    def test_named_steps(self):
        pipe = Pipeline(
            [("s", StandardScaler()), ("m", LogisticRegression())]
        )
        assert set(pipe.named_steps) == {"s", "m"}

    def test_column_transformer_blocks(self):
        X = np.empty((4, 3), dtype=object)
        X[:, 0] = [1.0, 2.0, 3.0, 4.0]
        X[:, 1] = [10.0, 20.0, 30.0, 40.0]
        X[:, 2] = ["a", "b", "a", "b"]
        ct = ColumnTransformer(
            [
                ("num", StandardScaler(), [0, 1]),
                ("cat", OneHotEncoder(), [2]),
            ]
        ).fit(X)
        out = ct.transform(X)
        assert out.shape == (4, 4)
        assert ct.output_width() == 4


class TestMetrics:
    def test_confusion_and_derived(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        tp, fp, tn, fn = M.confusion_counts(y_true, y_pred, 1)
        assert (tp, fp, tn, fn) == (2, 1, 1, 1)
        assert M.precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert M.recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert M.f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert M.r2_score(y, y) == 1.0
        assert M.r2_score(y, np.full(3, y.mean())) == 0.0

    def test_auc_perfect_and_random(self):
        y = np.array([0, 0, 1, 1])
        assert M.roc_auc_score(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
        assert M.roc_auc_score(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0
        assert M.roc_auc_score(y, np.array([0.5, 0.5, 0.5, 0.5])) == 0.5

    def test_auc_single_class_rejected(self):
        with pytest.raises(ModelError):
            M.roc_auc_score(np.ones(4), np.zeros(4))

    def test_log_loss_clipping(self):
        value = M.log_loss([1, 0], [1.0, 0.0])
        assert np.isfinite(value)

    @given(
        st.lists(st.floats(-100, 100), min_size=2, max_size=30),
    )
    def test_mse_nonnegative_property(self, values):
        y = np.array(values)
        assert M.mean_squared_error(y, y) == 0.0
        shifted = y + 1.0
        assert M.mean_squared_error(y, shifted) == pytest.approx(1.0)

    def test_train_test_split_partition(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        X_tr, X_te, y_tr, y_te = M.train_test_split(
            X, y, test_fraction=0.25, random_state=0
        )
        assert len(X_tr) == 15 and len(X_te) == 5
        assert sorted(np.concatenate([y_tr, y_te]).tolist()) == list(range(20))
