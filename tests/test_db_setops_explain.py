"""Set operations (UNION/EXCEPT/INTERSECT) and EXPLAIN statement tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.db import Database
from flock.errors import BindError, ParseError


@pytest.fixture
def two_tables(db):
    db.execute("CREATE TABLE a (x INT, y TEXT)")
    db.execute("CREATE TABLE b (x INT, y TEXT)")
    db.execute("INSERT INTO a VALUES (1,'p'), (2,'q'), (2,'q'), (3,'s')")
    db.execute("INSERT INTO b VALUES (2,'q'), (3,'r'), (3,'r')")
    return db


class TestUnion:
    def test_union_dedupes(self, two_tables):
        rows = two_tables.execute(
            "SELECT x, y FROM a UNION SELECT x, y FROM b ORDER BY x, y"
        ).rows()
        assert rows == [(1, "p"), (2, "q"), (3, "r"), (3, "s")]

    def test_union_all_keeps_duplicates(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a UNION ALL SELECT x FROM b"
        ).rows()
        assert len(rows) == 7

    def test_setop_as_from_subquery(self, two_tables):
        n = two_tables.execute(
            "SELECT COUNT(*) FROM (SELECT x FROM a UNION ALL "
            "SELECT x FROM b) t"
        ).scalar()
        assert n == 7

    def test_union_column_names_from_left(self, two_tables):
        result = two_tables.execute(
            "SELECT x AS left_name FROM a UNION SELECT x FROM b"
        )
        assert result.column_names == ["left_name"]

    def test_union_type_unification(self, two_tables):
        two_tables.execute("CREATE TABLE c (v FLOAT)")
        two_tables.execute("INSERT INTO c VALUES (9.5)")
        rows = two_tables.execute(
            "SELECT x FROM a UNION SELECT v FROM c ORDER BY x DESC LIMIT 1"
        ).rows()
        assert rows == [(9.5,)]

    def test_incompatible_types_rejected(self, two_tables):
        with pytest.raises(BindError):
            two_tables.execute("SELECT x FROM a UNION SELECT y FROM b")

    def test_column_count_mismatch_rejected(self, two_tables):
        with pytest.raises(BindError):
            two_tables.execute("SELECT x, y FROM a UNION SELECT x FROM b")

    def test_order_by_must_be_trailing(self, two_tables):
        with pytest.raises(ParseError):
            two_tables.execute(
                "SELECT x FROM a ORDER BY x UNION SELECT x FROM b"
            )


class TestExceptIntersect:
    def test_except(self, two_tables):
        rows = two_tables.execute(
            "SELECT x, y FROM a EXCEPT SELECT x, y FROM b ORDER BY x"
        ).rows()
        assert rows == [(1, "p"), (3, "s")]

    def test_except_all_multiset(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a EXCEPT ALL SELECT x FROM b ORDER BY x"
        ).rows()
        # a has {1,2,2,3}; b has {2,3,3}: 2 cancels one 2, 3 cancels 3.
        assert rows == [(1,), (2,)]

    def test_intersect(self, two_tables):
        rows = two_tables.execute(
            "SELECT x, y FROM a INTERSECT SELECT x, y FROM b"
        ).rows()
        assert rows == [(2, "q")]

    def test_intersect_all(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a INTERSECT ALL SELECT x FROM b ORDER BY x"
        ).rows()
        assert rows == [(2,), (3,)]

    def test_chained_operations(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a UNION SELECT x FROM b "
            "EXCEPT SELECT 1 FROM a ORDER BY x"
        ).rows()
        assert rows == [(2,), (3,)]

    def test_limit_applies_to_whole(self, two_tables):
        rows = two_tables.execute(
            "SELECT x FROM a UNION SELECT x FROM b ORDER BY x LIMIT 2"
        ).rows()
        assert rows == [(1,), (2,)]


@settings(deadline=None, max_examples=20)
@given(
    st.lists(st.integers(0, 6), max_size=20),
    st.lists(st.integers(0, 6), max_size=20),
)
def test_setops_match_python_sets(left, right):
    db = Database()
    db.execute("CREATE TABLE a (x INT)")
    db.execute("CREATE TABLE b (x INT)")
    if left:
        db.execute("INSERT INTO a VALUES " + ", ".join(f"({v})" for v in left))
    if right:
        db.execute("INSERT INTO b VALUES " + ", ".join(f"({v})" for v in right))
    union = {r[0] for r in db.execute(
        "SELECT x FROM a UNION SELECT x FROM b").rows()}
    assert union == set(left) | set(right)
    except_ = {r[0] for r in db.execute(
        "SELECT x FROM a EXCEPT SELECT x FROM b").rows()}
    assert except_ == set(left) - set(right)
    intersect = {r[0] for r in db.execute(
        "SELECT x FROM a INTERSECT SELECT x FROM b").rows()}
    assert intersect == set(left) & set(right)


class TestExplainStatement:
    def test_explain_returns_plan_rows(self, two_tables):
        result = two_tables.execute("EXPLAIN SELECT x FROM a WHERE x > 1")
        assert result.column_names == ["plan"]
        text = "\n".join(result.column("plan"))
        assert "Scan(a" in text and "Filter" in text

    def test_explain_union(self, two_tables):
        text = "\n".join(
            two_tables.execute(
                "EXPLAIN SELECT x FROM a UNION SELECT x FROM b"
            ).column("plan")
        )
        assert "SetOp(UNION)" in text

    def test_explain_respects_privileges(self, two_tables):
        from flock.errors import SecurityError

        two_tables.execute("CREATE USER nosy")
        with pytest.raises(SecurityError):
            two_tables.execute("EXPLAIN SELECT x FROM a", user="nosy")
