"""End-to-end SQL engine tests: DDL, DML, SELECT semantics."""

import datetime

import pytest

from flock.db import Database
from flock.errors import (
    BindError,
    CatalogError,
    ConstraintError,
    ExecutionError,
)


class TestDDL:
    def test_create_and_drop(self, db):
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        assert db.catalog.has_table("t")
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")

    def test_create_duplicate(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")  # no error

    def test_drop_missing(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE nope")
        result = db.execute("DROP TABLE IF EXISTS nope")
        assert result.affected_rows == 0

    def test_unknown_type(self, db):
        with pytest.raises(BindError):
            db.execute("CREATE TABLE t (a BLOB)")


class TestInsertSelect:
    def test_insert_reports_count(self, db):
        db.execute("CREATE TABLE t (a INT, b TEXT)")
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.affected_rows == 2

    def test_insert_column_subset_fills_nulls(self, db):
        db.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
        db.execute("INSERT INTO t (c, a) VALUES (5.5, 1)")
        assert db.execute("SELECT a, b, c FROM t").rows() == [(1, None, 5.5)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INT)")
        db.execute("CREATE TABLE dst (a INT)")
        db.execute("INSERT INTO src VALUES (1), (2), (3)")
        db.execute("INSERT INTO dst SELECT a FROM src WHERE a > 1")
        assert db.execute("SELECT COUNT(*) FROM dst").scalar() == 2

    def test_insert_expression_values(self, db):
        db.execute("CREATE TABLE t (a INT, d DATE)")
        db.execute("INSERT INTO t VALUES (1 + 2, DATE '2020-01-01')")
        row = db.execute("SELECT a, d FROM t").rows()[0]
        assert row == (3, datetime.date(2020, 1, 1))

    def test_insert_not_null_violation(self, db):
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (NULL)")


class TestSelect:
    def test_projection_and_alias(self, emp_db):
        result = emp_db.execute(
            "SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1"
        )
        assert result.column_names == ["name", "double_pay"]
        assert result.rows() == [("ann", 200.0)]

    def test_where_null_is_not_true(self, emp_db):
        # dee has NULL salary: excluded by any comparison.
        result = emp_db.execute("SELECT name FROM emp WHERE salary > 0")
        assert "dee" not in [r[0] for r in result.rows()]

    def test_is_null(self, emp_db):
        assert emp_db.execute(
            "SELECT name FROM emp WHERE salary IS NULL"
        ).rows() == [("dee",)]

    def test_order_by_nulls_last_asc(self, emp_db):
        names = emp_db.execute(
            "SELECT name FROM emp ORDER BY salary"
        ).column("name")
        assert names[-1] == "dee"

    def test_order_by_desc_nulls_first(self, emp_db):
        names = emp_db.execute(
            "SELECT name FROM emp ORDER BY salary DESC"
        ).column("name")
        assert names[0] == "dee"
        assert names[1] == "ann"

    def test_order_by_position_and_alias(self, emp_db):
        by_position = emp_db.execute(
            "SELECT name, salary FROM emp WHERE salary IS NOT NULL ORDER BY 2"
        ).column("name")
        by_alias = emp_db.execute(
            "SELECT name, salary AS s FROM emp WHERE salary IS NOT NULL "
            "ORDER BY s"
        ).column("name")
        assert by_position == by_alias

    def test_order_by_non_projected_column(self, emp_db):
        names = emp_db.execute(
            "SELECT name FROM emp ORDER BY hired DESC LIMIT 2"
        ).column("name")
        assert names == ["dee", "eve"]

    def test_limit_offset(self, emp_db):
        result = emp_db.execute(
            "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1"
        )
        assert result.column("id") == [2, 3]

    def test_distinct(self, emp_db):
        result = emp_db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert result.column("dept") == ["eng", "hr", "ops"]

    def test_group_by_having(self, emp_db):
        result = emp_db.execute(
            "SELECT dept, COUNT(*) AS n, AVG(salary) AS avg_sal FROM emp "
            "GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept"
        )
        assert result.rows() == [("eng", 2, 95.0), ("hr", 2, 70.0)]

    def test_global_aggregate_without_group(self, emp_db):
        assert emp_db.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        # AVG ignores the NULL salary.
        assert emp_db.execute("SELECT AVG(salary) FROM emp").scalar() == pytest.approx(
            (100 + 90 + 70 + 85) / 4
        )

    def test_aggregate_expression_output(self, emp_db):
        value = emp_db.execute(
            "SELECT MAX(salary) - MIN(salary) FROM emp"
        ).scalar()
        assert value == 30.0

    def test_join_inner(self, emp_db):
        emp_db.execute("CREATE TABLE dept (name TEXT, floor INT)")
        emp_db.execute(
            "INSERT INTO dept VALUES ('eng', 3), ('hr', 1)"
        )
        result = emp_db.execute(
            "SELECT e.name, d.floor FROM emp e JOIN dept d "
            "ON e.dept = d.name ORDER BY e.id"
        )
        assert result.rows() == [
            ("ann", 3), ("bob", 3), ("cyd", 1), ("dee", 1),
        ]

    def test_join_left_preserves_unmatched(self, emp_db):
        emp_db.execute("CREATE TABLE dept (name TEXT, floor INT)")
        emp_db.execute("INSERT INTO dept VALUES ('eng', 3)")
        result = emp_db.execute(
            "SELECT e.name, d.floor FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.name ORDER BY e.id"
        )
        rows = dict(result.rows())
        assert rows["ann"] == 3
        assert rows["cyd"] is None

    def test_implicit_join_via_where(self, emp_db):
        emp_db.execute("CREATE TABLE dept (name TEXT, floor INT)")
        emp_db.execute("INSERT INTO dept VALUES ('eng', 3), ('hr', 1)")
        result = emp_db.execute(
            "SELECT e.name FROM emp e, dept d "
            "WHERE e.dept = d.name AND d.floor = 3 ORDER BY e.name"
        )
        assert result.column("name") == ["ann", "bob"]

    def test_subquery_in_from(self, emp_db):
        result = emp_db.execute(
            "SELECT e.name, agg.n FROM emp e JOIN "
            "(SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept) agg "
            "ON e.dept = agg.dept WHERE e.id = 1"
        )
        assert result.rows() == [("ann", 2)]

    def test_case_expression(self, emp_db):
        result = emp_db.execute(
            "SELECT name, CASE WHEN salary >= 90 THEN 'high' "
            "WHEN salary >= 80 THEN 'mid' ELSE 'low' END AS band "
            "FROM emp WHERE salary IS NOT NULL ORDER BY id"
        )
        assert result.column("band") == ["high", "high", "low", "mid"]

    def test_date_arithmetic(self, emp_db):
        result = emp_db.execute(
            "SELECT name FROM emp "
            "WHERE hired >= DATE '2021-01-01' AND "
            "hired < DATE '2021-01-01' + INTERVAL '1' YEAR ORDER BY name"
        )
        assert result.column("name") == ["bob", "eve"]

    def test_extract_year(self, emp_db):
        result = emp_db.execute(
            "SELECT EXTRACT(YEAR FROM hired) AS y, COUNT(*) AS n FROM emp "
            "GROUP BY EXTRACT(YEAR FROM hired) ORDER BY y"
        )
        assert (2021, 2) in result.rows()

    def test_unknown_column_errors(self, emp_db):
        with pytest.raises(BindError):
            emp_db.execute("SELECT nope FROM emp")

    def test_ambiguous_column_errors(self, emp_db):
        emp_db.execute("CREATE TABLE emp2 (name TEXT)")
        emp_db.execute("INSERT INTO emp2 VALUES ('x')")
        with pytest.raises(BindError, match="ambiguous"):
            emp_db.execute("SELECT name FROM emp, emp2")

    def test_non_grouped_column_rejected(self, emp_db):
        with pytest.raises(BindError):
            emp_db.execute("SELECT name, COUNT(*) FROM emp GROUP BY dept")


class TestUpdateDelete:
    def test_update_with_expression(self, emp_db):
        result = emp_db.execute(
            "UPDATE emp SET salary = salary * 1.1 WHERE dept = 'eng'"
        )
        assert result.affected_rows == 2
        assert emp_db.execute(
            "SELECT salary FROM emp WHERE id = 1"
        ).scalar() == pytest.approx(110.0)

    def test_update_to_null_and_back(self, emp_db):
        emp_db.execute("UPDATE emp SET dept = NULL WHERE id = 5")
        assert emp_db.execute(
            "SELECT dept FROM emp WHERE id = 5"
        ).scalar() is None

    def test_update_int_literal_into_float_column(self, emp_db):
        emp_db.execute("UPDATE emp SET salary = 75 WHERE id = 4")
        assert emp_db.execute(
            "SELECT salary FROM emp WHERE id = 4"
        ).scalar() == 75.0

    def test_delete(self, emp_db):
        result = emp_db.execute("DELETE FROM emp WHERE dept = 'hr'")
        assert result.affected_rows == 2
        assert emp_db.execute("SELECT COUNT(*) FROM emp").scalar() == 3

    def test_delete_all(self, emp_db):
        emp_db.execute("DELETE FROM emp")
        assert emp_db.execute("SELECT COUNT(*) FROM emp").scalar() == 0


class TestExplainAndLog:
    def test_explain_shows_plan(self, emp_db):
        text = emp_db.explain("SELECT name FROM emp WHERE salary > 80")
        assert "Scan(emp" in text
        assert "Filter" in text

    def test_explain_rejects_dml(self, emp_db):
        with pytest.raises(BindError):
            emp_db.explain("DELETE FROM emp")

    def test_query_log_records_statements(self, emp_db):
        before = len(emp_db.query_log)
        emp_db.execute("SELECT COUNT(*) FROM emp")
        assert len(emp_db.query_log) == before + 1
        entry = emp_db.query_log[-1]
        assert entry.statement_type == "SELECT"
        assert entry.success

    def test_query_log_records_failures(self, emp_db):
        before = len(emp_db.query_log)
        with pytest.raises(BindError):
            emp_db.execute("SELECT nope FROM emp")
        assert len(emp_db.query_log) == before + 1
        assert emp_db.query_log[-1].success is False


class TestResultAPI:
    def test_to_dicts(self, emp_db):
        dicts = emp_db.execute(
            "SELECT name, dept FROM emp WHERE id = 1"
        ).to_dicts()
        assert dicts == [{"name": "ann", "dept": "eng"}]

    def test_scalar_shape_enforced(self, emp_db):
        with pytest.raises(ValueError):
            emp_db.execute("SELECT name, dept FROM emp").scalar()

    def test_iteration(self, emp_db):
        rows = [r for r in emp_db.execute("SELECT id FROM emp ORDER BY id")]
        assert rows == [(1,), (2,), (3,), (4,), (5,)]
