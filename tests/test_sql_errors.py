"""Parser error quality: every rejection names its culprit, nothing crashes.

Two layers of guarantee:

- golden messages: a malformed statement's ParseError/LexerError names the
  offending token (or character) and its byte position, so callers can
  point at the exact spot;
- robustness sweeps: truncating or mutilating valid statements at every
  token boundary always yields a typed front-end error, never a bare
  ``KeyError``/``IndexError`` escaping the parser or binder.
"""

from __future__ import annotations

import random

import pytest

import flock
from flock.db.sql.lexer import TokenType, tokenize
from flock.db.sql.parser import parse_statement
from flock.errors import FlockError, LexerError, ParseError

# (statement, substrings its error message must contain)
GOLDEN = [
    ("", ["unexpected statement start", "position 0"]),
    ("FROBNICATE t", ["unexpected statement start", "'FROBNICATE'", "position 0"]),
    ("SELECT FROM t", ["unexpected keyword", "'FROM'", "position 7"]),
    ("SELECT a, FROM t", ["unexpected keyword", "'FROM'", "position 10"]),
    ("SELECT a FROM t 123", ["unexpected trailing input", "'123'", "position 16"]),
    ("SELECT a FROM t;;", ["unexpected trailing input", "';'", "position 16"]),
    ("SELECT a FROM t WHERE a >", ["unexpected token", "position 25"]),
    ("SELECT a FROM t GROUP BY", ["unexpected token", "position 24"]),
    ("SELECT a FROM t ORDER BY", ["unexpected token", "position 24"]),
    ("SELECT a FROM t LIMIT abc", ["expected", "'abc'", "position 22"]),
    ("SELECT CAST(a AS) FROM t", ["expected identifier", "')'", "position 16"]),
    ("SELECT a FROM t WHERE a BETWEEN 1", ["expected", "'AND'"]),
    ("SELECT COUNT(DISTINCT *) FROM t", ["DISTINCT *", "position 22"]),
    ("SELECT a, SUM(b) OVER (ORDER a) FROM t", ["expected", "'BY'", "'a'"]),
    ("SELECT a FROM t WHERE EXISTS SELECT 1", ["expected", "'('", "'SELECT'"]),
    ("WITH s AS SELECT a FROM t", ["expected", "'('", "'SELECT'"]),
    ("SELECT 'oops FROM t", ["unterminated string literal", "position 7"]),
    ("SELECT a ! b FROM t", ["unexpected character", "'!'", "position 9"]),
    ("SELECT /* no end", ["unterminated block comment", "position 7"]),
]

# Valid statements whose every truncation/mutation must fail *cleanly*.
# One per construct family so the sweep walks the whole grammar.
SWEEP = [
    "SELECT a, b * 2 AS twice FROM g WHERE a BETWEEN 1 AND 5 ORDER BY a DESC LIMIT 3",
    "SELECT b, COUNT(DISTINCT a), SUM(a) FROM g GROUP BY b HAVING COUNT(*) > 1",
    "SELECT x.a, y.b FROM g x LEFT JOIN g y ON x.a = y.a AND x.b <> 'q'",
    "WITH s AS (SELECT a FROM g WHERE a > 2) SELECT p.a FROM s p JOIN s q ON p.a = q.a",
    "SELECT a FROM g WHERE EXISTS (SELECT * FROM g h WHERE h.a = g.a) AND a IN (1, 2)",
    "SELECT a, (SELECT MAX(h.a) FROM g h) FROM g WHERE a > (SELECT AVG(h.a) FROM g h)",
    "SELECT a, ROW_NUMBER() OVER (PARTITION BY b ORDER BY a), SUM(a) OVER (ORDER BY a) FROM g",
    "SELECT CASE WHEN a > 2 THEN UPPER(b) ELSE COALESCE(b, 'z') END FROM g UNION SELECT b FROM g",
    "INSERT INTO g VALUES (9, 'new'), (10, NULL)",
    "UPDATE g SET b = 'u' WHERE a = 1",
]


@pytest.fixture(scope="module")
def engine():
    client = flock.connect()
    client.execute("CREATE TABLE g (a INT PRIMARY KEY, b TEXT)")
    for a in range(1, 6):
        client.execute(f"INSERT INTO g VALUES ({a}, 'b{a % 3}')")
    yield client
    client.close()


@pytest.mark.parametrize(
    "sql,needles", GOLDEN, ids=[g[0][:40] or "<empty>" for g in GOLDEN]
)
def test_error_names_token_and_position(sql, needles):
    with pytest.raises((ParseError, LexerError)) as excinfo:
        parse_statement(sql)
    message = str(excinfo.value)
    for needle in needles:
        assert needle in message, (
            f"{sql!r}: error {message!r} does not name {needle!r}"
        )


def test_parse_errors_carry_their_token():
    with pytest.raises(ParseError) as excinfo:
        parse_statement("SELECT a FROM t 123")
    assert excinfo.value.token is not None
    assert excinfo.value.token.value == "123"
    with pytest.raises(LexerError) as excinfo:
        parse_statement("SELECT 'oops")
    assert excinfo.value.position == 7


def _boundaries(sql: str) -> list[int]:
    return [t.position for t in tokenize(sql) if t.type is not TokenType.EOF]


@pytest.mark.parametrize("sql", SWEEP, ids=[s[:40] for s in SWEEP])
def test_truncation_never_crashes(engine, sql):
    # Cutting the text at every token boundary (and mid-token, one char
    # past each boundary) must parse+bind+execute or raise a FlockError.
    cuts = {pos for pos in _boundaries(sql)}
    cuts |= {pos + 1 for pos in cuts if pos + 1 < len(sql)}
    for cut in sorted(cuts):
        mutant = sql[:cut]
        try:
            engine.execute(mutant)
        except FlockError:
            pass


@pytest.mark.parametrize("sql", SWEEP, ids=[s[:40] for s in SWEEP])
def test_token_deletion_never_crashes(engine, sql):
    tokens = [t for t in tokenize(sql) if t.type is not TokenType.EOF]
    for i, token in enumerate(tokens):
        end = (
            tokens[i + 1].position if i + 1 < len(tokens) else len(sql)
        )
        mutant = sql[: token.position] + sql[end:]
        try:
            engine.execute(mutant)
        except FlockError:
            pass


def test_random_splices_never_crash(engine):
    # Seeded chaos: splice random garbage fragments into valid statements.
    rng = random.Random(20260809)
    garbage = ["(", ")", ",", "'", "SELECT", "WHERE", "0x", "*", "..", ";"]
    for _ in range(300):
        base = rng.choice(SWEEP)
        pos = rng.randrange(len(base))
        mutant = base[:pos] + rng.choice(garbage) + base[pos:]
        try:
            engine.execute(mutant)
        except FlockError:
            pass
