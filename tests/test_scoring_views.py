"""Scoring views: PREDICT inside view definitions.

The paper's governance model treats deployed models like views; composing
the two — a view that scores — gives applications a governed, named scoring
surface with no direct table or model access.
"""

import numpy as np
import pytest

from flock.errors import SecurityError


class TestScoringViews:
    def test_view_with_predict(self, loan_setup):
        database, registry, dataset, pipeline = loan_setup
        database.execute(
            "CREATE VIEW scored_loans AS "
            "SELECT applicant_id, PREDICT(loan_model) AS p FROM loans"
        )
        rows = database.execute(
            "SELECT applicant_id, p FROM scored_loans "
            "WHERE p > 0.9 ORDER BY p DESC"
        ).rows()
        probs = pipeline.predict_proba(dataset.feature_matrix())[:, 1]
        expected = sorted(
            ((i + 1, p) for i, p in enumerate(probs) if p > 0.9),
            key=lambda t: -t[1],
        )
        assert len(rows) == len(expected)
        for (gid, gp), (wid, wp) in zip(rows, expected):
            assert gid == wid and gp == pytest.approx(wp)

    def test_scoring_view_grant_covers_model_and_table(self, loan_setup):
        database, *_ = loan_setup
        database.execute(
            "CREATE VIEW risk_view AS "
            "SELECT applicant_id, PREDICT(loan_model) AS p FROM loans"
        )
        database.execute("CREATE USER app")
        database.execute("GRANT SELECT ON risk_view TO app")
        # Table access is covered by the view (definer semantics), but the
        # model itself stays governed: scoring still requires PREDICT.
        with pytest.raises(SecurityError):
            database.execute("SELECT p FROM risk_view LIMIT 1", user="app")
        database.security.grant("PREDICT", "model:loan_model", "app")
        result = database.execute(
            "SELECT p FROM risk_view LIMIT 3", user="app"
        )
        assert result.row_count == 3
        with pytest.raises(SecurityError):
            database.execute("SELECT income FROM loans", user="app")

    def test_aggregation_over_scoring_view(self, loan_setup):
        database, *_ = loan_setup
        database.execute(
            "CREATE VIEW scored2 AS "
            "SELECT region, PREDICT(loan_model) AS p FROM loans"
        )
        rows = database.execute(
            "SELECT region, AVG(p) AS avg_p FROM scored2 "
            "GROUP BY region ORDER BY region"
        ).rows()
        assert len(rows) == 4
        assert all(0.0 <= r[1] <= 1.0 for r in rows)
