"""TPC-H / TPC-C workload tests: parseability, executability, determinism."""

import numpy as np
import pytest

from flock.db import Database
from flock.db.sql.parser import parse_statement
from flock.errors import WorkloadError
from flock.workloads import (
    TPCC_TABLES,
    TPCH_TABLES,
    create_tpcc_schema,
    create_tpch_schema,
    generate_tpcc_data,
    generate_tpcc_transactions,
    generate_tpch_data,
    generate_tpch_queries,
    tpch_query,
)


@pytest.fixture(scope="module")
def tpch_db():
    db = Database()
    create_tpch_schema(db)
    generate_tpch_data(db, scale=0.0004, seed=7)
    return db


@pytest.fixture(scope="module")
def tpcc_db():
    db = Database()
    create_tpcc_schema(db)
    generate_tpcc_data(db)
    return db


class TestTPCH:
    def test_schema_created(self, tpch_db):
        for table in TPCH_TABLES:
            assert tpch_db.catalog.has_table(table)

    def test_data_scaled(self, tpch_db):
        lineitem = tpch_db.catalog.table("lineitem").row_count
        orders = tpch_db.catalog.table("orders").row_count
        assert lineitem > orders > 0
        assert tpch_db.catalog.table("region").row_count == 5
        assert tpch_db.catalog.table("nation").row_count == 25

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            generate_tpch_data(Database(), scale=0.0)

    @pytest.mark.parametrize("template_id", list(range(1, 23)))
    def test_every_template_parses_and_executes(self, tpch_db, template_id):
        rng = np.random.default_rng(template_id)
        sql = tpch_query(template_id, rng)
        parse_statement(sql)  # parses
        result = tpch_db.execute(sql)  # executes
        assert result.row_count >= 0

    def test_unknown_template(self):
        with pytest.raises(WorkloadError):
            tpch_query(23)

    def test_query_batch_covers_all_templates(self):
        queries = generate_tpch_queries(44, seed=3)
        assert len(queries) == 44
        # Each template appears exactly twice in 44 queries.
        q1_count = sum("l_returnflag" in q and "GROUP BY" in q for q in queries)
        assert q1_count >= 2

    def test_query_generation_deterministic(self):
        assert generate_tpch_queries(10, seed=5) == generate_tpch_queries(
            10, seed=5
        )

    def test_q1_aggregate_shape(self, tpch_db):
        sql = tpch_query(1, np.random.default_rng(0))
        result = tpch_db.execute(sql)
        assert result.column_names[:2] == ["l_returnflag", "l_linestatus"]
        # count_order is a positive count in every group.
        assert all(row[-1] > 0 for row in result.rows())

    def test_q6_revenue_matches_reference(self, tpch_db):
        """Q6 agrees with a hand-rolled pandas-style reference."""
        sql = (
            "SELECT SUM(l_extendedprice * l_discount) AS revenue "
            "FROM lineitem WHERE l_quantity < 25 AND "
            "l_discount BETWEEN 0.03 AND 0.07"
        )
        got = tpch_db.execute(sql).scalar()
        batch = tpch_db.catalog.table("lineitem").scan()
        qty = np.array(batch.column("l_quantity").to_pylist())
        price = np.array(batch.column("l_extendedprice").to_pylist())
        disc = np.array(batch.column("l_discount").to_pylist())
        mask = (qty < 25) & (disc >= 0.03) & (disc <= 0.07)
        expected = float((price[mask] * disc[mask]).sum())
        if got is None:
            assert not mask.any()
        else:
            assert got == pytest.approx(expected)


class TestTPCC:
    def test_schema_created(self, tpcc_db):
        for table in TPCC_TABLES:
            assert tpcc_db.catalog.has_table(table)

    def test_transaction_mix_statements_parse(self):
        statements = generate_tpcc_transactions(300, seed=1)
        assert len(statements) == 300
        for sql in statements:
            parse_statement(sql)

    def test_transactions_execute_and_version_tables(self, tpcc_db):
        before = tpcc_db.catalog.table("stock").version_count
        for sql in generate_tpcc_transactions(150, seed=2):
            tpcc_db.execute(sql)
        assert tpcc_db.catalog.table("stock").version_count > before
        assert tpcc_db.catalog.table("orders_c").row_count > 0

    def test_mix_contains_all_transaction_types(self):
        statements = " ".join(generate_tpcc_transactions(800, seed=3))
        assert "INSERT INTO orders_c" in statements  # new order
        assert "INSERT INTO history" in statements  # payment
        assert "DELETE FROM neworder" in statements  # delivery
        assert "COUNT(DISTINCT s.s_i_id)" in statements  # stock level
        assert "ORDER BY o_id DESC LIMIT 1" in statements  # order status

    def test_warehouse_validation(self):
        with pytest.raises(WorkloadError):
            generate_tpcc_data(Database(), warehouses=0)

    def test_deterministic(self):
        assert generate_tpcc_transactions(50, seed=4) == (
            generate_tpcc_transactions(50, seed=4)
        )
