"""The fault-point injection framework itself.

Everything else in the durability suite leans on these semantics: countdown
arming, error vs crash actions, environment-variable control for child
processes, and exact hit accounting.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from flock.errors import FaultInjected
from flock.testing import faultpoints

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _clean_faults():
    faultpoints.clear()
    yield
    faultpoints.clear()


def test_unarmed_point_is_a_noop():
    faultpoints.reach("wal.pre_fsync")  # must not raise
    assert not faultpoints.armed("wal.pre_fsync")
    assert faultpoints.hit_count("wal.pre_fsync") == 0


def test_error_action_raises_on_first_hit():
    faultpoints.set_fault("wal.pre_fsync", action="error")
    assert faultpoints.armed("wal.pre_fsync")
    with pytest.raises(FaultInjected) as excinfo:
        faultpoints.reach("wal.pre_fsync")
    assert excinfo.value.point == "wal.pre_fsync"


def test_countdown_fires_on_nth_hit():
    faultpoints.set_fault("checkpoint.mid_write", action="error", after=3)
    assert not faultpoints.armed("checkpoint.mid_write")
    faultpoints.reach("checkpoint.mid_write")
    faultpoints.reach("checkpoint.mid_write")
    assert faultpoints.armed("checkpoint.mid_write")
    with pytest.raises(FaultInjected):
        faultpoints.reach("checkpoint.mid_write")
    assert faultpoints.hit_count("checkpoint.mid_write") == 3


def test_clear_disarms():
    faultpoints.set_fault("wal.mid_record", action="error")
    faultpoints.clear("wal.mid_record")
    faultpoints.reach("wal.mid_record")  # must not raise
    faultpoints.set_fault("wal.mid_record", action="error")
    faultpoints.clear()
    faultpoints.reach("wal.mid_record")


def test_set_fault_validates_inputs():
    with pytest.raises(ValueError):
        faultpoints.set_fault("x", action="explode")
    with pytest.raises(ValueError):
        faultpoints.set_fault("x", after=0)


def test_env_spec_parsing():
    faults = faultpoints._parse_env(
        "wal.pre_fsync=crash:3, checkpoint.mid_write=error ,wal.pre_ack"
    )
    assert faults["wal.pre_fsync"].action == "crash"
    assert faults["wal.pre_fsync"].after == 3
    assert faults["checkpoint.mid_write"].action == "error"
    assert faults["checkpoint.mid_write"].after == 1
    assert faults["wal.pre_ack"].action == "error"
    with pytest.raises(ValueError):
        faultpoints._parse_env("a=explode")


def test_crash_action_kills_the_process_like_sigkill():
    """A crash-armed point must end the child with no Python-level cleanup."""
    code = (
        "from flock.testing import faultpoints\n"
        "import atexit, sys\n"
        "atexit.register(lambda: print('CLEANUP RAN'))\n"
        "faultpoints.reach('wal.pre_fsync')\n"
        "print('BEFORE')\n"
        "faultpoints.reach('wal.pre_fsync')\n"
        "print('AFTER')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["FLOCK_FAULTPOINTS"] = "wal.pre_fsync=crash:2"
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == faultpoints.CRASH_EXIT_CODE
    assert "BEFORE" in proc.stdout
    assert "AFTER" not in proc.stdout
    assert "CLEANUP RAN" not in proc.stdout


def test_known_points_cover_the_wal_and_checkpoint_paths():
    for point in (
        "wal.pre_fsync",
        "wal.mid_record",
        "wal.post_fsync_pre_apply",
        "checkpoint.mid_write",
    ):
        assert point in faultpoints.KNOWN_POINTS
