"""Tests for linear models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.errors import ModelError, NotFittedError
from flock.ml import LinearRegression, LogisticRegression, RidgeRegression
from flock.ml.datasets import make_classification, make_regression
from flock.ml.linear import sigmoid
from flock.ml.metrics import accuracy_score, r2_score


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        true = np.array([2.0, -1.0, 0.5])
        y = X @ true + 3.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, true, atol=1e-8)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-8)

    def test_no_intercept(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_feature_count_checked(self):
        model = LinearRegression().fit(np.zeros((5, 3)), np.zeros(5))
        with pytest.raises(ModelError):
            model.predict(np.zeros((2, 4)))

    def test_mismatched_lengths(self):
        with pytest.raises(ModelError):
            LinearRegression().fit(np.zeros((5, 2)), np.zeros(4))

    def test_high_r2_on_synthetic(self):
        X, y, _ = make_regression(300, 5, noise=0.05, random_state=1)
        model = LinearRegression().fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99


class TestRidge:
    def test_alpha_shrinks_coefficients(self):
        X, y, _ = make_regression(100, 4, noise=0.1, random_state=2)
        small = RidgeRegression(alpha=0.01).fit(X, y)
        large = RidgeRegression(alpha=1000.0).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_alpha_zero_matches_ols(self):
        X, y, _ = make_regression(80, 3, noise=0.0, random_state=3)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ModelError):
            RidgeRegression(alpha=-1.0)


class TestSigmoid:
    def test_extremes_are_stable(self):
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert out[0] == 0.0
        assert out[1] == 0.5
        assert out[2] == 1.0
        assert not np.isnan(out).any()

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=30))
    def test_in_unit_interval(self, values):
        out = sigmoid(np.array(values))
        assert ((out >= 0) & (out <= 1)).all()

    @given(st.floats(-30, 30))
    def test_symmetry(self, z):
        assert sigmoid(np.array([z]))[0] + sigmoid(np.array([-z]))[0] == (
            pytest.approx(1.0)
        )


class TestLogisticRegression:
    def test_separable_data_learned(self):
        X, y = make_classification(300, 4, random_state=4)
        model = LogisticRegression(max_iter=400).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_predict_proba_rows_sum_to_one(self):
        X, y = make_classification(100, 3, random_state=5)
        model = LogisticRegression(max_iter=100).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_l1_produces_exact_zeros(self):
        X, y = make_classification(
            400, 8, n_informative=2, random_state=6
        )
        model = LogisticRegression(l1=0.12, max_iter=600).fit(X, y)
        assert int(np.sum(model.coef_ == 0.0)) >= 2

    def test_non_binary_rejected(self):
        X = np.zeros((6, 2))
        y = np.array([0, 1, 2, 0, 1, 2])
        with pytest.raises(ModelError):
            LogisticRegression().fit(X, y)

    def test_string_class_labels(self):
        X, y01 = make_classification(120, 3, random_state=7)
        labels = np.where(y01 == 1, "yes", "no")
        model = LogisticRegression(max_iter=200).fit(X, labels)
        predictions = model.predict(X)
        assert set(predictions.tolist()) <= {"yes", "no"}

    def test_l2_regularization_shrinks(self):
        X, y = make_classification(200, 4, random_state=8)
        plain = LogisticRegression(max_iter=300).fit(X, y)
        shrunk = LogisticRegression(l2=5.0, max_iter=300).fit(X, y)
        assert np.linalg.norm(shrunk.coef_) < np.linalg.norm(plain.coef_)
