"""Tests for decision trees and ensembles."""

import numpy as np
import pytest

from flock.errors import ModelError
from flock.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from flock.ml.datasets import make_classification, make_regression
from flock.ml.metrics import accuracy_score, r2_score
from flock.ml.tree import predict_tree


class TestDecisionTreeRegressor:
    def test_fits_step_function_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_max_depth_limits_tree(self):
        X, y, _ = make_regression(200, 3, random_state=0)
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert shallow.tree_.depth() <= 2

    def test_min_samples_leaf_respected(self):
        X, y, _ = make_regression(100, 2, random_state=1)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=20).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 20
            else:
                check(node.left)
                check(node.right)

        check(tree.tree_)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.full(30, 7.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.tree_.is_leaf
        assert tree.predict(X[:3]).tolist() == [7.0, 7.0, 7.0]

    def test_used_features(self):
        # Only feature 0 is informative: the tree should not split on 1.
        rng = np.random.default_rng(2)
        X = np.column_stack([rng.normal(size=300), np.zeros(300)])
        y = (X[:, 0] > 0).astype(float) * 10
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.tree_.used_features() == {0}


class TestDecisionTreeClassifier:
    def test_pure_split(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["a", "a", "b", "b"])
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.predict(X).tolist() == ["a", "a", "b", "b"]

    def test_probabilities_sum_to_one(self):
        X, y = make_classification(150, 4, random_state=3)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((5, 1)), np.zeros(5))

    def test_multiclass(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(int) + (X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.9


class TestPredictTreeVectorized:
    def test_matches_row_by_row(self):
        X, y, _ = make_regression(120, 3, random_state=5)
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        batch = predict_tree(tree.tree_, X)[:, 0]
        singles = np.array(
            [predict_tree(tree.tree_, X[i : i + 1])[0, 0] for i in range(len(X))]
        )
        assert np.allclose(batch, singles)


class TestRandomForest:
    def test_regressor_beats_single_tree_oob_ish(self):
        X, y, _ = make_regression(300, 5, noise=0.5, random_state=6)
        forest = RandomForestRegressor(n_estimators=15, random_state=0).fit(X, y)
        assert r2_score(y, forest.predict(X)) > 0.8

    def test_classifier_deterministic_given_seed(self):
        X, y = make_classification(150, 4, random_state=7)
        a = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_max_features_specs(self):
        from flock.ml.ensemble import _resolve_max_features

        assert _resolve_max_features("sqrt", 16) == 4
        assert _resolve_max_features("log2", 16) == 4
        assert _resolve_max_features(3, 16) == 3
        assert _resolve_max_features(None, 16) is None
        with pytest.raises(ModelError):
            _resolve_max_features("bogus", 16)
        with pytest.raises(ModelError):
            _resolve_max_features(0, 16)


class TestGradientBoosting:
    def test_regressor_reduces_residuals_with_more_trees(self):
        X, y, _ = make_regression(200, 4, noise=0.2, random_state=8)
        few = GradientBoostingRegressor(n_estimators=3, random_state=0).fit(X, y)
        many = GradientBoostingRegressor(n_estimators=60, random_state=0).fit(X, y)
        from flock.ml.metrics import mean_squared_error

        assert mean_squared_error(y, many.predict(X)) < mean_squared_error(
            y, few.predict(X)
        )

    def test_classifier_accuracy_and_proba(self):
        X, y = make_classification(300, 5, random_state=9)
        model = GradientBoostingClassifier(
            n_estimators=30, random_state=0
        ).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_classifier_init_is_log_odds(self):
        X, y = make_classification(200, 3, random_state=10)
        model = GradientBoostingClassifier(n_estimators=1, random_state=0).fit(X, y)
        positive_rate = float(np.mean(y == model.classes_[1]))
        expected = np.log(positive_rate / (1 - positive_rate))
        assert model.init_ == pytest.approx(expected)

    def test_binary_only(self):
        with pytest.raises(ModelError):
            GradientBoostingClassifier().fit(
                np.zeros((6, 1)), np.array([0, 1, 2, 0, 1, 2])
            )
