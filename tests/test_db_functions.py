"""Unit tests for built-in scalar and aggregate functions."""

import math

import pytest

from flock.db import functions as fn
from flock.db.types import DataType
from flock.db.vector import ColumnVector
from flock.errors import BindError


def _vec(dtype, values):
    return ColumnVector.from_values(dtype, values)


def _call(name, *vectors, length=None):
    scalar = fn.lookup_scalar(name)
    n = length if length is not None else len(vectors[0])
    return scalar.impl(list(vectors), n)


class TestScalars:
    def test_abs(self):
        out = _call("ABS", _vec(DataType.INTEGER, [-3, 4, None]))
        assert out.to_pylist() == [3, 4, None]

    def test_round_digits(self):
        out = _call(
            "ROUND",
            _vec(DataType.FLOAT, [3.14159]),
            _vec(DataType.INTEGER, [2]),
        )
        assert out.to_pylist() == [3.14]

    def test_floor_ceil(self):
        assert _call("FLOOR", _vec(DataType.FLOAT, [2.7])).to_pylist() == [2]
        assert _call("CEIL", _vec(DataType.FLOAT, [2.1])).to_pylist() == [3]

    def test_sqrt_exp_ln_power(self):
        assert _call("SQRT", _vec(DataType.FLOAT, [9.0])).to_pylist() == [3.0]
        assert _call("EXP", _vec(DataType.FLOAT, [0.0])).to_pylist() == [1.0]
        out = _call("LN", _vec(DataType.FLOAT, [math.e]))
        assert out.to_pylist()[0] == pytest.approx(1.0)
        out = _call(
            "POWER", _vec(DataType.FLOAT, [2.0]), _vec(DataType.FLOAT, [10.0])
        )
        assert out.to_pylist() == [1024.0]

    def test_text_functions(self):
        assert _call("UPPER", _vec(DataType.TEXT, ["abc", None])).to_pylist() == [
            "ABC", None,
        ]
        assert _call("LOWER", _vec(DataType.TEXT, ["AbC"])).to_pylist() == ["abc"]
        assert _call("TRIM", _vec(DataType.TEXT, ["  x "])).to_pylist() == ["x"]
        assert _call("LENGTH", _vec(DataType.TEXT, ["abcd"])).to_pylist() == [4]

    def test_substr_one_based(self):
        out = _call(
            "SUBSTR",
            _vec(DataType.TEXT, ["telephone"]),
            _vec(DataType.INTEGER, [1]),
            _vec(DataType.INTEGER, [4]),
        )
        assert out.to_pylist() == ["tele"]

    def test_coalesce(self):
        out = _call(
            "COALESCE",
            _vec(DataType.INTEGER, [None, 1, None]),
            _vec(DataType.INTEGER, [7, 8, None]),
            _vec(DataType.INTEGER, [9, 9, 9]),
        )
        assert out.to_pylist() == [7, 1, 9]

    def test_extract_units(self):
        from flock.db.types import date_to_days

        days = _vec(DataType.DATE, [date_to_days("1995-03-17")])
        for unit, expected in (("YEAR", 1995), ("MONTH", 3), ("DAY", 17)):
            out = _call(
                "EXTRACT", _vec(DataType.TEXT, [unit]), days, length=1
            )
            assert out.to_pylist() == [expected]

    def test_interval_days(self):
        assert fn.interval_days("3", "DAY") == 3
        assert fn.interval_days("2", "MONTH") == 60
        assert fn.interval_days("1", "YEAR") == 365
        with pytest.raises(BindError):
            fn.interval_days("1", "FORTNIGHT")

    def test_arity_check(self):
        with pytest.raises(BindError):
            fn.lookup_scalar("ABS").check_arity(2)

    def test_unknown_function(self):
        with pytest.raises(BindError):
            fn.lookup_scalar("NO_SUCH_FN")


class TestAggregates:
    def test_count_skips_nulls(self):
        agg = fn.AGGREGATE_FUNCTIONS["COUNT"]
        assert agg.reduce(_vec(DataType.INTEGER, [1, None, 3]), False) == 2

    def test_count_distinct(self):
        agg = fn.AGGREGATE_FUNCTIONS["COUNT"]
        assert agg.reduce(_vec(DataType.INTEGER, [1, 1, 2, None]), True) == 2
        assert agg.reduce(_vec(DataType.TEXT, ["a", "a", "b"]), True) == 2

    def test_sum_empty_is_null(self):
        agg = fn.AGGREGATE_FUNCTIONS["SUM"]
        assert agg.reduce(_vec(DataType.INTEGER, [None, None]), False) is None

    def test_sum_and_avg(self):
        assert fn.AGGREGATE_FUNCTIONS["SUM"].reduce(
            _vec(DataType.FLOAT, [1.5, 2.5, None]), False
        ) == 4.0
        assert fn.AGGREGATE_FUNCTIONS["AVG"].reduce(
            _vec(DataType.INTEGER, [2, 4]), False
        ) == 3.0

    def test_min_max_text(self):
        assert fn.AGGREGATE_FUNCTIONS["MIN"].reduce(
            _vec(DataType.TEXT, ["pear", "apple"]), False
        ) == "apple"
        assert fn.AGGREGATE_FUNCTIONS["MAX"].reduce(
            _vec(DataType.TEXT, ["pear", "apple"]), False
        ) == "pear"

    def test_stddev(self):
        out = fn.AGGREGATE_FUNCTIONS["STDDEV"].reduce(
            _vec(DataType.FLOAT, [1.0, 3.0]), False
        )
        assert out == pytest.approx(math.sqrt(2.0))
        assert (
            fn.AGGREGATE_FUNCTIONS["STDDEV"].reduce(
                _vec(DataType.FLOAT, [1.0]), False
            )
            is None
        )

    def test_sum_rejects_text(self):
        with pytest.raises(BindError):
            fn.AGGREGATE_FUNCTIONS["SUM"].return_type(DataType.TEXT)

    def test_is_aggregate(self):
        assert fn.is_aggregate("count")
        assert fn.is_aggregate("SUM")
        assert not fn.is_aggregate("ABS")
