"""Shared engine fixture for the SQL shape battery.

The battery is read-only, so one instance serves the whole module. The
execution tier is environment-selected to match the CI matrix:

- ``FLOCK_WORKERS`` is read by the engine itself and turns on the
  morsel-parallel executor.
- ``FLOCK_SHARDS > 1`` routes every statement through a hash-sharded
  cluster instead of a single engine.

When ``FLOCK_BATTERY_REPORT`` names a path, a per-statement verdict report
is written there at teardown (CI uploads it as an artifact on failure).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

import flock

SHARDS = int(os.environ.get("FLOCK_SHARDS", "1"))

_FIXTURE_SQL = [
    "CREATE TABLE t (a INT PRIMARY KEY, b INT, c FLOAT, d TEXT)",
    "CREATE TABLE u (k INT PRIMARY KEY, v TEXT, w FLOAT)",
    "CREATE TABLE e (x INT, y TEXT)",
    "INSERT INTO t VALUES (1, 10, 1.5, 'x')",
    "INSERT INTO t VALUES (2, 20, 2.5, 'y')",
    "INSERT INTO t VALUES (3, 30, NULL, 'z')",
    "INSERT INTO t VALUES (4, NULL, 4.5, 'x')",
    "INSERT INTO t VALUES (5, 50, 5.5, NULL)",
    "INSERT INTO t VALUES (6, 60, 6.5, 'y')",
    "INSERT INTO t VALUES (7, 70, 7.5, 'x')",
    "INSERT INTO t VALUES (8, 80, 8.5, 'w')",
    "INSERT INTO u VALUES (1, 'x', 0.5)",
    "INSERT INTO u VALUES (2, 'y', 1.5)",
    "INSERT INTO u VALUES (3, 'q', 2.5)",
    "INSERT INTO u VALUES (5, 'x', 3.5)",
]


@pytest.fixture(scope="package")
def battery_engine(tmp_path_factory):
    if SHARDS > 1:
        client = flock.connect(
            tmp_path_factory.mktemp("battery_shards") / "battery", shards=SHARDS
        )
    else:
        client = flock.connect()
    for statement in _FIXTURE_SQL:
        client.execute(statement)
    yield client
    client.close()


@pytest.fixture(scope="package")
def battery_report():
    """Accumulates per-statement verdicts; flushed to FLOCK_BATTERY_REPORT."""
    verdicts: list[dict] = []
    yield verdicts
    path = os.environ.get("FLOCK_BATTERY_REPORT")
    if not path:
        return
    failed = [v for v in verdicts if v["status"] != "ok"]
    Path(path).write_text(
        json.dumps(
            {
                "shards": SHARDS,
                "workers": os.environ.get("FLOCK_WORKERS"),
                "total": len(verdicts),
                "failed": len(failed),
                "verdicts": verdicts,
            },
            indent=2,
        )
    )
