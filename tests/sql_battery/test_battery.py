"""Parametrized runner over the statement corpus in ``statements.py``.

Three tiers of assertion:

- every POSITIVE statement parses, binds and executes, and its result has
  a sane shape (no leaked internal ``__``-prefixed columns, every row as
  wide as the header);
- every RESULT_CHECKED statement returns its pinned rows exactly;
- every NEGATIVE statement raises exactly the named engine error class
  (``ParseError``/``BindError``) — never a bare KeyError/IndexError.
"""

from __future__ import annotations

import pytest

from flock.errors import FlockError

from tests.sql_battery.statements import NEGATIVE, POSITIVE, RESULT_CHECKED


def _shape_check(result):
    names = result.batch.names
    assert not any(name.startswith("__") for name in names), (
        f"internal column leaked into result: {names}"
    )
    rows = result.rows()
    for row in rows:
        assert len(row) == len(names)
    return rows


@pytest.mark.parametrize(
    "sql", POSITIVE, ids=[f"p{i:03d}" for i in range(len(POSITIVE))]
)
def test_positive(battery_engine, battery_report, sql):
    try:
        result = battery_engine.execute(sql)
        _shape_check(result)
    except Exception as exc:
        battery_report.append(
            {"sql": sql, "status": f"{type(exc).__name__}: {exc}"}
        )
        raise
    battery_report.append({"sql": sql, "status": "ok"})


@pytest.mark.parametrize(
    "sql,expected",
    RESULT_CHECKED,
    ids=[f"r{i:03d}" for i in range(len(RESULT_CHECKED))],
)
def test_result_checked(battery_engine, battery_report, sql, expected):
    try:
        result = battery_engine.execute(sql)
        rows = _shape_check(result)
        assert rows == expected, f"{sql!r}: {rows!r} != {expected!r}"
    except Exception as exc:
        battery_report.append(
            {"sql": sql, "status": f"{type(exc).__name__}: {exc}"}
        )
        raise
    battery_report.append({"sql": sql, "status": "ok"})


@pytest.mark.parametrize(
    "sql,error_name",
    NEGATIVE,
    ids=[f"n{i:03d}" for i in range(len(NEGATIVE))],
)
def test_negative(battery_engine, battery_report, sql, error_name):
    try:
        with pytest.raises(FlockError) as excinfo:
            battery_engine.execute(sql)
        actual = type(excinfo.value).__name__
        assert actual == error_name, (
            f"{sql!r}: expected {error_name}, got {actual}: {excinfo.value}"
        )
        assert str(excinfo.value), f"{sql!r}: empty error message"
    except Exception as exc:
        battery_report.append(
            {"sql": sql, "status": f"{type(exc).__name__}: {exc}"}
        )
        raise
    battery_report.append({"sql": sql, "status": "ok"})


def test_battery_size():
    # The floors the issue sets; keep them pinned so the corpus never
    # silently shrinks.
    assert len(POSITIVE) + len(RESULT_CHECKED) >= 300
    assert len(NEGATIVE) >= 50
