"""Conversion equivalence: fitted estimators vs their model graphs.

The deployment contract of the whole architecture: for every supported
estimator family, the converted graph reproduces the Python model's
predictions exactly (bit-for-bit on the same floating-point path).
"""

import numpy as np
import pytest

from flock.errors import GraphError
from flock.ml import (
    ColumnTransformer,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    OneHotEncoder,
    Pipeline,
    RandomForestClassifier,
    RandomForestRegressor,
    RidgeRegression,
    SimpleImputer,
    StandardScaler,
    TextHasher,
)
from flock.ml.datasets import make_classification, make_regression
from flock.mlgraph import GraphRuntime, to_graph, used_inputs
from flock.mlgraph.analysis import graph_size, unused_inputs


def _feeds(X, names):
    return {n: X[:, i] for i, n in enumerate(names)}


def _output(graph, outputs, kind):
    tensor = next(t for f, t in graph.output_field_names() if f == kind)
    return outputs[tensor]


NAMES5 = [f"f{i}" for i in range(5)]


class TestRegressorConversion:
    @pytest.mark.parametrize(
        "estimator",
        [
            LinearRegression(),
            RidgeRegression(alpha=0.5),
            DecisionTreeRegressor(max_depth=4),
            GradientBoostingRegressor(n_estimators=12, random_state=0),
            RandomForestRegressor(n_estimators=6, random_state=0),
        ],
    )
    def test_scores_match_exactly(self, estimator):
        X, y, _ = make_regression(150, 5, random_state=1)
        estimator.fit(X, y)
        graph = to_graph(estimator, NAMES5)
        out = GraphRuntime().run(graph, _feeds(X, NAMES5))
        score = _output(graph, out, "score")
        assert np.allclose(score, estimator.predict(X), atol=1e-12)


class TestClassifierConversion:
    @pytest.mark.parametrize(
        "estimator",
        [
            LogisticRegression(max_iter=150),
            GradientBoostingClassifier(n_estimators=10, random_state=0),
        ],
    )
    def test_probability_and_label_match(self, estimator):
        X, y = make_classification(200, 5, random_state=2)
        estimator.fit(X, y)
        graph = to_graph(estimator, NAMES5)
        out = GraphRuntime().run(graph, _feeds(X, NAMES5))
        probability = _output(graph, out, "probability")
        label = _output(graph, out, "label")
        assert np.allclose(probability, estimator.predict_proba(X)[:, 1])
        assert np.array_equal(
            np.asarray(label, dtype=int), estimator.predict(X)
        )

    @pytest.mark.parametrize(
        "estimator",
        [
            DecisionTreeClassifier(max_depth=4),
            RandomForestClassifier(n_estimators=6, random_state=0),
        ],
    )
    def test_tree_classifier_labels_match(self, estimator):
        X, y = make_classification(150, 5, random_state=3)
        estimator.fit(X, y)
        graph = to_graph(estimator, NAMES5)
        out = GraphRuntime().run(graph, _feeds(X, NAMES5))
        label = _output(graph, out, "label")
        assert np.array_equal(np.asarray(label, dtype=int), estimator.predict(X))
        probability = _output(graph, out, "probability")
        assert np.allclose(probability, estimator.predict_proba(X)[:, 1])

    def test_string_labels_preserved(self):
        X, y01 = make_classification(100, 3, random_state=4)
        y = np.where(y01 == 1, "approve", "reject")
        model = LogisticRegression(max_iter=100).fit(X, y)
        names = ["a", "b", "c"]
        graph = to_graph(model, names)
        out = GraphRuntime().run(graph, _feeds(X, names))
        label = _output(graph, out, "label")
        assert set(np.asarray(label).tolist()) <= {"approve", "reject"}


class TestPipelineConversion:
    def test_scaler_pipeline(self):
        X, y = make_classification(150, 4, random_state=5)
        pipe = Pipeline(
            [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
        ).fit(X, y)
        names = [f"f{i}" for i in range(4)]
        graph = to_graph(pipe, names)
        out = GraphRuntime().run(graph, _feeds(X, names))
        assert np.allclose(
            _output(graph, out, "probability"), pipe.predict_proba(X)[:, 1]
        )

    def test_imputer_pipeline_handles_nan(self):
        X, y = make_classification(120, 3, random_state=6)
        X = X.copy()
        X[::7, 1] = np.nan
        pipe = Pipeline(
            [
                ("i", SimpleImputer()),
                ("s", StandardScaler()),
                ("m", LogisticRegression(max_iter=100)),
            ]
        ).fit(X, y)
        names = ["a", "b", "c"]
        graph = to_graph(pipe, names)
        out = GraphRuntime().run(graph, _feeds(X, names))
        assert np.allclose(
            _output(graph, out, "probability"), pipe.predict_proba(X)[:, 1]
        )

    def test_column_transformer_mixed_types(self):
        rng = np.random.default_rng(7)
        n = 120
        X = np.empty((n, 3), dtype=object)
        X[:, 0] = rng.normal(size=n)
        X[:, 1] = rng.normal(size=n)
        X[:, 2] = rng.choice(["north", "south"], size=n)
        y = (np.asarray(X[:, 0], dtype=float) > 0).astype(int)
        pipe = Pipeline(
            [
                (
                    "ct",
                    ColumnTransformer(
                        [
                            ("num", StandardScaler(), [0, 1]),
                            ("cat", OneHotEncoder(), [2]),
                        ]
                    ),
                ),
                ("m", LogisticRegression(max_iter=150)),
            ]
        ).fit(X, y)
        graph = to_graph(
            pipe, ["a", "b", "region"], feature_types=["float", "float", "text"]
        )
        feeds = {
            "a": np.asarray(X[:, 0], dtype=float),
            "b": np.asarray(X[:, 1], dtype=float),
            "region": X[:, 2],
        }
        out = GraphRuntime().run(graph, feeds)
        assert np.allclose(
            _output(graph, out, "probability"), pipe.predict_proba(X)[:, 1]
        )

    def test_text_hasher_block(self):
        rng = np.random.default_rng(8)
        n = 80
        X = np.empty((n, 2), dtype=object)
        X[:, 0] = rng.normal(size=n)
        X[:, 1] = rng.choice(["good stuff", "bad stuff", "meh"], size=n)
        y = rng.integers(0, 2, size=n)
        pipe = Pipeline(
            [
                (
                    "ct",
                    ColumnTransformer(
                        [
                            ("num", StandardScaler(), [0]),
                            ("txt", TextHasher(n_buckets=16), [1]),
                        ]
                    ),
                ),
                ("m", LogisticRegression(max_iter=80)),
            ]
        ).fit(X, y)
        graph = to_graph(
            pipe, ["v", "comment"], feature_types=["float", "text"]
        )
        feeds = {"v": np.asarray(X[:, 0], dtype=float), "comment": X[:, 1]}
        out = GraphRuntime().run(graph, feeds)
        assert np.allclose(
            _output(graph, out, "probability"), pipe.predict_proba(X)[:, 1]
        )

    def test_unfitted_rejected(self):
        with pytest.raises(GraphError):
            to_graph(LinearRegression(), ["a"])

    def test_feature_types_length_checked(self):
        X, y, _ = make_regression(30, 2, random_state=9)
        model = LinearRegression().fit(X, y)
        with pytest.raises(GraphError):
            to_graph(model, ["a", "b"], feature_types=["float"])


class TestAnalysis:
    def test_zero_weight_inputs_unused(self):
        X, y, coef = make_regression(
            200, 6, n_informative=3, noise=0.0, random_state=10
        )
        model = LinearRegression().fit(X, y)
        # Force exact zeros on the uninformative features.
        model.coef_[np.abs(model.coef_) < 1e-8] = 0.0
        names = [f"f{i}" for i in range(6)]
        graph = to_graph(model, names)
        used = used_inputs(graph)
        expected = {names[i] for i in range(6) if coef[i] != 0.0}
        assert used == expected
        assert unused_inputs(graph) == set(names) - expected

    def test_tree_unused_features(self):
        rng = np.random.default_rng(11)
        X = np.column_stack([rng.normal(size=200), np.zeros(200)])
        y = (X[:, 0] > 0).astype(float)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        graph = to_graph(tree, ["signal", "dead"])
        assert used_inputs(graph) == {"signal"}

    def test_weight_tolerance_widens_pruning(self):
        X, y, _ = make_regression(100, 3, noise=0.0, random_state=12)
        model = LinearRegression().fit(X, y)
        model.coef_ = np.array([1.0, 1e-6, 2.0])
        graph = to_graph(model, ["a", "b", "c"])
        assert used_inputs(graph) == {"a", "b", "c"}
        assert used_inputs(graph, weight_tolerance=1e-3) == {"a", "c"}

    def test_graph_size_metrics(self):
        X, y = make_classification(100, 4, random_state=13)
        gbm = GradientBoostingClassifier(n_estimators=5, random_state=0).fit(X, y)
        size = graph_size(to_graph(gbm, [f"f{i}" for i in range(4)]))
        assert size["tree_nodes"] > 5
        assert size["operators"] >= 4
