"""flock.shard: hash routing, scatter-gather order discipline, DDL
broadcast atomicity, compensation, crash recovery and the replicas
composition — always judged against a single-engine twin."""

from __future__ import annotations

import threading

import pytest

import flock
from flock.errors import (
    BindError,
    ConstraintError,
    FlockError,
    ParseError,
    ShardError,
)
from flock.shard import ShardedCluster, canonical_key_value, shard_of
from flock.db.schema import Column
from flock.db.types import DataType


@pytest.fixture
def pair(tmp_path):
    """A 3-shard cluster and its single-engine twin."""
    sharded = flock.connect(tmp_path / "sharded", shards=3)
    single = flock.connect(tmp_path / "single")
    yield sharded, single
    sharded.close()
    single.close()


def both(pair, sql, params=None):
    sharded, single = pair
    return sharded.execute(sql, params), single.execute(sql, params)


def seed(pair, n=24):
    for client in pair:
        client.execute(
            "CREATE TABLE t (k INT PRIMARY KEY, v TEXT, x FLOAT)"
        )
        client.executemany(
            "INSERT INTO t (k, v, x) VALUES (?, ?, ?)",
            [[i, f"row{i}", i * 1.5] for i in range(n)],
        )


# ----------------------------------------------------------------------
# Hashing and key canonicalization
# ----------------------------------------------------------------------
class TestShardKey:
    def test_placement_is_deterministic(self):
        assert shard_of((7,), 4) == shard_of((7,), 4)
        assert 0 <= shard_of(("abc",), 3) < 3

    def test_numeric_spellings_collapse(self):
        int_col = Column("k", DataType.INTEGER, primary_key=True)
        assert canonical_key_value(int_col, 5) == canonical_key_value(
            int_col, 5.0
        )
        float_col = Column("f", DataType.FLOAT, primary_key=True)
        assert canonical_key_value(float_col, 2) == canonical_key_value(
            float_col, 2.0
        )

    def test_date_strings_coerce_to_day_numbers(self):
        date_col = Column("d", DataType.DATE, primary_key=True)
        assert isinstance(
            canonical_key_value(date_col, "2020-01-02"), int
        )


# ----------------------------------------------------------------------
# Read parity: scatter-gather must be bit-identical to one engine
# ----------------------------------------------------------------------
class TestReadParity:
    QUERIES = [
        "SELECT * FROM t",
        "SELECT * FROM t LIMIT 5",
        "SELECT k, v FROM t WHERE x > 9 ORDER BY k DESC LIMIT 4",
        "SELECT COUNT(*), SUM(x), AVG(x), MIN(k), MAX(k) FROM t",
        "SELECT x, COUNT(*) FROM t GROUP BY x ORDER BY x LIMIT 3",
        "SELECT DISTINCT v FROM t WHERE k < 6",
        "SELECT v FROM t WHERE k = 7",
        "SELECT v FROM t WHERE k IN (1, 5, 9)",
        "SELECT * FROM t WHERE k = 3 AND x > 0",
    ]

    def test_queries_bit_identical(self, pair):
        seed(pair)
        for sql in self.QUERIES:
            got, want = both(pair, sql)
            assert repr(got.rows()) == repr(want.rows()), sql

    def test_parameterized_point_read(self, pair):
        seed(pair)
        got, want = both(pair, "SELECT v FROM t WHERE k = ?", [3])
        assert got.rows() == want.rows() == [("row3",)]

    def test_hidden_sequence_column_is_invisible(self, pair):
        seed(pair)
        sharded, _ = pair
        names = sharded.execute("SELECT * FROM t LIMIT 1").batch.names
        assert names == ["k", "v", "x"]
        with pytest.raises(BindError):
            sharded.execute("SELECT _flock_seq FROM t")

    def test_rows_actually_distributed(self, pair):
        seed(pair)
        sharded, _ = pair
        per_shard = [
            s["rows"]["t"] for s in sharded.cluster.stats()["per_shard"]
        ]
        assert sum(per_shard) == 24
        assert sum(1 for n in per_shard if n) > 1

    def test_point_reads_route_to_one_shard(self, pair):
        seed(pair)
        sharded, _ = pair
        before = sharded.cluster.stats()["routes"]["single"]
        sharded.execute("SELECT v FROM t WHERE k = 11")
        after = sharded.cluster.stats()["routes"]["single"]
        assert after == before + 1

    def test_explain_and_analyze(self, pair):
        seed(pair)
        sharded, _ = pair
        plan = sharded.execute("EXPLAIN SELECT COUNT(*) FROM t").rows()
        assert plan
        analyzed = sharded.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM t"
        ).rows()
        assert any("Execution" in row[0] for row in analyzed)

    def test_concurrent_scattered_reads(self, pair):
        seed(pair, n=60)
        sharded, single = pair
        want = repr(single.execute("SELECT * FROM t").rows())
        errors: list[Exception] = []

        def reader():
            try:
                for _ in range(5):
                    got = sharded.execute("SELECT * FROM t").rows()
                    assert repr(got) == want
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


# ----------------------------------------------------------------------
# Writes
# ----------------------------------------------------------------------
class TestWrites:
    def test_update_delete_parity(self, pair):
        seed(pair)
        for sql in [
            "UPDATE t SET v = 'upd' WHERE k = 5",
            "UPDATE t SET x = x + 1 WHERE x > 20",
            "DELETE FROM t WHERE k IN (1, 2)",
            "DELETE FROM t WHERE x > 30",
        ]:
            got, want = both(pair, sql)
            assert got.affected_rows == want.affected_rows, sql
        got, want = both(pair, "SELECT * FROM t")
        assert repr(got.rows()) == repr(want.rows())

    def test_executemany_scatters_in_one_pass(self, pair):
        seed(pair, n=0)
        sharded, single = pair
        rows = [[i, f"bulk{i}", float(i)] for i in range(50)]
        sharded.executemany(
            "INSERT INTO t (k, v, x) VALUES (?, ?, ?)", rows
        )
        single.executemany(
            "INSERT INTO t (k, v, x) VALUES (?, ?, ?)", rows
        )
        got, want = both(pair, "SELECT * FROM t")
        assert repr(got.rows()) == repr(want.rows())

    def test_insert_select_materializes_through_merge(self, pair):
        seed(pair)
        for client in pair:
            client.execute(
                "CREATE TABLE t2 (k INT PRIMARY KEY, x FLOAT)"
            )
            client.execute(
                "INSERT INTO t2 (k, x) SELECT k, x FROM t WHERE x < 15"
            )
        got, want = both(pair, "SELECT * FROM t2")
        assert repr(got.rows()) == repr(want.rows())

    def test_failed_scatter_compensates(self, pair):
        seed(pair)
        sharded, single = pair
        bad = (
            "INSERT INTO t (k, v, x) VALUES "
            "(900, 'a', 1.0), (1, 'dup', 2.0), (901, 'b', 3.0)"
        )
        for client in pair:
            before = client.execute("SELECT * FROM t").rows()
            with pytest.raises(ConstraintError):
                client.execute(bad)
            assert client.execute("SELECT * FROM t").rows() == before

    def test_in_subquery_delete_rewrites(self, pair):
        seed(pair)
        sharded, single = pair
        # The router resolves the subquery over the merged snapshot and
        # broadcasts literals; the bare engine rejects this form, so the
        # twin runs the equivalent literal predicate.
        sharded.execute(
            "DELETE FROM t WHERE k IN (SELECT k FROM t WHERE x > 20)"
        )
        single.execute("DELETE FROM t WHERE x > 20")
        got, want = both(pair, "SELECT * FROM t")
        assert repr(got.rows()) == repr(want.rows())

    def test_no_pk_table_pins_to_shard_zero(self, pair):
        for client in pair:
            client.execute("CREATE TABLE log (msg TEXT)")
            client.execute("INSERT INTO log (msg) VALUES ('a'), ('b')")
        sharded, _ = pair
        got, want = both(pair, "SELECT * FROM log")
        assert repr(got.rows()) == repr(want.rows())
        assert (
            sharded.cluster.shards[1]
            .database.catalog.table("log")
            .row_count
            == 0
        )


# ----------------------------------------------------------------------
# Unsupported statements fail loudly, not wrongly
# ----------------------------------------------------------------------
class TestRejections:
    def test_explicit_transactions(self, pair):
        sharded, _ = pair
        for sql in ("BEGIN", "COMMIT", "ROLLBACK"):
            with pytest.raises(ShardError):
                sharded.execute(sql)

    def test_shard_key_update(self, pair):
        seed(pair)
        sharded, _ = pair
        with pytest.raises(ShardError):
            sharded.execute("UPDATE t SET k = 99 WHERE k = 1")

    def test_parameterized_in_subquery_dml(self, pair):
        seed(pair)
        sharded, _ = pair
        with pytest.raises(ShardError):
            sharded.execute(
                "DELETE FROM t WHERE k IN (SELECT k FROM t WHERE x > ?)",
                [1.0],
            )

    def test_parameter_count_checked_before_routing(self, pair):
        seed(pair)
        sharded, _ = pair
        with pytest.raises(BindError):
            sharded.execute("SELECT v FROM t WHERE k = ?", [1, 2])

    def test_unparseable_statement(self, pair):
        sharded, _ = pair
        with pytest.raises(ParseError):
            sharded.execute("FROBNICATE ALL THE THINGS")

    def test_invalid_configs(self, tmp_path):
        with pytest.raises(ShardError):
            ShardedCluster(None)
        with pytest.raises(ShardError):
            ShardedCluster(tmp_path / "z", shards=0)
        with pytest.raises(ShardError):
            flock.connect(shards=2)


# ----------------------------------------------------------------------
# DDL broadcast
# ----------------------------------------------------------------------
class TestDDLBroadcast:
    def test_create_reaches_every_shard(self, pair):
        seed(pair)
        sharded, _ = pair
        for shard in sharded.cluster.shards:
            schema = shard.database.catalog.schema("t")
            assert [c.name for c in schema.columns] == [
                "k", "v", "x", "_flock_seq",
            ]
            assert schema.columns[-1].hidden

    def test_invalid_ddl_touches_nothing(self, pair):
        sharded, _ = pair
        with pytest.raises(FlockError):
            sharded.execute("CREATE TABLE bad (k WIBBLE PRIMARY KEY)")
        for shard in sharded.cluster.shards:
            assert not shard.database.catalog.has_table("bad")

    def test_divergent_shard_rolls_back_applied_prefix(self, pair):
        sharded, _ = pair
        # Fault injection: shard 1 grows a conflicting table behind the
        # router's back, so the broadcast fails mid-flight.
        sharded.cluster.shards[1].database.execute(
            "CREATE TABLE ghost (a INT)"
        )
        with pytest.raises(FlockError):
            sharded.execute("CREATE TABLE ghost (a INT PRIMARY KEY)")
        assert not sharded.cluster.coordinator.catalog.has_table("ghost")
        assert not sharded.cluster.shards[0].database.catalog.has_table(
            "ghost"
        )

    def test_views_and_indexes_broadcast(self, pair):
        seed(pair)
        for client in pair:
            client.execute(
                "CREATE VIEW big AS SELECT k, x FROM t WHERE x > 9"
            )
            client.execute("CREATE INDEX t_v ON t (v)")
        got, want = both(pair, "SELECT * FROM big ORDER BY x LIMIT 3")
        assert repr(got.rows()) == repr(want.rows())
        got, want = both(pair, "SELECT k FROM t WHERE v = 'row7'")
        assert repr(got.rows()) == repr(want.rows())

    def test_security_broadcast(self, pair):
        seed(pair)
        for client in pair:
            client.execute("CREATE USER bob")
            client.execute("GRANT SELECT ON t TO bob")
        sharded, single = pair
        got = sharded.for_user("bob").execute("SELECT COUNT(*) FROM t")
        want = single.for_user("bob").execute("SELECT COUNT(*) FROM t")
        assert got.rows() == want.rows()
        for client in pair:
            with pytest.raises(FlockError):
                client.for_user("bob").execute(
                    "INSERT INTO t (k, v, x) VALUES (999, 'x', 0.0)"
                )


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------
class TestModels:
    @staticmethod
    def _graph():
        from flock.ml import LinearRegression
        from flock.ml.datasets import make_regression
        from flock.mlgraph import to_graph

        X, y, _ = make_regression(30, 2, random_state=11)
        return to_graph(LinearRegression().fit(X, y), ["x", "x2"])

    def test_deploy_broadcasts_and_predict_matches(self, pair):
        for client in pair:
            client.execute(
                "CREATE TABLE f (k INT PRIMARY KEY, x FLOAT, x2 FLOAT)"
            )
            client.executemany(
                "INSERT INTO f (k, x, x2) VALUES (?, ?, ?)",
                [[i, float(i), i / 2.0] for i in range(16)],
            )
            client.registry.deploy("m", self._graph())
        got, want = both(
            pair,
            "SELECT k, PREDICT(m, x, x2) AS p FROM f ORDER BY k LIMIT 6",
        )
        assert repr(got.rows()) == repr(want.rows())
        got, want = both(
            pair, "SELECT PREDICT(m, x, x2) FROM f WHERE k = 7"
        )
        assert repr(got.rows()) == repr(want.rows())
        got, want = both(pair, "SELECT name, version FROM flock_models")
        assert repr(got.rows()) == repr(want.rows())


# ----------------------------------------------------------------------
# Durability
# ----------------------------------------------------------------------
class TestDurability:
    def test_shard_crash_reopen(self, pair):
        seed(pair)
        sharded, single = pair
        sharded.cluster.restart_shard(1)
        got, want = both(pair, "SELECT * FROM t")
        assert repr(got.rows()) == repr(want.rows())

    def test_cluster_reopen_recovers_sequences(self, tmp_path):
        with flock.connect(tmp_path / "db", shards=2) as client:
            client.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
            client.executemany(
                "INSERT INTO t (k, v) VALUES (?, ?)",
                [[i, f"r{i}"] for i in range(10)],
            )
            before = client.execute("SELECT * FROM t").rows()
        with flock.connect(tmp_path / "single") as single:
            single.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
            single.executemany(
                "INSERT INTO t (k, v) VALUES (?, ?)",
                [[i, f"r{i}"] for i in range(10)],
            )
            single.execute("INSERT INTO t (k, v) VALUES (100, 'after')")
            want = single.execute("SELECT * FROM t").rows()
        with flock.connect(tmp_path / "db", shards=2) as client:
            assert client.execute("SELECT * FROM t").rows() == before
            client.execute("INSERT INTO t (k, v) VALUES (100, 'after')")
            assert repr(client.execute("SELECT * FROM t").rows()) == repr(
                want
            )

    def test_reopen_with_different_shard_count_refused(self, tmp_path):
        with flock.connect(tmp_path / "db", shards=2) as client:
            client.execute("CREATE TABLE t (k INT PRIMARY KEY)")
        with pytest.raises(ShardError):
            flock.connect(tmp_path / "db", shards=3)


# ----------------------------------------------------------------------
# Composition with replicas (PR 6)
# ----------------------------------------------------------------------
class TestReplicaComposition:
    def test_shards_with_replicas(self, tmp_path):
        with flock.connect(tmp_path / "db", shards=2, replicas=1) as client:
            client.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
            client.executemany(
                "INSERT INTO t (k, v) VALUES (?, ?)",
                [[i, f"r{i}"] for i in range(12)],
            )
            assert client.cluster.wait_for_catchup(10.0)
            assert len(client.execute("SELECT * FROM t").rows()) == 12
            assert client.execute(
                "SELECT v FROM t WHERE k = 3"
            ).rows() == [("r3",)]
            stats = client.cluster.stats()
            assert stats["shards"] == 2 and stats["replicas"] == 1


# ----------------------------------------------------------------------
# The client surface
# ----------------------------------------------------------------------
class TestClientSurface:
    def test_mode_and_submit(self, pair):
        sharded, _ = pair
        assert sharded.mode == "sharded"
        seed(pair)
        future = sharded.submit("SELECT COUNT(*) FROM t")
        assert future.result().rows() == [(24,)]
        failed = sharded.submit("SELECT nope FROM t")
        with pytest.raises(FlockError):
            failed.result()

    def test_stats_shape(self, pair):
        seed(pair)
        sharded, _ = pair
        stats = sharded.stats()
        assert stats["shards"] == 3
        assert set(stats["routes"]) == {
            "single", "scatter", "broadcast", "ddl",
        }
        assert len(stats["per_shard"]) == 3
