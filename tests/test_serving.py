"""flock.serving: plan cache, micro-batching, admission control, engine
concurrency primitives and the executemany fast path."""

from __future__ import annotations

import threading
import time

import pytest

from flock.db import Database
from flock.db.sql.parser import Parser
from flock.db.txn import ReadWriteLock
from flock.errors import (
    BindError,
    ServerClosedError,
    ServerOverloadedError,
    ServerTimeoutError,
)
from flock.serving import (
    BATCH_KEY_ALIAS,
    FlockServer,
    PlanCache,
    analyze_point_query,
    build_batch_statement,
)

POINT_QUERY = (
    "SELECT applicant_id, PREDICT(loan_model) AS p "
    "FROM loans WHERE applicant_id = ?"
)


# ----------------------------------------------------------------------
# ReadWriteLock
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        peak = {"readers": 0}
        active = []
        guard = threading.Lock()

        def reader():
            with lock.read_locked():
                with guard:
                    active.append(1)
                    peak["readers"] = max(peak["readers"], len(active))
                time.sleep(0.02)
                with guard:
                    active.pop()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak["readers"] > 1  # readers genuinely overlapped

    def test_writer_blocks_readers(self):
        lock = ReadWriteLock()
        observed = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                observed.append("read")

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.02)
        assert observed == []  # reader parked behind the writer
        lock.release_write()
        t.join()
        assert observed == ["read"]

    def test_write_reentrancy_and_read_under_write(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():
                    pass

    def test_read_reentrancy(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with lock.read_locked():
                pass
        # fully released: a writer can now proceed
        with lock.write_locked():
            pass

    def test_upgrade_raises(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_unmatched_release_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


# ----------------------------------------------------------------------
# Point-query shape analysis
# ----------------------------------------------------------------------
def _analyze(sql: str):
    parser = Parser(sql)
    return analyze_point_query(parser.parse(), parser.parameter_count)


class TestPointQueryAnalysis:
    def test_recognizes_point_query(self):
        shape = _analyze("SELECT a, b FROM t WHERE id = ?")
        assert shape is not None
        assert shape.table == "t"
        assert shape.key_column == "id"

    def test_reversed_equality(self):
        shape = _analyze("SELECT a FROM t WHERE ? = id")
        assert shape is not None
        assert shape.key_column == "id"

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(*) FROM t WHERE id = ?",  # aggregate
            "SELECT a FROM t WHERE id = ? ORDER BY a",  # ordering
            "SELECT a FROM t WHERE id = ? LIMIT 1",  # limit
            "SELECT DISTINCT a FROM t WHERE id = ?",  # distinct
            "SELECT a FROM t WHERE id = ? AND b = ?",  # two params
            "SELECT a FROM t WHERE id > ?",  # not equality
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) = ?",  # grouping
            "SELECT a + ? FROM t WHERE id = ?",  # param in select list
            "SELECT a FROM t JOIN s ON t.id = s.id WHERE t.id = ?",  # join
        ],
    )
    def test_rejects_non_batchable(self, sql):
        assert _analyze(sql) is None

    def test_batch_statement_rewrite(self):
        parser = Parser("SELECT a, b FROM t WHERE id = ?")
        statement = parser.parse()
        shape = analyze_point_query(statement, parser.parameter_count)
        batched = build_batch_statement(statement, shape, 3)
        assert len(batched.items) == 3  # a, b, scatter key
        assert batched.items[-1].alias == BATCH_KEY_ALIAS
        new_parser_count = sum(
            1 for _ in range(3)
        )  # 3 keys → 3 parameters in the IN list
        assert len(batched.where.items) == new_parser_count


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_hit_after_miss(self, loan_setup):
        database, *_ = loan_setup
        cache = PlanCache(database)
        first = cache.lookup(POINT_QUERY)
        second = cache.lookup(POINT_QUERY)
        assert first is second
        assert cache.misses == 1 and cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_parameterless_select_fully_prepared(self, loan_setup):
        database, *_ = loan_setup
        cache = PlanCache(database)
        entry = cache.lookup("SELECT COUNT(*) FROM loans")
        assert entry.plan is not None
        result = database.execute_plan(
            entry.plan,
            sql=entry.sql,
            reads=entry.reads,
            privileges=entry.privileges,
        )
        assert result.scalar() == 200

    def test_ddl_invalidates(self, loan_setup):
        database, *_ = loan_setup
        cache = PlanCache(database)
        stale = cache.lookup(POINT_QUERY)
        database.execute("CREATE TABLE side (x INT)")
        fresh = cache.lookup(POINT_QUERY)
        assert fresh is not stale
        assert cache.invalidations == 1
        assert fresh.epoch > stale.epoch

    def test_model_redeploy_invalidates(self, loan_setup):
        database, registry, dataset, pipeline = loan_setup
        from flock.mlgraph import to_graph

        cache = PlanCache(database)
        stale = cache.lookup(POINT_QUERY)
        registry.deploy(
            "loan_model",
            to_graph(pipeline, dataset.feature_names, name="loan_model"),
        )
        fresh = cache.lookup(POINT_QUERY)
        assert fresh is not stale
        assert cache.invalidations == 1

    def test_unparseable_sql_is_not_cached(self, loan_setup):
        database, *_ = loan_setup
        cache = PlanCache(database)
        assert cache.lookup("SELEC nope") is None
        assert len(cache) == 0

    def test_eviction_bound(self, loan_setup):
        database, *_ = loan_setup
        cache = PlanCache(database, max_entries=4)
        for i in range(10):
            cache.lookup(f"SELECT {i} FROM loans")
        assert len(cache) <= 4


# ----------------------------------------------------------------------
# FlockServer
# ----------------------------------------------------------------------
@pytest.fixture
def server(loan_setup):
    database, *_ = loan_setup
    with FlockServer(database, workers=4, batch_wait_ms=2.0) as srv:
        yield srv


class TestServer:
    def test_served_equals_direct(self, loan_setup, server):
        database, *_ = loan_setup
        for key in (1, 50, 199):
            direct = database.execute(POINT_QUERY, [key]).rows()
            assert server.execute(POINT_QUERY, [key]).rows() == direct

    def test_concurrent_burst_coalesces_and_matches(self, loan_setup, server):
        database, *_ = loan_setup
        results: dict[int, list] = {}

        def client(key):
            results[key] = server.execute(POINT_QUERY, [key]).rows()

        threads = [
            threading.Thread(target=client, args=(k,)) for k in range(1, 61)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for key, rows in results.items():
            assert database.execute(POINT_QUERY, [key]).rows() == rows
        stats = server.stats()
        assert stats["served"] == 60
        assert stats["batches"] < 60  # some coalescing happened
        assert stats["batched_requests"] > 0

    def test_missing_key_returns_empty(self, server):
        assert server.execute(POINT_QUERY, [10_000]).rows() == []

    def test_null_key_matches_engine_error(self, loan_setup, server):
        # The engine rejects `col = NULL` comparisons at bind time; the
        # batcher must surface the same error, not invent empty results.
        database, *_ = loan_setup
        with pytest.raises(BindError):
            database.execute(POINT_QUERY, [None])
        with pytest.raises(BindError):
            server.execute(POINT_QUERY, [None])

    def test_duplicate_keys_in_one_batch(self, loan_setup, server):
        database, *_ = loan_setup
        expected = database.execute(POINT_QUERY, [7]).rows()
        futures = [server.submit(POINT_QUERY, [7]) for _ in range(8)]
        for future in futures:
            assert future.result().rows() == expected

    def test_non_batchable_statements_still_serve(self, loan_setup, server):
        database, *_ = loan_setup
        direct = database.execute("SELECT COUNT(*) FROM loans").scalar()
        assert server.execute("SELECT COUNT(*) FROM loans").scalar() == direct
        aggregate = server.execute(
            "SELECT AVG(income) FROM loans WHERE applicant_id = ?", [1]
        )
        assert aggregate.rows() == database.execute(
            "SELECT AVG(income) FROM loans WHERE applicant_id = ?", [1]
        ).rows()

    def test_writes_through_server(self, loan_setup, server):
        database, *_ = loan_setup
        database.execute("CREATE TABLE audit_t (x INT)")
        result = server.execute("INSERT INTO audit_t VALUES (1), (2)")
        assert result.affected_rows == 2
        assert server.execute("SELECT COUNT(*) FROM audit_t").scalar() == 2

    def test_errors_propagate(self, server):
        from flock.errors import FlockError

        with pytest.raises(FlockError):
            server.execute("SELECT nope FROM missing_table WHERE id = ?", [1])

    def test_model_swap_while_serving(self, loan_setup, server):
        database, registry, dataset, pipeline = loan_setup
        from flock.mlgraph import to_graph

        before = server.execute(POINT_QUERY, [3]).rows()
        registry.deploy(
            "loan_model",
            to_graph(pipeline, dataset.feature_names, name="loan_model"),
        )
        after = server.execute(POINT_QUERY, [3]).rows()
        assert after == before  # same pipeline redeployed → same scores
        assert server.plan_cache.invalidations >= 1


class TestAdmissionControl:
    def test_overload_rejects(self, loan_setup):
        database, *_ = loan_setup
        server = FlockServer(
            database, workers=1, max_pending=2, auto_start=False
        )
        server.submit(POINT_QUERY, [1])
        server.submit(POINT_QUERY, [2])
        with pytest.raises(ServerOverloadedError):
            server.submit(POINT_QUERY, [3])
        server.shutdown(drain=False)

    def test_timeout(self, loan_setup):
        database, *_ = loan_setup
        server = FlockServer(database, workers=1, auto_start=False)
        future = server.submit(POINT_QUERY, [1], timeout=0.01)
        with pytest.raises(ServerTimeoutError):
            future.result()
        server.shutdown(drain=False)

    def test_closed_server_rejects(self, loan_setup):
        database, *_ = loan_setup
        server = FlockServer(database, workers=1)
        server.shutdown()
        with pytest.raises(ServerClosedError):
            server.submit(POINT_QUERY, [1])

    def test_graceful_drain(self, loan_setup):
        database, *_ = loan_setup
        server = FlockServer(database, workers=2, batch_wait_ms=5.0)
        futures = [server.submit(POINT_QUERY, [k]) for k in range(1, 21)]
        server.shutdown(drain=True)
        for future in futures:
            assert future.result().rows() is not None

    def test_client_handle(self, loan_setup):
        database, *_ = loan_setup
        with FlockServer(database, workers=2) as server:
            client = server.connect("admin")
            assert client.execute(
                "SELECT COUNT(*) FROM loans"
            ).scalar() == 200


# ----------------------------------------------------------------------
# executemany
# ----------------------------------------------------------------------
class TestExecutemany:
    def test_basic(self, db: Database):
        db.execute("CREATE TABLE kv (k INT, v TEXT)")
        result = db.executemany(
            "INSERT INTO kv VALUES (?, ?)",
            [(i, f"v{i}") for i in range(100)],
        )
        assert result.affected_rows == 100
        assert db.execute("SELECT COUNT(*) FROM kv").scalar() == 100
        assert db.execute(
            "SELECT v FROM kv WHERE k = ?", [42]
        ).scalar() == "v42"

    def test_single_audit_record(self, db: Database):
        db.execute("CREATE TABLE kv (k INT)")
        before = len(list(db.audit.log.records()))
        db.executemany("INSERT INTO kv VALUES (?)", [(i,) for i in range(50)])
        records = list(db.audit.log.records())[before:]
        inserts = [r for r in records if r.action == "INSERT"]
        assert len(inserts) == 1
        assert "50 rows" in inserts[0].detail

    def test_mixed_constants_and_params(self, db: Database):
        db.execute("CREATE TABLE ev (k INT, tag TEXT, score FLOAT)")
        db.executemany(
            "INSERT INTO ev VALUES (?, 'fixed', ?)",
            [(1, 0.5), (2, 1.5)],
        )
        assert db.execute("SELECT tag FROM ev WHERE k = 1").scalar() == "fixed"
        assert db.execute("SELECT score FROM ev WHERE k = 2").scalar() == 1.5

    def test_param_count_mismatch(self, db: Database):
        db.execute("CREATE TABLE kv (k INT, v TEXT)")
        with pytest.raises(BindError):
            db.executemany("INSERT INTO kv VALUES (?, ?)", [(1,)])

    def test_empty_sequence(self, db: Database):
        db.execute("CREATE TABLE kv (k INT)")
        result = db.executemany("INSERT INTO kv VALUES (?)", [])
        assert result.affected_rows == 0

    def test_column_subset_and_dates(self, db: Database):
        db.execute(
            "CREATE TABLE evts (k INT, d DATE, note TEXT)"
        )
        db.executemany(
            "INSERT INTO evts (k, d) VALUES (?, ?)",
            [(1, "2024-03-01"), (2, "2024-03-02")],
        )
        assert db.execute(
            "SELECT COUNT(*) FROM evts WHERE note IS NULL"
        ).scalar() == 2

    def test_fallback_for_non_insert(self, db: Database):
        db.execute("CREATE TABLE kv (k INT)")
        db.executemany("INSERT INTO kv VALUES (?)", [(1,), (2,), (3,)])
        result = db.executemany(
            "UPDATE kv SET k = k + 10 WHERE k = ?", [(1,), (2,)]
        )
        assert result.affected_rows == 2
        assert db.execute("SELECT SUM(k) FROM kv").scalar() == 26


# ----------------------------------------------------------------------
# Serving metrics
# ----------------------------------------------------------------------
def test_serving_metrics_populated(loan_setup):
    from flock.observability import metrics

    database, *_ = loan_setup
    with FlockServer(database, workers=2) as server:
        for key in range(1, 6):
            server.execute(POINT_QUERY, [key])
    snapshot = metrics().snapshot("serving.")
    names = set(snapshot)
    assert "serving.requests" in names
    assert "serving.plan_cache.hits" in names
    assert "serving.latency_ms" in names
