"""Process-chaos battery: SIGKILL and crash-faultpoint worker deaths.

The process backend's durability claim is the same one the single-engine
crash tests state — *acknowledged means durable* — but the failure domain
is now a fleet of worker processes, each with its own WAL. This battery
kills workers the two ways they die in production:

- a crash faultpoint armed *inside* the worker (``set_fault`` RPC with
  ``action="crash"`` → ``os._exit(137)`` mid-WAL-write — a power loss at
  the worst instruction), and
- a raw ``SIGKILL`` from outside, including mid-DDL-broadcast and to the
  entire fleet at once,

then reconnects and asserts zero committed-transaction loss: every
acknowledged row is present, nothing un-attempted appears, every shard's
audit hash chain still verifies, and interrupted DDL/deploy broadcasts
are repaired by the reopen-time reconciliation. The replica tier gets the
same treatment: a SIGKILLed follower worker must be routed around and
must not block promotion.
"""

from __future__ import annotations

import os
import signal

import pytest

import flock
from flock.errors import FlockError
from flock.proc import proc_available

pytestmark = pytest.mark.skipif(
    not proc_available(), reason="process backend needs POSIX sockets"
)

SHARDS = 3


def shard_rows(client, table: str) -> set[int]:
    if table not in client.db.catalog.table_names():
        return set()
    return {r[0] for r in client.execute(f"SELECT k FROM {table}").rows()}


def verify_fleet(client, acked: set[int], attempted: set[int]) -> None:
    """The durability contract after any worker death + reconnect."""
    present = shard_rows(client, "chaos")
    assert acked <= present, f"acked rows lost: {sorted(acked - present)}"
    assert present <= attempted, (
        f"rows appeared from nowhere: {sorted(present - attempted)}"
    )
    for shard in client.cluster.shards:
        assert shard.database.audit.log.verify_chain(), (
            f"shard {shard.index}: audit hash chain broken"
        )
    # Still a working fleet: scattered writes, scattered reads.
    client.execute(
        "CREATE TABLE IF NOT EXISTS post_chaos (k INT PRIMARY KEY)"
    )
    client.execute("INSERT INTO post_chaos VALUES (1), (2), (3)")
    assert client.execute("SELECT COUNT(*) FROM post_chaos").scalar() == 3


def run_until_crash(client, start: int = 0):
    """Insert rows one at a time until a worker dies mid-write.

    Returns ``(acked, attempted)`` — single-row inserts route to exactly
    one shard, so each is atomic: returned ⇒ acknowledged ⇒ durable.
    """
    acked: set[int] = set()
    attempted: set[int] = set()
    for k in range(start, start + 500):
        attempted.add(k)
        try:
            client.execute(f"INSERT INTO chaos VALUES ({k})")
        except FlockError:
            return acked, attempted
        acked.add(k)
    raise AssertionError("no worker died within 500 inserts")


@pytest.mark.parametrize(
    "point",
    ["wal.pre_fsync", "wal.post_fsync_pre_apply", "wal.pre_ack"],
)
def test_crash_faultpoint_mid_write_loses_nothing_acked(tmp_path, point):
    client = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    client.execute("CREATE TABLE chaos (k INT PRIMARY KEY)")
    # Arm every worker: whichever shard's WAL accumulates the hits dies
    # first, mid-commit, at this exact point.
    for shard in client.cluster.shards:
        shard.set_fault(point, action="crash", after=4)
    acked, attempted = run_until_crash(client)
    assert any(not s.healthy for s in client.cluster.shards)
    client.close()  # close tolerates the dead worker

    reopened = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    try:
        assert reopened.cluster.backend == "process"
        verify_fleet(reopened, acked, attempted)
    finally:
        reopened.close()


def test_sigkill_whole_fleet_then_reopen(tmp_path):
    client = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    client.execute("CREATE TABLE chaos (k INT PRIMARY KEY)")
    acked = set(range(40))
    for k in sorted(acked):
        client.execute(f"INSERT INTO chaos VALUES ({k})")
    pids = [shard.pid for shard in client.cluster.shards]
    assert len(set(pids)) == SHARDS
    for pid in pids:
        os.kill(pid, signal.SIGKILL)
    # No graceful close anywhere: this is the supervisor host dying.
    client.close()

    reopened = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    try:
        verify_fleet(reopened, acked, acked)
    finally:
        reopened.close()


def test_mid_ddl_broadcast_crash_rolls_back_atomically(tmp_path):
    client = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    client.execute("CREATE TABLE chaos (k INT PRIMARY KEY)")
    client.execute("INSERT INTO chaos VALUES (1), (2), (3)")
    # The last shard dies applying its leg of the broadcast. The router's
    # two-phase protocol must undo the applied prefix: a nacked CREATE
    # leaves the table on *no* shard, dead worker or not.
    client.cluster.shards[-1].set_fault("wal.pre_fsync", action="crash")
    with pytest.raises(FlockError):
        client.execute("CREATE TABLE bcast (k INT PRIMARY KEY, v TEXT)")
    assert "bcast" not in client.db.catalog.table_names()
    for shard in client.cluster.shards[:-1]:  # the survivors rolled back
        assert "bcast" not in shard.database.catalog.table_names()
    client.close()

    reopened = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    try:
        for shard in reopened.cluster.shards:
            assert "bcast" not in shard.database.catalog.table_names(), (
                f"shard {shard.index}: nacked CREATE resurrected"
            )
        # The nacked statement can simply be retried on the healed fleet.
        reopened.execute("CREATE TABLE bcast (k INT PRIMARY KEY, v TEXT)")
        reopened.execute("INSERT INTO bcast VALUES (1, 'a'), (2, 'b')")
        assert reopened.execute(
            "SELECT COUNT(*) FROM bcast"
        ).scalar() == 2
        verify_fleet(reopened, {1, 2, 3}, {1, 2, 3})
    finally:
        reopened.close()


def test_supervisor_death_mid_broadcast_is_reconciled_on_reopen(tmp_path):
    """When the *supervisor* dies between broadcast legs no rollback ever
    runs — the on-disk shard catalogs genuinely diverge. Reopen-time
    reconciliation must restore the invariant: shard 0's applied prefix
    wins (replayed forward), an orphan applied past shard 0 is dropped.
    """
    client = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    client.execute("CREATE TABLE chaos (k INT PRIMARY KEY)")
    # Fabricate the divergence by broadcasting normally, then surgically
    # undoing legs through the worker engines — this reproduces the disk
    # state (routed schemas included) without racing a real kill:
    # fwd_t reached only shard 0, orphan_t reached everyone *but* shard 0.
    client.execute("CREATE TABLE fwd_t (k INT PRIMARY KEY)")
    for shard in client.cluster.shards[1:]:
        shard.database.execute("DROP TABLE fwd_t")
    client.execute("CREATE TABLE orphan_t (k INT PRIMARY KEY)")
    client.cluster.shards[0].database.execute("DROP TABLE orphan_t")
    for shard in client.cluster.shards:
        os.kill(shard.pid, signal.SIGKILL)
    client.close()

    reopened = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    try:
        for shard in reopened.cluster.shards:
            names = set(shard.database.catalog.table_names())
            assert "fwd_t" in names, (
                f"shard {shard.index}: shard-0 prefix not replayed"
            )
            assert "orphan_t" not in names, (
                f"shard {shard.index}: orphan table not rolled back"
            )
        assert "orphan_t" not in reopened.db.catalog.table_names()
        # The replayed table is fully routed: scattered writes land.
        reopened.execute("INSERT INTO fwd_t VALUES (1), (2), (3)")
        assert reopened.execute(
            "SELECT COUNT(*) FROM fwd_t"
        ).scalar() == 3
    finally:
        reopened.close()


def test_mid_deploy_broadcast_crash_is_reconciled_on_reopen(tmp_path):
    from flock.ml import LinearRegression
    from flock.ml.datasets import make_regression
    from flock.mlgraph import to_graph

    X, y, _ = make_regression(30, 2, random_state=11)
    graph = to_graph(LinearRegression().fit(X, y), ["f0", "f1"])

    client = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    client.registry.deploy("pre_chaos_model", graph)
    client.cluster.shards[-1].set_fault("wal.pre_fsync", action="crash")
    with pytest.raises(FlockError):
        client.registry.deploy("chaos_model", graph)
    client.close()

    reopened = flock.connect(tmp_path / "db", shards=SHARDS, process=True)
    try:
        for shard in reopened.cluster.shards:
            names = set(shard.registry.model_names())
            assert "pre_chaos_model" in names
            assert "chaos_model" in names, (
                f"shard {shard.index}: interrupted deploy not replayed"
            )
    finally:
        reopened.close()


def test_follower_worker_sigkill_routed_around_then_promote(tmp_path):
    client = flock.connect(tmp_path / "db", replicas=2, process=True)
    cluster = client.cluster
    try:
        client.execute("CREATE TABLE f (k INT PRIMARY KEY)")
        for k in range(10):
            client.execute(f"INSERT INTO f VALUES ({k})")
        assert cluster.wait_for_catchup(10.0)

        victim = cluster.followers[0]
        assert victim.status()["backend"] == "process"
        os.kill(victim.pid, signal.SIGKILL)
        # The next shipped record makes the parent-side forwarder hit the
        # dead worker and mark the follower unhealthy — no heartbeat wait.
        client.execute("INSERT INTO f VALUES (10)")
        victim.wait_for(cluster.hub.lsn, timeout=10.0)
        assert not victim.healthy

        # Reads route around the corpse.
        for _ in range(8):
            assert client.execute(
                "SELECT COUNT(*) FROM f"
            ).scalar() == 11

        # Promotion skips the unhealthy follower and keeps every commit.
        report = cluster.promote()
        assert report["promoted"]["name"] != victim.name
        assert client.execute("SELECT COUNT(*) FROM f").scalar() == 11
        client.execute("INSERT INTO f VALUES (11)")
        # The rebuilt follower tier must catch up before a routed read
        # can be asserted against — promotion re-seeds from a snapshot.
        assert cluster.wait_for_catchup(10.0)
        assert client.execute("SELECT COUNT(*) FROM f").scalar() == 12
    finally:
        client.close()
