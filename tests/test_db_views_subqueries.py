"""Views (definer-semantics access control) and IN-subquery tests."""

import pytest

from flock.db import Database
from flock.errors import BindError, CatalogError, SecurityError


@pytest.fixture
def view_db(db):
    db.execute("CREATE TABLE emp (id INT, name TEXT, dept TEXT, ssn TEXT)")
    db.execute(
        "INSERT INTO emp VALUES (1,'ann','eng','111'), (2,'bob','eng','222'), "
        "(3,'cyd','hr','333')"
    )
    db.execute("CREATE VIEW emp_public AS SELECT id, name, dept FROM emp")
    return db


class TestViews:
    def test_view_query(self, view_db):
        rows = view_db.execute(
            "SELECT name FROM emp_public WHERE dept = 'eng' ORDER BY id"
        ).rows()
        assert rows == [("ann",), ("bob",)]

    def test_view_hides_columns(self, view_db):
        with pytest.raises(BindError):
            view_db.execute("SELECT ssn FROM emp_public")

    def test_view_with_alias(self, view_db):
        rows = view_db.execute(
            "SELECT p.name FROM emp_public p WHERE p.id = 1"
        ).rows()
        assert rows == [("ann",)]

    def test_view_reflects_base_changes(self, view_db):
        view_db.execute("INSERT INTO emp VALUES (4,'dee','ops','444')")
        assert view_db.execute(
            "SELECT COUNT(*) FROM emp_public"
        ).scalar() == 4

    def test_view_joins_with_tables(self, view_db):
        view_db.execute("CREATE TABLE floors (dept TEXT, floor INT)")
        view_db.execute("INSERT INTO floors VALUES ('eng', 3)")
        rows = view_db.execute(
            "SELECT p.name, f.floor FROM emp_public p "
            "JOIN floors f ON p.dept = f.dept ORDER BY p.id"
        ).rows()
        assert rows == [("ann", 3), ("bob", 3)]

    def test_view_over_aggregate(self, view_db):
        view_db.execute(
            "CREATE VIEW dept_sizes AS "
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept"
        )
        rows = view_db.execute(
            "SELECT dept, n FROM dept_sizes ORDER BY dept"
        ).rows()
        assert rows == [("eng", 2), ("hr", 1)]

    def test_view_of_view(self, view_db):
        view_db.execute(
            "CREATE VIEW eng_only AS "
            "SELECT id, name FROM emp_public WHERE dept = 'eng'"
        )
        assert view_db.execute(
            "SELECT COUNT(*) FROM eng_only"
        ).scalar() == 2

    def test_duplicate_and_collision_rejected(self, view_db):
        with pytest.raises(CatalogError):
            view_db.execute("CREATE VIEW emp_public AS SELECT id FROM emp")
        with pytest.raises(CatalogError):
            view_db.execute("CREATE VIEW emp AS SELECT id FROM emp")
        with pytest.raises(CatalogError):
            view_db.execute("CREATE TABLE emp_public (x INT)")

    def test_drop_view(self, view_db):
        view_db.execute("DROP VIEW emp_public")
        with pytest.raises(CatalogError):
            view_db.execute("SELECT * FROM emp_public")
        with pytest.raises(CatalogError):
            view_db.execute("DROP VIEW emp_public")
        view_db.execute("DROP VIEW IF EXISTS emp_public")

    def test_invalid_definition_rejected_at_creation(self, view_db):
        with pytest.raises(BindError):
            view_db.execute("CREATE VIEW broken AS SELECT nope FROM emp")


class TestViewSecurity:
    def test_definer_semantics(self, view_db):
        """A grant on the view suffices; the base table stays locked."""
        view_db.execute("CREATE USER clerk")
        view_db.execute("GRANT SELECT ON emp_public TO clerk")
        rows = view_db.execute(
            "SELECT name FROM emp_public ORDER BY id", user="clerk"
        ).rows()
        assert len(rows) == 3
        with pytest.raises(SecurityError):
            view_db.execute("SELECT ssn FROM emp", user="clerk")

    def test_view_without_grant_denied(self, view_db):
        view_db.execute("CREATE USER stranger")
        with pytest.raises(SecurityError):
            view_db.execute("SELECT name FROM emp_public", user="stranger")

    def test_creator_needs_base_privileges(self, view_db):
        view_db.execute("CREATE USER schemer")
        with pytest.raises(SecurityError):
            view_db.execute(
                "CREATE VIEW leak AS SELECT ssn FROM emp", user="schemer"
            )

    def test_create_view_audited(self, view_db):
        records = view_db.audit.log.records(action="CREATE_VIEW")
        assert records and records[0].object_name == "emp_public"


class TestInSubqueries:
    @pytest.fixture
    def sub_db(self, db):
        db.execute("CREATE TABLE orders_t (id INT, customer TEXT)")
        db.execute("CREATE TABLE vip (name TEXT)")
        db.execute(
            "INSERT INTO orders_t VALUES (1,'ann'), (2,'bob'), (3,'ann'), "
            "(4,'cyd'), (5, NULL)"
        )
        db.execute("INSERT INTO vip VALUES ('ann'), ('ann'), ('dee')")
        return db

    def test_in_semijoin_no_duplicates(self, sub_db):
        # 'ann' appears twice in vip, but each order appears once.
        rows = sub_db.execute(
            "SELECT id FROM orders_t WHERE customer IN "
            "(SELECT name FROM vip) ORDER BY id"
        ).rows()
        assert rows == [(1,), (3,)]

    def test_not_in_antijoin(self, sub_db):
        rows = sub_db.execute(
            "SELECT id FROM orders_t WHERE customer NOT IN "
            "(SELECT name FROM vip) ORDER BY id"
        ).rows()
        assert rows == [(2,), (4,), (5,)]

    def test_in_combined_with_other_predicates(self, sub_db):
        rows = sub_db.execute(
            "SELECT id FROM orders_t WHERE customer IN "
            "(SELECT name FROM vip) AND id > 1"
        ).rows()
        assert rows == [(3,)]

    def test_subquery_with_where(self, sub_db):
        rows = sub_db.execute(
            "SELECT id FROM orders_t WHERE customer IN "
            "(SELECT name FROM vip WHERE name <> 'ann')"
        ).rows()
        assert rows == []

    def test_multi_column_subquery_rejected(self, sub_db):
        with pytest.raises(BindError):
            sub_db.execute(
                "SELECT id FROM orders_t WHERE customer IN "
                "(SELECT name, name FROM vip)"
            )

    def test_in_query_in_select_list_rejected(self, sub_db):
        with pytest.raises(BindError):
            sub_db.execute(
                "SELECT customer IN (SELECT name FROM vip) FROM orders_t"
            )

    def test_nested_in_or_rejected(self, sub_db):
        with pytest.raises(BindError):
            sub_db.execute(
                "SELECT id FROM orders_t WHERE id = 1 OR customer IN "
                "(SELECT name FROM vip)"
            )

    def test_aggregate_over_semijoin(self, sub_db):
        n = sub_db.execute(
            "SELECT COUNT(*) FROM orders_t WHERE customer IN "
            "(SELECT name FROM vip)"
        ).scalar()
        assert n == 2

    def test_star_does_not_leak_hidden_column(self, sub_db):
        result = sub_db.execute(
            "SELECT * FROM orders_t WHERE customer IN "
            "(SELECT name FROM vip) ORDER BY id"
        )
        assert result.column_names == ["id", "customer"]
