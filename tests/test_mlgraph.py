"""Tests for the model-graph IR: structure, ops, runtime, serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.errors import GraphError
from flock.mlgraph import (
    Graph,
    GraphRuntime,
    Node,
    TensorSpec,
    graph_from_dict,
    graph_to_dict,
)
from flock.mlgraph.ops import lookup, registered_ops


def _linear_graph(weights, bias) -> Graph:
    names = [f"x{i}" for i in range(len(weights))]
    return Graph(
        name="lin",
        inputs=[TensorSpec(n) for n in names],
        outputs=[TensorSpec("score")],
        nodes=[
            Node("pack", names, ["features"]),
            Node(
                "linear",
                ["features"],
                ["score"],
                {"weights": list(weights), "bias": bias},
            ),
        ],
        output_kinds={"score": "score"},
    )


class TestGraphStructure:
    def test_validation_catches_cycles(self):
        with pytest.raises(GraphError):
            Graph(
                "bad",
                inputs=[TensorSpec("x")],
                outputs=[TensorSpec("a")],
                nodes=[
                    Node("add", ["x", "b"], ["a"]),
                    Node("add", ["a", "x"], ["b"]),
                ],
            )

    def test_duplicate_producer_rejected(self):
        with pytest.raises(GraphError):
            Graph(
                "bad",
                inputs=[TensorSpec("x")],
                outputs=[TensorSpec("y")],
                nodes=[
                    Node("sigmoid", ["x"], ["y"]),
                    Node("relu", ["x"], ["y"]),
                ],
            )

    def test_missing_output_rejected(self):
        with pytest.raises(GraphError):
            Graph("bad", [TensorSpec("x")], [TensorSpec("nope")], [])

    def test_invalid_dtype(self):
        with pytest.raises(GraphError):
            TensorSpec("x", "complex")

    def test_toposort_orders_dependencies(self):
        graph = _linear_graph([1.0, 2.0], 0.0)
        ordered = [n.op_type for n in graph.toposorted()]
        assert ordered == ["pack", "linear"]

    def test_output_field_names_prefer_kinds(self):
        graph = _linear_graph([1.0], 0.0)
        assert graph.output_field_names() == [("score", "score")]


class TestOps:
    def test_registry_contains_all_core_ops(self):
        ops = registered_ops()
        for name in (
            "pack", "linear", "sigmoid", "tree_ensemble", "onehot",
            "scale", "impute", "text_hash", "threshold", "label_map",
            "argmax", "concat", "pick_column", "slice_columns",
        ):
            assert name in ops

    def test_unknown_op(self):
        with pytest.raises(GraphError):
            lookup("flux_capacitor")

    def test_scale_op(self):
        impl = lookup("scale")
        (out,) = impl(
            {"offset": [1.0, 0.0], "divisor": [2.0, 1.0]},
            [np.array([[3.0, 5.0]])],
        )
        assert out.tolist() == [[1.0, 5.0]]

    def test_impute_op(self):
        impl = lookup("impute")
        (out,) = impl(
            {"statistics": [9.0]}, [np.array([[np.nan], [2.0]])]
        )
        assert out.tolist() == [[9.0], [2.0]]

    def test_onehot_unknowns(self):
        impl = lookup("onehot")
        (out,) = impl(
            {"categories": ["a", "b"]},
            [np.array(["b", "zzz"], dtype=object)],
        )
        assert out.tolist() == [[0.0, 1.0], [0.0, 0.0]]

    def test_threshold_and_label_map(self):
        (idx,) = lookup("threshold")({"cutoff": 0.5}, [np.array([0.4, 0.9])])
        assert idx.tolist() == [0, 1]
        (labels,) = lookup("label_map")(
            {"labels": ["no", "yes"]}, [idx]
        )
        assert labels.tolist() == ["no", "yes"]

    def test_tree_ensemble_sum_and_average(self):
        stump = {
            "feature": 0,
            "threshold": 0.0,
            "left": {"value": [1.0], "left": None, "right": None},
            "right": {"value": [5.0], "left": None, "right": None},
        }
        X = np.array([[-1.0], [1.0]])
        impl = lookup("tree_ensemble")
        (summed,) = impl(
            {"trees": [stump, stump], "aggregation": "sum", "scale": 0.5,
             "init": 10.0},
            [X],
        )
        assert summed.tolist() == [11.0, 15.0]
        (averaged,) = impl(
            {"trees": [stump, stump], "aggregation": "average"}, [X]
        )
        assert averaged.tolist() == [1.0, 5.0]


class TestRuntime:
    def test_linear_batch(self):
        graph = _linear_graph([2.0, -1.0], 0.5)
        rt = GraphRuntime()
        out = rt.run(
            graph, {"x0": np.array([1.0, 0.0]), "x1": np.array([0.0, 1.0])}
        )
        assert out["score"].tolist() == [2.5, -0.5]
        assert rt.stats.runs == 1
        assert rt.stats.rows == 2

    def test_per_row_equals_batch(self):
        graph = _linear_graph([1.5, 2.5], -1.0)
        feeds = {
            "x0": np.arange(10, dtype=float),
            "x1": np.arange(10, dtype=float)[::-1].copy(),
        }
        rt = GraphRuntime()
        batch = rt.run(graph, feeds, mode="batch")["score"]
        per_row = rt.run(graph, feeds, mode="per_row")["score"]
        assert np.allclose(batch, per_row)

    def test_missing_feed_rejected(self):
        graph = _linear_graph([1.0], 0.0)
        with pytest.raises(GraphError, match="missing"):
            GraphRuntime().run(graph, {})

    def test_ragged_feeds_rejected(self):
        graph = _linear_graph([1.0, 1.0], 0.0)
        with pytest.raises(GraphError, match="ragged"):
            GraphRuntime().run(
                graph, {"x0": np.zeros(2), "x1": np.zeros(3)}
            )

    def test_unknown_mode(self):
        graph = _linear_graph([1.0], 0.0)
        with pytest.raises(GraphError):
            GraphRuntime().run(graph, {"x0": np.zeros(1)}, mode="quantum")


class TestSerialization:
    def test_roundtrip_preserves_results(self):
        graph = _linear_graph([0.25, 4.0], 2.0)
        payload = graph_to_dict(graph)
        import json

        restored = graph_from_dict(json.loads(json.dumps(payload)))
        feeds = {"x0": np.array([1.0]), "x1": np.array([2.0])}
        a = GraphRuntime().run(graph, feeds)["score"]
        b = GraphRuntime().run(restored, feeds)["score"]
        assert np.allclose(a, b)

    def test_version_checked(self):
        payload = graph_to_dict(_linear_graph([1.0], 0.0))
        payload["format_version"] = 99
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_file_roundtrip(self, tmp_path):
        from flock.mlgraph import load_graph, save_graph

        graph = _linear_graph([1.0], 0.0)
        path = tmp_path / "model.json"
        save_graph(graph, path)
        restored = load_graph(path)
        assert restored.name == "lin"

    @settings(deadline=None, max_examples=20)
    @given(
        st.lists(st.floats(-10, 10), min_size=1, max_size=5),
        st.floats(-10, 10),
    )
    def test_roundtrip_property(self, weights, bias):
        graph = _linear_graph(weights, bias)
        restored = graph_from_dict(graph_to_dict(graph))
        feeds = {
            f"x{i}": np.linspace(-1, 1, 7) for i in range(len(weights))
        }
        a = GraphRuntime().run(graph, feeds)["score"]
        b = GraphRuntime().run(restored, feeds)["score"]
        assert np.allclose(a, b)
