"""Policy engine tests: rules, decision chains, transactional actions."""

import pytest

from flock.errors import PolicyError
from flock.policy import (
    CapPolicy,
    FloorPolicy,
    OverridePolicy,
    PolicyEngine,
    VetoPolicy,
)


class TestRules:
    def test_cap_constant(self):
        cap = CapPolicy("cap", 10.0)
        assert cap.apply(15.0, {}).value == 10.0
        assert cap.apply(15.0, {}).applied
        assert not cap.apply(5.0, {}).applied

    def test_cap_from_context(self):
        cap = CapPolicy("cap", lambda ctx: ctx["user_cap"])
        assert cap.apply(100.0, {"user_cap": 30.0}).value == 30.0

    def test_floor(self):
        floor = FloorPolicy("floor", 1.0)
        assert floor.apply(0.2, {}).value == 1.0
        assert not floor.apply(2.0, {}).applied

    def test_override(self):
        rule = OverridePolicy(
            "manual",
            condition=lambda v, ctx: ctx.get("blocked"),
            replacement=0.0,
            reason="blocked account",
        )
        outcome = rule.apply(0.9, {"blocked": True})
        assert outcome.applied and outcome.value == 0.0
        assert "blocked" in outcome.reason
        assert not rule.apply(0.9, {"blocked": False}).applied

    def test_veto(self):
        veto = VetoPolicy("minors", lambda v, ctx: ctx.get("age", 99) < 18)
        assert veto.apply(0.5, {"age": 10}).vetoed
        assert not veto.apply(0.5, {"age": 40}).vetoed

    def test_unnamed_policy_rejected(self):
        with pytest.raises(PolicyError):
            CapPolicy("", 1.0)


class TestEngineDecisions:
    def _engine(self):
        engine = PolicyEngine()
        engine.add_policy(CapPolicy("cap", 0.95, priority=50))
        engine.add_policy(
            VetoPolicy(
                "minors",
                lambda v, ctx: ctx.get("age", 99) < 18,
                priority=10,
            )
        )
        return engine

    def test_priority_order(self):
        engine = self._engine()
        names = [p.name for p in engine.policies]
        assert names == ["minors", "cap"]  # lower priority first

    def test_chain_applies_in_order(self):
        engine = self._engine()
        decision = engine.decide("m", 0.99, {"age": 30})
        assert decision.final_value == 0.95
        assert decision.applied_policies == ["cap"]
        assert decision.overridden

    def test_veto_short_circuits(self):
        engine = self._engine()
        decision = engine.decide("m", 0.99, {"age": 12})
        assert decision.vetoed
        assert decision.final_value is None
        # The cap never ran.
        assert [o.policy_name for o in decision.outcomes] == ["minors"]

    def test_duplicate_policy_names_rejected(self):
        engine = self._engine()
        with pytest.raises(PolicyError):
            engine.add_policy(CapPolicy("cap", 1.0))

    def test_remove_policy(self):
        engine = self._engine()
        assert engine.remove_policy("cap")
        assert not engine.remove_policy("cap")

    def test_decide_batch(self):
        engine = self._engine()
        decisions = engine.decide_batch("m", [0.2, 0.99], [{}, {}])
        assert [d.final_value for d in decisions] == [0.2, 0.95]
        with pytest.raises(PolicyError):
            engine.decide_batch("m", [1.0], [{}, {}])

    def test_override_rate(self):
        engine = self._engine()
        engine.decide("m", 0.1)
        engine.decide("m", 0.99)
        assert engine.state.override_rate("m") == 0.5


class TestStateAndExplain:
    def test_explain_full_trace(self):
        engine = PolicyEngine([CapPolicy("cap", 10.0)])
        decision = engine.decide("jobs_model", 50.0, {"job": "j1"})
        text = engine.state.explain(decision.decision_id)
        assert "raw model output: 50.0" in text
        assert "cap" in text
        assert "10.0" in text

    def test_unknown_decision(self):
        engine = PolicyEngine()
        with pytest.raises(PolicyError):
            engine.state.explain(999)

    def test_filters(self):
        engine = PolicyEngine([CapPolicy("cap", 1.0)])
        engine.decide("a", 5.0)
        engine.decide("b", 0.5)
        assert len(engine.state.decisions(model_name="a")) == 1
        assert len(engine.state.decisions(overridden_only=True)) == 1


class TestTransactionalActions:
    def test_act_commits(self):
        engine = PolicyEngine()
        decision = engine.decide("m", 42.0)
        result = engine.act(decision, lambda v: v * 2)
        assert result == 84.0
        assert engine.state.actions(decision.decision_id)[0].status == (
            "committed"
        )

    def test_act_rolls_back_on_failure(self):
        engine = PolicyEngine()
        decision = engine.decide("m", 1.0)
        compensated = []
        with pytest.raises(RuntimeError):
            engine.act(
                decision,
                lambda v: (_ for _ in ()).throw(RuntimeError("boom")),
                compensate=compensated.append,
            )
        assert compensated == [1.0]
        assert engine.state.actions(decision.decision_id)[0].status == (
            "rolled_back"
        )

    def test_vetoed_never_acts(self):
        engine = PolicyEngine(
            [VetoPolicy("always", lambda v, ctx: True)]
        )
        decision = engine.decide("m", 1.0)
        acted = []
        assert engine.act(decision, acted.append) is None
        assert acted == []
        assert engine.state.actions(decision.decision_id)[0].status == (
            "skipped_veto"
        )

    def test_act_in_database_commits(self, db):
        db.execute("CREATE TABLE actions (job TEXT, tokens INT)")
        engine = PolicyEngine([CapPolicy("cap", 100)])
        decision = engine.decide("jobs", 500, {"job": "j1"})
        ok = engine.act_in_database(
            decision,
            db,
            [f"INSERT INTO actions VALUES ('j1', {int(decision.final_value)})"],
        )
        assert ok
        assert db.execute("SELECT tokens FROM actions").scalar() == 100

    def test_act_in_database_rolls_back_all_statements(self, db):
        db.execute("CREATE TABLE actions (job TEXT, tokens INT)")
        engine = PolicyEngine()
        decision = engine.decide("jobs", 10)
        ok = engine.act_in_database(
            decision,
            db,
            [
                "INSERT INTO actions VALUES ('good', 1)",
                "INSERT INTO broken_table VALUES (1)",  # fails
            ],
        )
        assert not ok
        # The first statement was rolled back with the second.
        assert db.execute("SELECT COUNT(*) FROM actions").scalar() == 0
        status = engine.state.actions(decision.decision_id)[0].status
        assert status == "rolled_back"
