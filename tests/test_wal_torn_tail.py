"""Torn and corrupt WAL tails.

A crash can stop a log write anywhere: these tests truncate the log at
*every* byte boundary of its final record and separately flip *every* byte
of that record, then require recovery to (a) not raise, (b) recover exactly
the commits before the damaged one, and (c) report the damage instead of
hiding it.
"""

from __future__ import annotations

import struct

import pytest

from flock.db import Database
from flock.db.wal import _FRAME, _HEADER

_pristine_cache: dict = {}


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """Bytes of a clean 3-record log: one DDL commit plus two inserts.

    Recovery of a damaged copy must yield the state just before the last
    record: table ``t`` containing only row (1,).
    """
    if not _pristine_cache:
        root = tmp_path_factory.mktemp("pristine")
        db = Database.open(root)
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.close()
        _pristine_cache["data"] = (root / "wal.log").read_bytes()
    return _pristine_cache["data"]


def record_boundaries(data: bytes) -> list[int]:
    """Offsets at which each complete record ends."""
    boundaries = []
    offset = _HEADER.size
    while offset < len(data):
        length, _ = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size + length
        boundaries.append(offset)
    assert boundaries[-1] == len(data)
    return boundaries


def recover_from(tmp_path, data: bytes, name: str) -> Database:
    root = tmp_path / name
    root.mkdir()
    (root / "wal.log").write_bytes(data)
    return Database.open(root)


def test_truncation_at_every_byte_of_the_last_record(pristine, tmp_path):
    boundaries = record_boundaries(pristine)
    last_start = boundaries[-2]
    size = len(pristine)
    for cut in range(last_start, size):
        db = recover_from(tmp_path, pristine[:cut], f"cut{cut}")
        report = db.wal.last_recovery
        try:
            assert db.execute("SELECT x FROM t ORDER BY x").rows() == [(1,)]
            if cut == last_start:
                assert report.tail_status == "clean"
                assert report.discarded_bytes == 0
            else:
                assert report.tail_status == "torn"
                assert report.discarded_bytes == cut - last_start
            # The DDL record and the first insert commit replay; the
            # damaged second insert does not.
            assert (report.ddl_replayed, report.commits_replayed) == (1, 1)
        finally:
            db.close()


def test_bit_flip_in_every_byte_of_the_last_record(pristine, tmp_path):
    boundaries = record_boundaries(pristine)
    last_start = boundaries[-2]
    size = len(pristine)
    for offset in range(last_start, size):
        mutated = bytearray(pristine)
        mutated[offset] ^= 0x40
        db = recover_from(tmp_path, bytes(mutated), f"flip{offset}")
        report = db.wal.last_recovery
        try:
            assert db.execute("SELECT x FROM t ORDER BY x").rows() == [(1,)]
            # A flipped length field reads as a frame running past EOF
            # (torn); any other flip fails the CRC or JSON decode (corrupt).
            assert report.tail_status in ("torn", "corrupt")
            assert report.discarded_bytes == size - last_start
            assert (report.ddl_replayed, report.commits_replayed) == (1, 1)
        finally:
            db.close()


def test_corrupt_header_discards_whole_log(pristine, tmp_path):
    mutated = bytearray(pristine)
    mutated[0] ^= 0xFF  # break the magic
    db = recover_from(tmp_path, bytes(mutated), "badmagic")
    try:
        assert db.wal.last_recovery.tail_status == "corrupt"
        assert db.wal.last_recovery.commits_replayed == 0
        assert "t" not in db.catalog.table_names()
    finally:
        db.close()


def test_log_shorter_than_header_is_survivable(pristine, tmp_path):
    db = recover_from(tmp_path, pristine[:7], "stub")
    try:
        assert db.wal.last_recovery.tail_status == "corrupt"
        assert db.catalog.table_names() == []
        db.execute("CREATE TABLE fresh (x INT)")  # usable afterwards
    finally:
        db.close()


def test_database_stays_writable_after_tail_truncation(pristine, tmp_path):
    """The damaged tail is physically truncated; new commits append after
    the last valid record and survive another reopen."""
    boundaries = record_boundaries(pristine)
    last_start = boundaries[-2]
    cut = last_start + (len(pristine) - last_start) // 2
    root = tmp_path / "writable"
    root.mkdir()
    (root / "wal.log").write_bytes(pristine[:cut])

    db = Database.open(root)
    assert db.wal.last_recovery.tail_status == "torn"
    assert (root / "wal.log").stat().st_size == last_start
    db.execute("INSERT INTO t VALUES (99)")
    db.close()

    db = Database.open(root)
    assert db.wal.last_recovery.tail_status == "clean"
    assert db.execute("SELECT x FROM t ORDER BY x").rows() == [(1,), (99,)]
    db.close()
