"""Differential fuzzing: random SQL expressions vs a Python reference.

Hypothesis generates random expression trees over two nullable integer
columns; each tree renders both as SQL text and as a Python closure that
implements SQL's three-valued semantics. The engine must agree with the
reference on every row — this is the deepest correctness net over the
parser + binder + optimizer + vectorized evaluator stack.
"""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.db import Database

ROWS = [
    (1, 0, 5),
    (2, -3, None),
    (3, None, 2),
    (4, 7, 7),
    (5, None, None),
    (6, 100, -100),
]


@pytest.fixture(scope="module")
def fuzz_db():
    db = Database()
    db.execute("CREATE TABLE t (id INT, a INT, b INT)")
    values = ", ".join(
        "("
        + ", ".join("NULL" if v is None else str(v) for v in row)
        + ")"
        for row in ROWS
    )
    db.execute(f"INSERT INTO t VALUES {values}")
    return db


# ----------------------------------------------------------------------
# Expression generators: (sql_text, python_fn(a, b) -> value|None)
# ----------------------------------------------------------------------
def _leaf_strategies():
    return st.one_of(
        st.just(("a", lambda a, b: a)),
        st.just(("b", lambda a, b: b)),
        st.integers(-20, 20).map(
            lambda n: (str(n), lambda a, b, n=n: n)
        ),
    )


def _numeric_node(children):
    def combine(op_pair, left, right):
        op, fn = op_pair
        sql = f"({left[0]} {op} {right[0]})"

        def evaluate(a, b, left=left, right=right, fn=fn):
            x = left[1](a, b)
            y = right[1](a, b)
            if x is None or y is None:
                return None
            return fn(x, y)

        return (sql, evaluate)

    ops = st.sampled_from(
        [
            ("+", lambda x, y: x + y),
            ("-", lambda x, y: x - y),
            ("*", lambda x, y: x * y),
        ]
    )
    return st.builds(combine, ops, children, children)


numeric_expr = st.recursive(
    _leaf_strategies(), _numeric_node, max_leaves=6
)


def _comparison(children):
    def combine(op_pair, left, right):
        op, fn = op_pair
        sql = f"({left[0]} {op} {right[0]})"

        def evaluate(a, b, left=left, right=right, fn=fn):
            x = left[1](a, b)
            y = right[1](a, b)
            if x is None or y is None:
                return None
            return fn(x, y)

        return (sql, evaluate)

    ops = st.sampled_from(
        [
            ("=", lambda x, y: x == y),
            ("<>", lambda x, y: x != y),
            ("<", lambda x, y: x < y),
            ("<=", lambda x, y: x <= y),
            (">", lambda x, y: x > y),
            (">=", lambda x, y: x >= y),
        ]
    )
    return st.builds(combine, ops, children, children)


def _is_null(children):
    def build(operand, negated):
        suffix = "IS NOT NULL" if negated else "IS NULL"
        sql = f"({operand[0]} {suffix})"

        def evaluate(a, b, operand=operand, negated=negated):
            value = operand[1](a, b)
            return (value is not None) if negated else (value is None)

        return (sql, evaluate)

    return st.builds(build, children, st.booleans())


bool_leaf = st.one_of(
    _comparison(numeric_expr), _is_null(numeric_expr)
)


def _bool_node(children):
    def combine_and(left, right):
        sql = f"({left[0]} AND {right[0]})"

        def evaluate(a, b, left=left, right=right):
            x, y = left[1](a, b), right[1](a, b)
            if x is False or y is False:
                return False
            if x is None or y is None:
                return None
            return True

        return (sql, evaluate)

    def combine_or(left, right):
        sql = f"({left[0]} OR {right[0]})"

        def evaluate(a, b, left=left, right=right):
            x, y = left[1](a, b), right[1](a, b)
            if x is True or y is True:
                return True
            if x is None or y is None:
                return None
            return False

        return (sql, evaluate)

    def negate(operand):
        sql = f"(NOT {operand[0]})"

        def evaluate(a, b, operand=operand):
            value = operand[1](a, b)
            return None if value is None else not value

        return (sql, evaluate)

    return st.one_of(
        st.builds(combine_and, children, children),
        st.builds(combine_or, children, children),
        st.builds(negate, children),
    )


bool_expr = st.recursive(bool_leaf, _bool_node, max_leaves=6)


@settings(deadline=None, max_examples=120)
@given(numeric_expr)
def test_numeric_expressions_match_reference(fuzz_db, expr):
    sql, evaluate = expr
    got = fuzz_db.execute(
        f"SELECT id, {sql} AS v FROM t ORDER BY id"
    ).rows()
    for (row_id, value), (_, a, b) in zip(got, ROWS):
        assert value == evaluate(a, b), f"{sql} on a={a}, b={b}"


@settings(deadline=None, max_examples=120)
@given(bool_expr)
def test_where_predicates_match_reference(fuzz_db, expr):
    sql, evaluate = expr
    got = [r[0] for r in fuzz_db.execute(
        f"SELECT id FROM t WHERE {sql} ORDER BY id"
    ).rows()]
    expected = [
        row_id for row_id, a, b in ROWS if evaluate(a, b) is True
    ]
    assert got == expected, f"WHERE {sql}"


@settings(deadline=None, max_examples=60)
@given(bool_expr, bool_expr)
def test_case_expression_matches_reference(fuzz_db, cond1, cond2):
    sql = (
        f"CASE WHEN {cond1[0]} THEN 1 WHEN {cond2[0]} THEN 2 ELSE 3 END"
    )
    got = [r[0] for r in fuzz_db.execute(
        f"SELECT {sql} FROM t ORDER BY id"
    ).rows()]

    def reference(a, b):
        if cond1[1](a, b) is True:
            return 1
        if cond2[1](a, b) is True:
            return 2
        return 3

    assert got == [reference(a, b) for _, a, b in ROWS]


# ----------------------------------------------------------------------
# Differential durability fuzzing: WAL-backed engine vs in-memory twin
# ----------------------------------------------------------------------
class _TwinDriver:
    """Runs one random statement stream against a durable database and an
    in-memory twin, crash-reopening the durable one between statements and
    diffing the complete catalog + table state after every recovery."""

    TABLES = ["t0", "t1", "t2"]
    VIEWS = ["v0", "v1"]

    def __init__(self, path, seed: int):
        import random as _random

        self.path = path
        self.rng = _random.Random(seed)
        self.durable = Database.open(path, checkpoint_bytes=0)
        self.memory = Database()

    def statement(self) -> str:
        rng = self.rng
        table = rng.choice(self.TABLES)
        roll = rng.random()
        if roll < 0.10:
            clause = "IF NOT EXISTS " if rng.random() < 0.5 else ""
            return (
                f"CREATE TABLE {clause}{table} "
                "(k INT PRIMARY KEY, val INT, s TEXT)"
            )
        if roll < 0.14:
            clause = "IF EXISTS " if rng.random() < 0.5 else ""
            return f"DROP TABLE {clause}{table}"
        if roll < 0.44:
            k = rng.randrange(40)  # small key space: PK collisions happen
            return (
                f"INSERT INTO {table} VALUES "
                f"({k}, {rng.randrange(-50, 50)}, 's{k}')"
            )
        if roll < 0.58:
            return (
                f"UPDATE {table} SET val = val + {rng.randrange(1, 5)} "
                f"WHERE k < {rng.randrange(40)}"
            )
        if roll < 0.68:
            return f"DELETE FROM {table} WHERE k > {rng.randrange(40)}"
        if roll < 0.74:
            view = rng.choice(self.VIEWS)
            return (
                f"CREATE VIEW {view} AS SELECT k, val FROM {table} "
                f"WHERE val > 0"
            )
        if roll < 0.78:
            view = rng.choice(self.VIEWS)
            clause = "IF EXISTS " if rng.random() < 0.5 else ""
            return f"DROP VIEW {clause}{view}"
        if roll < 0.9:
            return f"SELECT k, val, s FROM {table} ORDER BY k"
        return f"SELECT COUNT(*), SUM(val) FROM {table}"

    def step(self) -> None:
        sql = self.statement()
        outcomes = []
        for db in (self.durable, self.memory):
            try:
                outcomes.append(("ok", db.execute(sql).rows()))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__))
        assert outcomes[0] == outcomes[1], (
            f"engines diverged on {sql!r}: "
            f"durable={outcomes[0]} memory={outcomes[1]}"
        )

    def crash_reopen(self) -> None:
        # No close(): exactly what an acknowledged-commit-only crash leaves.
        self.durable = Database.open(self.path, checkpoint_bytes=0)
        assert self.durable.audit.log.verify_chain()
        self.diff()

    def diff(self) -> None:
        durable, memory = self.durable, self.memory
        assert sorted(durable.catalog.table_names()) == sorted(
            memory.catalog.table_names()
        )
        assert sorted(durable.catalog.view_names()) == sorted(
            memory.catalog.view_names()
        )
        for name in memory.catalog.table_names():
            dt, mt = durable.catalog.table(name), memory.catalog.table(name)
            assert [
                (c.name, c.dtype) for c in dt.schema.columns
            ] == [(c.name, c.dtype) for c in mt.schema.columns]
            assert dt.version_count == mt.version_count, name
            d_rows = durable.execute(
                f"SELECT * FROM {name} ORDER BY k"
            ).rows()
            m_rows = memory.execute(
                f"SELECT * FROM {name} ORDER BY k"
            ).rows()
            assert d_rows == m_rows, name


@pytest.mark.parametrize(
    "seed", [int(s) for s in __import__("os").environ.get(
        "FLOCK_FUZZ_SEEDS", "11,23"
    ).split(",")]
)
def test_differential_wal_vs_memory(tmp_path, seed):
    """The durable engine is *observationally identical* to the in-memory
    one — same results, same errors — and stays identical through crash
    recovery and checkpoints."""
    driver = _TwinDriver(tmp_path / f"fuzz{seed}", seed)
    ops = int(__import__("os").environ.get("FLOCK_FUZZ_OPS", "150"))
    for i in range(1, ops + 1):
        driver.step()
        if i % 40 == 0:
            driver.durable.checkpoint()
        if i % 15 == 0:
            driver.crash_reopen()
    driver.diff()
    driver.durable.close()


# ----------------------------------------------------------------------
# Differential parallelism fuzzing: morsel-parallel engine vs serial twin
# ----------------------------------------------------------------------
class _ParallelTwinDriver:
    """Runs one random statement stream against a serial (workers=1) engine
    and a morsel-parallel twin (workers=4, tiny morsels so even this file's
    small tables split into many fragments), asserting every statement's
    result — including row order, float bit patterns and error type — is
    identical, and diffing complete catalog + table state periodically.

    This is the executable form of the parallel executor's determinism
    contract: parallel execution is an invisible implementation detail.
    """

    TABLES = ["t0", "t1", "t2"]

    def __init__(self, seed: int):
        import random as _random

        self.rng = _random.Random(seed)
        self.serial = Database(workers=1)
        self.parallel = Database(workers=4, morsel_rows=7, min_parallel_rows=1)

    def close(self) -> None:
        self.serial.close()
        self.parallel.close()

    def statement(self) -> str:
        rng = self.rng
        table = rng.choice(self.TABLES)
        roll = rng.random()
        if roll < 0.06:
            clause = "IF NOT EXISTS " if rng.random() < 0.5 else ""
            return (
                f"CREATE TABLE {clause}{table} "
                "(k INT PRIMARY KEY, val INT, f FLOAT, s TEXT)"
            )
        if roll < 0.08:
            clause = "IF EXISTS " if rng.random() < 0.5 else ""
            return f"DROP TABLE {clause}{table}"
        if roll < 0.30:
            rows = ", ".join(
                "({}, {}, {}, {})".format(
                    rng.randrange(200),
                    rng.randrange(-50, 50),
                    "NULL" if rng.random() < 0.2
                    else round(rng.uniform(-9, 9), 3),
                    "NULL" if rng.random() < 0.2
                    else f"'s{rng.randrange(6)}'",
                )
                for _ in range(rng.randrange(1, 25))
            )
            return f"INSERT INTO {table} VALUES {rows}"
        if roll < 0.38:
            return (
                f"UPDATE {table} SET val = val + {rng.randrange(1, 5)} "
                f"WHERE k < {rng.randrange(200)}"
            )
        if roll < 0.44:
            return f"DELETE FROM {table} WHERE k > {rng.randrange(200)}"
        # The read mix leans on every parallel code path: pipelines
        # (filter/project), partial aggregates (global and grouped, with
        # NULLs and DISTINCT), top-k, plain LIMIT pruning, the serial
        # operators (DISTINCT, sort-without-limit) fed by parallel children,
        # and the decorrelated/lifted constructs (CTEs, EXISTS, scalar
        # subqueries, window functions). Statements against dropped tables
        # must raise the identical error on both engines.
        other = rng.choice(self.TABLES)
        if roll < 0.47:
            return (
                f"SELECT k, val * 2 + 1, f FROM {table} "
                f"WHERE val > {rng.randrange(-50, 50)}"
            )
        if roll < 0.50:
            # Encoding-sensitive shapes: dictionary fast paths evaluate
            # these once per distinct value and gather through codes, so
            # morsel-parallel execution must agree with serial under
            # FLOCK_ENCODINGS=1 and =0 alike (CI runs both lanes).
            pick = rng.randrange(4)
            if pick == 0:
                return (
                    f"SELECT k, s FROM {table} "
                    f"WHERE s = 's{rng.randrange(7)}' ORDER BY k"
                )
            if pick == 1:
                items = ", ".join(
                    f"'s{rng.randrange(8)}'"
                    for _ in range(rng.randrange(1, 4))
                )
                return (
                    f"SELECT k FROM {table} WHERE s IN ({items}) ORDER BY k"
                )
            if pick == 2:
                return f"SELECT k FROM {table} WHERE s LIKE 's%' ORDER BY k"
            return (
                f"SELECT k FROM {table} WHERE s >= 's{rng.randrange(6)}' "
                "ORDER BY k"
            )
        if roll < 0.56:
            return (
                f"SELECT COUNT(*), COUNT(f), SUM(val), SUM(f), AVG(f), "
                f"MIN(k), MAX(f), STDDEV(f) FROM {table}"
            )
        if roll < 0.62:
            return (
                f"SELECT s, COUNT(*), SUM(f), AVG(val), COUNT(DISTINCT k) "
                f"FROM {table} GROUP BY s"
            )
        if roll < 0.67:
            # Top-k order keys alternate between float and (dictionary-
            # encodable) text leads: the bounded-heap path must reproduce
            # the full sort's tie order either way.
            key = rng.choice(["f DESC, k", "s, k DESC", "s DESC, val, k"])
            return (
                f"SELECT k, f FROM {table} ORDER BY {key} "
                f"LIMIT {rng.randrange(1, 12)} OFFSET {rng.randrange(4)}"
            )
        if roll < 0.71:
            return f"SELECT k, s FROM {table} LIMIT {rng.randrange(1, 30)}"
        if roll < 0.74:
            return f"SELECT DISTINCT s FROM {table}"
        if roll < 0.77:
            return f"SELECT k, f FROM {table} ORDER BY s, k"
        if roll < 0.80:
            return f"SELECT val / (k - {rng.randrange(200)}) FROM {table}"
        if roll < 0.84:
            # One CTE consumed from two FROM positions.
            return (
                f"WITH c AS (SELECT k, val FROM {table} "
                f"WHERE val > {rng.randrange(-50, 50)}) "
                "SELECT x.k, y.val FROM c x JOIN c y ON x.k = y.k "
                "ORDER BY x.k"
            )
        if roll < 0.88:
            negate = "NOT " if rng.random() < 0.5 else ""
            return (
                f"SELECT a.k, a.val FROM {table} a "
                f"WHERE {negate}EXISTS (SELECT * FROM {other} b "
                f"WHERE b.k = a.k AND b.val > {rng.randrange(-50, 50)}) "
                "ORDER BY a.k"
            )
        if roll < 0.92:
            return (
                f"SELECT a.k FROM {table} a "
                f"WHERE a.val < (SELECT SUM(b.val) FROM {other} b "
                "WHERE b.k = a.k) ORDER BY a.k"
            )
        if roll < 0.95:
            return (
                f"SELECT k, (SELECT COUNT(*) FROM {other}) FROM {table} "
                f"ORDER BY k LIMIT {rng.randrange(1, 20)}"
            )
        # Window reads: order keys include the unique k so every function
        # is deterministic regardless of sort stability.
        window = rng.choice(
            [
                "ROW_NUMBER() OVER (ORDER BY val, k)",
                "RANK() OVER (ORDER BY s)",
                "ROW_NUMBER() OVER (PARTITION BY s ORDER BY k)",
                "SUM(val) OVER (ORDER BY k)",
                "SUM(f) OVER (PARTITION BY s ORDER BY k)",
            ]
        )
        return f"SELECT k, {window} FROM {table} ORDER BY k"

    def step(self) -> None:
        sql = self.statement()
        outcomes = []
        for db in (self.serial, self.parallel):
            try:
                # repr() captures float bit patterns (0.0 vs -0.0, exact
                # mantissas) that == would blur — the contract is
                # bit-identical, not approximately-equal.
                outcomes.append(("ok", repr(db.execute(sql).rows())))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        assert outcomes[0] == outcomes[1], (
            f"parallel diverged from serial on {sql!r}: "
            f"serial={outcomes[0]} parallel={outcomes[1]}"
        )

    def diff(self) -> None:
        serial, parallel = self.serial, self.parallel
        assert sorted(serial.catalog.table_names()) == sorted(
            parallel.catalog.table_names()
        )
        for name in serial.catalog.table_names():
            s_rows = serial.execute(f"SELECT * FROM {name}").rows()
            p_rows = parallel.execute(f"SELECT * FROM {name}").rows()
            assert repr(s_rows) == repr(p_rows), name


@pytest.mark.parametrize(
    "seed", [int(s) for s in __import__("os").environ.get(
        "FLOCK_PARALLEL_FUZZ_SEEDS", "7,19"
    ).split(",")]
)
def test_differential_parallel_vs_serial(seed):
    """Morsel-parallel execution is observationally identical to serial:
    same rows in the same order with the same float bit patterns, and the
    same errors — on arbitrary statement streams."""
    driver = _ParallelTwinDriver(seed)
    try:
        ops = int(__import__("os").environ.get(
            "FLOCK_PARALLEL_FUZZ_OPS", "120"
        ))
        for i in range(1, ops + 1):
            driver.step()
            if i % 30 == 0:
                driver.diff()
        driver.diff()
    finally:
        driver.close()


# ----------------------------------------------------------------------
# Differential index fuzzing: indexed engine vs forced-full-scan twin
# ----------------------------------------------------------------------
class _IndexTwinDriver:
    """Runs one random statement stream against a *durable* engine with
    index access paths enabled and an in-memory twin with
    ``flock.indexes = 0`` (every query full-scans — the live differential
    oracle for the whole indexing layer).

    The stream mixes DML, index/table DDL and reads that exercise point
    lookups, IN-lists and zone-map range scans. The indexed engine is
    crash-reopened periodically (WAL replay must restore index
    definitions and the first post-recovery lookup rebuilds them) and
    reads are also fired from concurrent threads, which must all agree
    with the scan twin.
    """

    TABLES = ["t0", "t1"]
    INDEXES = ["i0", "i1"]

    def __init__(self, path, seed: int):
        import random as _random

        self.path = path
        self.rng = _random.Random(seed)
        self.indexed = Database.open(path, checkpoint_bytes=0)
        self.indexed.execute("SET flock.indexes = 1")
        self.scans = Database()
        self.scans.execute("SET flock.indexes = 0")

    def statement(self) -> str:
        rng = self.rng
        table = rng.choice(self.TABLES)
        roll = rng.random()
        if roll < 0.06:
            clause = "IF NOT EXISTS " if rng.random() < 0.5 else ""
            return (
                f"CREATE TABLE {clause}{table} "
                "(k INT PRIMARY KEY, val INT, s TEXT)"
            )
        if roll < 0.09:
            clause = "IF EXISTS " if rng.random() < 0.5 else ""
            return f"DROP TABLE {clause}{table}"
        if roll < 0.15:
            name = rng.choice(self.INDEXES)
            return f"CREATE INDEX {name} ON {table} (val)"
        if roll < 0.19:
            name = rng.choice(self.INDEXES)
            clause = "IF EXISTS " if rng.random() < 0.5 else ""
            return f"DROP INDEX {clause}{name}"
        if roll < 0.40:
            rows = ", ".join(
                "({}, {}, {})".format(
                    rng.randrange(120),
                    "NULL" if rng.random() < 0.15
                    else rng.randrange(-40, 40),
                    f"'s{rng.randrange(5)}'",
                )
                for _ in range(rng.randrange(1, 8))
            )
            return f"INSERT INTO {table} VALUES {rows}"
        if roll < 0.48:
            return (
                f"UPDATE {table} SET val = val + {rng.randrange(1, 4)} "
                f"WHERE k < {rng.randrange(120)}"
            )
        if roll < 0.54:
            return f"DELETE FROM {table} WHERE k > {rng.randrange(120)}"
        # Reads: point lookups, IN-lists (index paths) and range scans
        # (zone-map pruning) interleaved with plain aggregates.
        if roll < 0.68:
            return (
                f"SELECT k, val, s FROM {table} "
                f"WHERE k = {rng.randrange(130)}"
            )
        if roll < 0.78:
            keys = ", ".join(
                str(rng.randrange(130)) for _ in range(rng.randrange(1, 6))
            )
            return (
                f"SELECT k, val FROM {table} WHERE k IN ({keys}) "
                "ORDER BY k"
            )
        if roll < 0.86:
            return (
                f"SELECT k, s FROM {table} "
                f"WHERE val = {rng.randrange(-40, 40)} ORDER BY k"
            )
        if roll < 0.94:
            return (
                f"SELECT COUNT(*), SUM(val) FROM {table} "
                f"WHERE k >= {rng.randrange(120)}"
            )
        return f"SELECT k, val, s FROM {table} ORDER BY k"

    def step(self) -> None:
        sql = self.statement()
        outcomes = []
        for db in (self.indexed, self.scans):
            try:
                outcomes.append(("ok", repr(db.execute(sql).rows())))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__))
        assert outcomes[0] == outcomes[1], (
            f"index path diverged from scan path on {sql!r}: "
            f"indexed={outcomes[0]} scans={outcomes[1]}"
        )

    def concurrent_reads(self) -> None:
        """Fire the same read from several threads against the indexed
        engine; every result must equal the scan twin's."""
        rng = self.rng
        table = rng.choice(self.TABLES)
        sql = (
            f"SELECT k, val FROM {table} "
            f"WHERE k IN (1, {rng.randrange(120)}, 77) ORDER BY k"
        )
        try:
            expected = ("ok", repr(self.scans.execute(sql).rows()))
        except Exception as exc:
            expected = ("err", type(exc).__name__)
        results: list = []

        def reader() -> None:
            try:
                results.append(
                    ("ok", repr(self.indexed.execute(sql).rows()))
                )
            except Exception as exc:
                results.append(("err", type(exc).__name__))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r == expected for r in results), (
            f"concurrent indexed reads diverged on {sql!r}: "
            f"{results} != {expected}"
        )

    def crash_reopen(self) -> None:
        # No close(): recovery replays the WAL, which must restore index
        # definitions; the next lookup rebuilds their buckets.
        self.indexed = Database.open(self.path, checkpoint_bytes=0)
        self.indexed.execute("SET flock.indexes = 1")
        self.diff()

    def diff(self) -> None:
        indexed, scans = self.indexed, self.scans
        assert sorted(indexed.catalog.table_names()) == sorted(
            scans.catalog.table_names()
        )
        assert [d.name for d in indexed.catalog.index_defs()] == [
            d.name for d in scans.catalog.index_defs()
        ]
        for name in scans.catalog.table_names():
            i_rows = indexed.execute(
                f"SELECT * FROM {name} ORDER BY k"
            ).rows()
            s_rows = scans.execute(
                f"SELECT * FROM {name} ORDER BY k"
            ).rows()
            assert repr(i_rows) == repr(s_rows), name
            # A point lookup through the (possibly just-rebuilt) index.
            probe = f"SELECT val FROM {name} WHERE k = 7"
            assert repr(indexed.execute(probe).rows()) == repr(
                scans.execute(probe).rows()
            ), name


@pytest.mark.parametrize(
    "seed", [int(s) for s in os.environ.get(
        "FLOCK_INDEX_FUZZ_SEEDS", "3,17,31,43"
    ).split(",")]
)
def test_differential_indexed_vs_scan(tmp_path, seed):
    """Index access paths are observationally invisible: identical rows,
    order and errors as the forced-full-scan twin, through index DDL,
    concurrent reads, crashes and WAL-replay index rebuilds. Four seeds x
    60 ops = 240 differential rounds per run."""
    driver = _IndexTwinDriver(tmp_path / f"ifuzz{seed}", seed)
    ops = int(os.environ.get("FLOCK_INDEX_FUZZ_OPS", "60"))
    for i in range(1, ops + 1):
        driver.step()
        if i % 12 == 0:
            driver.concurrent_reads()
        if i % 25 == 0:
            driver.indexed.checkpoint()
        if i % 20 == 0:
            driver.crash_reopen()
    driver.diff()
    driver.indexed.close()


@settings(deadline=None, max_examples=60)
@given(numeric_expr)
def test_optimizer_equivalence_under_fuzz(fuzz_db, expr):
    """Optimizations never change results, on arbitrary expressions."""
    from flock.db.optimizer.rules import Optimizer

    sql = f"SELECT id, {expr[0]} AS v FROM t WHERE {expr[0]} IS NOT NULL"
    optimized = fuzz_db.execute(sql).rows()
    saved = fuzz_db.optimizer
    try:
        fuzz_db.optimizer = Optimizer(
            enable_predicate_pushdown=False,
            enable_projection_pruning=False,
            enable_join_rules=False,
        )
        naive = fuzz_db.execute(sql).rows()
    finally:
        fuzz_db.optimizer = saved
    assert sorted(optimized) == sorted(naive)


class _EncodingTwinDriver:
    """Runs one random statement stream against a *durable* engine with
    compressed column encodings — and, part of the time, a deliberately
    tiny memory budget so hash aggregates and joins spill — and an
    in-memory twin pinned to plain storage (the live differential oracle
    for the whole encoding + spill layer).

    The stream keeps TEXT cardinality low (dictionary territory), mixes
    string-filtered DML with the late-decode read shapes (equality, IN,
    LIKE and range predicates on text, GROUP BY text, ORDER BY text +
    LIMIT, date ranges, equi-joins) and periodically checkpoints and
    crash-reopens the encoded engine: encoded head versions must survive
    WAL replay and checkpoint reload bit-identically.
    """

    TABLES = ["e0", "e1"]
    CATS = [f"cat_{i}" for i in range(6)]
    DATES = [f"2026-0{m}-05" for m in range(1, 10)]

    def __init__(self, path, seed: int):
        import random as _random

        self.path = path
        self.rng = _random.Random(seed)
        self.encoded = Database.open(path, checkpoint_bytes=0, encodings=True)
        self.plain = Database(encodings=False)
        self.budgeted = False

    def toggle_budget(self) -> None:
        """Flip the encoded engine between unbounded and a budget small
        enough that multi-column aggregates and joins must spill; the
        plain twin never spills, so results must not depend on it."""
        self.budgeted = not self.budgeted
        self.encoded.execute(
            f"SET flock.memory_budget = {3000 if self.budgeted else 0}"
        )

    def statement(self) -> str:
        rng = self.rng
        table = rng.choice(self.TABLES)
        cat = rng.choice(self.CATS)
        roll = rng.random()
        if roll < 0.05:
            clause = "IF NOT EXISTS " if rng.random() < 0.5 else ""
            return (
                f"CREATE TABLE {clause}{table} (k INT PRIMARY KEY, "
                "cat TEXT, qty INT, price FLOAT, d DATE)"
            )
        if roll < 0.07:
            clause = "IF EXISTS " if rng.random() < 0.5 else ""
            return f"DROP TABLE {clause}{table}"
        if roll < 0.30:
            rows = ", ".join(
                "({}, {}, {}, {}, {})".format(
                    rng.randrange(400),
                    "NULL" if rng.random() < 0.15 else f"'{rng.choice(self.CATS)}'",
                    rng.randrange(60),
                    "NULL" if rng.random() < 0.2
                    else round(rng.uniform(0, 99), 2),
                    f"'{rng.choice(self.DATES)}'",
                )
                for _ in range(rng.randrange(1, 20))
            )
            return f"INSERT INTO {table} VALUES {rows}"
        if roll < 0.36:
            # String-filtered DML: the write path consumes a late-decoded
            # dictionary predicate, then re-encodes the staged version.
            return (
                f"UPDATE {table} SET qty = qty + {rng.randrange(1, 4)} "
                f"WHERE cat = '{cat}'"
            )
        if roll < 0.40:
            return f"DELETE FROM {table} WHERE k > {rng.randrange(400)}"
        other = "e1" if table == "e0" else "e0"
        if roll < 0.48:
            return (
                f"SELECT k, cat, qty FROM {table} WHERE cat = '{cat}' "
                "ORDER BY k"
            )
        if roll < 0.54:
            items = ", ".join(
                f"'{rng.choice(self.CATS)}'" for _ in range(rng.randrange(1, 4))
            )
            return f"SELECT k, qty FROM {table} WHERE cat IN ({items}) ORDER BY k"
        if roll < 0.58:
            pattern = rng.choice(["cat!_%", "%!_3", "c%5"]).replace("!_", "\\_")
            return (
                f"SELECT k FROM {table} WHERE cat LIKE '{pattern}' ORDER BY k"
            )
        if roll < 0.62:
            op = rng.choice([">=", "<", ">"])
            return (
                f"SELECT k FROM {table} WHERE cat {op} '{cat}' ORDER BY k"
            )
        if roll < 0.70:
            return (
                f"SELECT cat, COUNT(*), SUM(qty), AVG(price), "
                f"COUNT(DISTINCT qty) FROM {table} GROUP BY cat ORDER BY cat"
            )
        if roll < 0.76:
            # Wide grouped aggregate: the shape the memory budget forces
            # through partitioned spill files.
            return (
                f"SELECT cat, qty, COUNT(*), SUM(price), MIN(k) "
                f"FROM {table} GROUP BY cat, qty ORDER BY cat, qty"
            )
        if roll < 0.82:
            join = rng.choice(["JOIN", "LEFT JOIN"])
            return (
                f"SELECT a.k, a.cat, b.k FROM {table} a {join} {other} b "
                f"ON a.qty = b.qty WHERE a.k < {rng.randrange(100, 400)} "
                "ORDER BY a.k, b.k LIMIT 60"
            )
        if roll < 0.90:
            return (
                f"SELECT k, cat, qty FROM {table} "
                f"ORDER BY cat{' DESC' if rng.random() < 0.5 else ''}, k "
                f"LIMIT {rng.randrange(1, 15)} OFFSET {rng.randrange(4)}"
            )
        if roll < 0.95:
            return (
                f"SELECT d, COUNT(*) FROM {table} "
                f"WHERE d >= '{rng.choice(self.DATES)}' GROUP BY d ORDER BY d"
            )
        return f"SELECT * FROM {table} ORDER BY k"

    def step(self) -> None:
        sql = self.statement()
        outcomes = []
        for db in (self.encoded, self.plain):
            try:
                outcomes.append(("ok", repr(db.execute(sql).rows())))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__))
        assert outcomes[0] == outcomes[1], (
            f"encoded engine diverged from plain on {sql!r} "
            f"(budgeted={self.budgeted}): "
            f"encoded={outcomes[0]} plain={outcomes[1]}"
        )

    def crash_reopen(self) -> None:
        # No close(): recovery replays the WAL and the loader re-encodes
        # the recovered head versions.
        self.encoded = Database.open(
            self.path, checkpoint_bytes=0, encodings=True
        )
        if self.budgeted:
            self.encoded.execute("SET flock.memory_budget = 3000")
        self.diff()

    def diff(self) -> None:
        encoded, plain = self.encoded, self.plain
        assert sorted(encoded.catalog.table_names()) == sorted(
            plain.catalog.table_names()
        )
        for name in plain.catalog.table_names():
            e_rows = encoded.execute(f"SELECT * FROM {name} ORDER BY k").rows()
            p_rows = plain.execute(f"SELECT * FROM {name} ORDER BY k").rows()
            assert repr(e_rows) == repr(p_rows), name


@pytest.mark.parametrize(
    "seed", [int(s) for s in os.environ.get(
        "FLOCK_ENCODING_FUZZ_SEEDS", "5,29"
    ).split(",")]
)
def test_differential_encoded_vs_plain(tmp_path, seed):
    """Compressed encodings, late-decode fast paths and memory-budgeted
    spill are observationally invisible: identical rows, order and errors
    as the plain-storage twin, through DML churn, budget flips,
    checkpoints and WAL-replay crash recovery. Two seeds x 120 ops = 240
    differential rounds per run; CI's encoded-oracle lane raises both."""
    driver = _EncodingTwinDriver(tmp_path / f"efuzz{seed}", seed)
    ops = int(os.environ.get("FLOCK_ENCODING_FUZZ_OPS", "120"))
    for i in range(1, ops + 1):
        driver.step()
        if i % 15 == 0:
            driver.toggle_budget()
        if i % 30 == 0:
            driver.encoded.checkpoint()
        if i % 40 == 0:
            driver.crash_reopen()
    driver.diff()
    driver.encoded.close()
    driver.plain.close()
