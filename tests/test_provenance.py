"""Provenance tests: data model, catalog, SQL capture, compression."""

import pytest

from flock.db import Database
from flock.errors import ProvenanceError
from flock.provenance import (
    ProvenanceCatalog,
    SQLProvenanceCapture,
    compress_provenance,
)
from flock.provenance.model import (
    Entity,
    EntityType,
    ProvenanceEdge,
    ProvenanceGraph,
    Relation,
)


class TestProvenanceGraph:
    def _graph(self):
        g = ProvenanceGraph()
        table = g.add_entity(Entity("t1", EntityType.TABLE, "emp"))
        column = g.add_entity(Entity("c1", EntityType.COLUMN, "emp.salary"))
        model = g.add_entity(Entity("m1", EntityType.MODEL, "pay_model"))
        g.add_edge(ProvenanceEdge("t1", "c1", Relation.CONTAINS))
        g.add_edge(ProvenanceEdge("m1", "c1", Relation.TRAINED_ON))
        return g

    def test_size_is_nodes_plus_edges(self):
        g = self._graph()
        assert g.node_count == 3
        assert g.edge_count == 2
        assert g.size == 5

    def test_duplicate_entity_rejected(self):
        g = self._graph()
        with pytest.raises(ProvenanceError):
            g.add_entity(Entity("t1", EntityType.TABLE, "emp"))

    def test_dangling_edge_rejected(self):
        g = self._graph()
        with pytest.raises(ProvenanceError):
            g.add_edge(ProvenanceEdge("t1", "ghost", Relation.READS))

    def test_upstream_lineage(self):
        g = self._graph()
        names = {e.name for e in g.lineage("m1", "upstream")}
        assert names == {"emp.salary"}

    def test_downstream_impact(self):
        g = self._graph()
        impacted = {e.name for e in g.impacted_by("c1")}
        assert "pay_model" in impacted

    def test_max_depth(self):
        g = self._graph()
        assert g.lineage("t1", "downstream", max_depth=0) == []

    def test_edge_filters(self):
        g = self._graph()
        assert len(g.edges(relation=Relation.CONTAINS)) == 1
        assert len(g.edges(src_id="m1")) == 1
        assert len(g.edges(dst_id="c1")) == 2


class TestCatalog:
    def test_register_is_idempotent(self):
        cat = ProvenanceCatalog()
        a = cat.register(EntityType.TABLE, "emp")
        b = cat.register(EntityType.TABLE, "EMP")
        assert a.entity_id == b.entity_id

    def test_new_version_chains(self):
        cat = ProvenanceCatalog()
        v1 = cat.register(EntityType.TABLE_VERSION, "emp", new_version=True)
        v2 = cat.register(EntityType.TABLE_VERSION, "emp", new_version=True)
        assert (v1.version, v2.version) == (1, 2)
        assert cat.find(EntityType.TABLE_VERSION, "emp").version == 2
        assert len(cat.versions_of(EntityType.TABLE_VERSION, "emp")) == 2
        # PRECEDES edge between versions.
        edges = cat.graph.edges(relation=Relation.PRECEDES)
        assert len(edges) == 1

    def test_search_by_type(self):
        cat = ProvenanceCatalog()
        cat.register(EntityType.MODEL, "m1")
        cat.register(EntityType.TABLE, "t1")
        assert len(cat.search(EntityType.MODEL)) == 1

    def test_cross_system_model_column_query(self):
        cat = ProvenanceCatalog()
        table = cat.register(EntityType.TABLE, "loans")
        column = cat.register(EntityType.COLUMN, "loans.income")
        cat.link(table, column, Relation.CONTAINS)
        model = cat.register(EntityType.MODEL, "loan_model")
        cat.link(model, column, Relation.TRAINED_ON)
        hits = cat.models_depending_on_column("loans", "income")
        assert [e.name for e in hits] == ["loan_model"]
        assert cat.models_depending_on_column("loans", "nothing") == []


class TestSQLCapture:
    def test_select_tables_and_columns(self):
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat)
        result = cap.capture_query(
            "SELECT a.x, b.y FROM t1 a JOIN t2 b ON a.k = b.k WHERE a.z > 1"
        )
        assert sorted(result.input_tables) == ["t1", "t2"]
        assert set(result.input_columns) == {
            "t1.x", "t2.y", "t1.k", "t2.k", "t1.z",
        }

    def test_unqualified_columns_resolved_with_schema(self):
        db = Database()
        db.execute("CREATE TABLE t1 (x INT)")
        db.execute("CREATE TABLE t2 (y INT)")
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat, database=db)
        result = cap.capture_query(
            "SELECT x, y FROM t1 JOIN t2 ON x = y"
        )
        assert set(result.input_columns) == {"t1.x", "t2.y"}

    def test_writes_create_versions(self):
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat)
        cap.capture_query("INSERT INTO t VALUES (1)")
        cap.capture_query("INSERT INTO t VALUES (2)")
        cap.capture_query("UPDATE t SET a = 1")
        versions = cat.versions_of(EntityType.TABLE_VERSION, "t")
        assert [v.version for v in versions] == [1, 2, 3]

    def test_insert_select_reads_and_writes(self):
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat)
        result = cap.capture_query("INSERT INTO dst SELECT a FROM src")
        assert result.output_tables == ["dst"]
        assert "src" in result.input_tables

    def test_create_table_registers_columns(self):
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat)
        cap.capture_query("CREATE TABLE t (a INT, b TEXT)")
        assert cat.find(EntityType.COLUMN, "t.a") is not None
        assert cat.find(EntityType.COLUMN, "t.b") is not None

    def test_subquery_tables_captured(self):
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat)
        result = cap.capture_query(
            "SELECT s.n FROM (SELECT COUNT(*) AS n FROM inner_t) s"
        )
        assert "inner_t" in result.input_tables

    def test_capture_many_skips_unparseable(self):
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat)
        summary = cap.capture_many(
            ["SELECT a FROM t", "THIS IS NOT SQL", "SELECT b FROM t"]
        )
        assert summary.query_count == 2
        assert summary.graph_size == cat.size

    def test_lazy_capture_from_engine_log(self, emp_db):
        emp_db.execute("SELECT name FROM emp WHERE salary > 80")
        emp_db.execute("DELETE FROM emp WHERE id = 5")
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat, database=emp_db)
        summary = cap.capture_log(emp_db.query_log)
        assert summary.query_count >= 2
        assert cat.find(EntityType.TABLE, "emp") is not None
        assert cat.versions_of(EntityType.TABLE_VERSION, "emp")

    def test_lazy_skips_failed_statements(self, emp_db):
        from flock.errors import BindError

        with pytest.raises(BindError):
            emp_db.execute("SELECT nope FROM emp")
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat, database=emp_db)
        count_before_failures = sum(
            1 for e in emp_db.query_log if e.success
        )
        summary = cap.capture_log(emp_db.query_log)
        assert summary.query_count == count_before_failures


class TestCompression:
    def _versioned_catalog(self, writes=10):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT, c INT)")
        cat = ProvenanceCatalog()
        cap = SQLProvenanceCapture(cat, database=db)
        for i in range(writes):
            cap.capture_query(f"INSERT INTO t VALUES ({i}, {i}, {i})")
        return cat

    def test_version_chains_collapse(self):
        cat = self._versioned_catalog(12)
        compressed, report = compress_provenance(cat.graph)
        assert report.size_after < report.size_before
        assert report.ratio < 1.0
        # Exactly one TABLE_VERSION entity remains, carrying the count.
        versions = compressed.entities(EntityType.TABLE_VERSION)
        assert len(versions) == 1
        assert versions[0].properties["collapsed_versions"] == 12

    def test_short_chains_untouched(self):
        cat = self._versioned_catalog(2)
        compressed, report = compress_provenance(cat.graph)
        assert len(compressed.entities(EntityType.TABLE_VERSION)) == 2

    def test_edge_dedup_with_multiplicity(self):
        g = ProvenanceGraph()
        g.add_entity(Entity("a", EntityType.QUERY, "q"))
        g.add_entity(Entity("b", EntityType.TABLE, "t"))
        for _ in range(5):
            g.add_edge(ProvenanceEdge("a", "b", Relation.READS))
        compressed, report = compress_provenance(g)
        assert compressed.edge_count == 1
        edge = compressed.edges()[0]
        assert edge.properties["multiplicity"] == 5

    def test_lineage_preserved_through_compression(self):
        cat = self._versioned_catalog(8)
        compressed, _ = compress_provenance(cat.graph)
        table = None
        for entity in compressed.entities(EntityType.TABLE):
            if entity.name == "t":
                table = entity
        assert table is not None
        # Queries still reach the table.
        impacted = compressed.impacted_by(table.entity_id)
        assert any(e.entity_type is EntityType.QUERY for e in impacted)
