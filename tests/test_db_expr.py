"""Unit + property tests for bound expression evaluation (incl. SQL 3VL)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from flock.db.expr import (
    BoundBinary,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundUnary,
    truthy_mask,
)
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.errors import ExecutionError


def _batch(**columns) -> Batch:
    names = list(columns)
    vectors = []
    for name in names:
        dtype, values = columns[name]
        vectors.append(ColumnVector.from_values(dtype, values))
    return Batch(names, vectors)


def col(index: int, dtype: DataType) -> BoundColumn:
    return BoundColumn(index, dtype, f"c{index}")


class TestArithmetic:
    def test_add_with_null_propagation(self):
        batch = _batch(a=(DataType.INTEGER, [1, None, 3]))
        expr = BoundBinary(
            "+", col(0, DataType.INTEGER), BoundLiteral(DataType.INTEGER, 10),
            DataType.INTEGER,
        )
        assert expr.evaluate(batch).to_pylist() == [11, None, 13]

    def test_division_promotes_to_float(self):
        batch = _batch(a=(DataType.INTEGER, [7]))
        expr = BoundBinary(
            "/", col(0, DataType.INTEGER), BoundLiteral(DataType.INTEGER, 2),
            DataType.FLOAT,
        )
        assert expr.evaluate(batch).to_pylist() == [3.5]

    def test_division_by_zero_raises(self):
        batch = _batch(a=(DataType.INTEGER, [1]))
        expr = BoundBinary(
            "/", col(0, DataType.INTEGER), BoundLiteral(DataType.INTEGER, 0),
            DataType.FLOAT,
        )
        with pytest.raises(ExecutionError, match="division by zero"):
            expr.evaluate(batch)

    def test_division_by_zero_masked_by_null(self):
        # NULL / 0 is NULL, not an error.
        batch = _batch(a=(DataType.INTEGER, [None]))
        expr = BoundBinary(
            "/", col(0, DataType.INTEGER), BoundLiteral(DataType.INTEGER, 0),
            DataType.FLOAT,
        )
        assert expr.evaluate(batch).to_pylist() == [None]

    def test_modulo(self):
        batch = _batch(a=(DataType.INTEGER, [7, 9]))
        expr = BoundBinary(
            "%", col(0, DataType.INTEGER), BoundLiteral(DataType.INTEGER, 4),
            DataType.INTEGER,
        )
        assert expr.evaluate(batch).to_pylist() == [3, 1]

    def test_unary_minus(self):
        batch = _batch(a=(DataType.FLOAT, [1.5, None]))
        expr = BoundUnary("-", col(0, DataType.FLOAT))
        assert expr.evaluate(batch).to_pylist() == [-1.5, None]

    def test_concat_operator(self):
        batch = _batch(a=(DataType.TEXT, ["x", None]))
        expr = BoundBinary(
            "||", col(0, DataType.TEXT), BoundLiteral(DataType.TEXT, "!"),
            DataType.TEXT,
        )
        assert expr.evaluate(batch).to_pylist() == ["x!", None]


class TestComparisons:
    def test_numeric_comparison_mixed_types(self):
        batch = _batch(a=(DataType.INTEGER, [1, 2, 3]))
        expr = BoundBinary(
            "<", col(0, DataType.INTEGER), BoundLiteral(DataType.FLOAT, 2.5),
            DataType.BOOLEAN,
        )
        assert expr.evaluate(batch).to_pylist() == [True, True, False]

    def test_text_comparison(self):
        batch = _batch(a=(DataType.TEXT, ["apple", "pear", None]))
        expr = BoundBinary(
            "=", col(0, DataType.TEXT), BoundLiteral(DataType.TEXT, "pear"),
            DataType.BOOLEAN,
        )
        assert expr.evaluate(batch).to_pylist() == [False, True, None]


class TestKleeneLogic:
    def _bool_col(self, values):
        return _batch(a=(DataType.BOOLEAN, values))

    def test_and_false_dominates_null(self):
        batch = _batch(
            a=(DataType.BOOLEAN, [False, True, None]),
            b=(DataType.BOOLEAN, [None, None, None]),
        )
        expr = BoundBinary(
            "AND", col(0, DataType.BOOLEAN), col(1, DataType.BOOLEAN),
            DataType.BOOLEAN,
        )
        assert expr.evaluate(batch).to_pylist() == [False, None, None]

    def test_or_true_dominates_null(self):
        batch = _batch(
            a=(DataType.BOOLEAN, [True, False, None]),
            b=(DataType.BOOLEAN, [None, None, None]),
        )
        expr = BoundBinary(
            "OR", col(0, DataType.BOOLEAN), col(1, DataType.BOOLEAN),
            DataType.BOOLEAN,
        )
        assert expr.evaluate(batch).to_pylist() == [True, None, None]

    def test_not_propagates_null(self):
        batch = self._bool_col([True, False, None])
        expr = BoundUnary("NOT", col(0, DataType.BOOLEAN))
        assert expr.evaluate(batch).to_pylist() == [False, True, None]

    def test_truthy_mask_treats_null_as_false(self):
        vec = ColumnVector.from_values(DataType.BOOLEAN, [True, None, False])
        assert truthy_mask(vec).tolist() == [True, False, False]


_TRI = st.sampled_from([True, False, None])


@given(st.lists(st.tuples(_TRI, _TRI), min_size=1, max_size=30))
def test_kleene_and_or_property(pairs):
    """Vectorized AND/OR match the Kleene truth tables element-wise."""
    a_values = [p[0] for p in pairs]
    b_values = [p[1] for p in pairs]
    batch = _batch(
        a=(DataType.BOOLEAN, a_values), b=(DataType.BOOLEAN, b_values)
    )
    and_expr = BoundBinary(
        "AND", col(0, DataType.BOOLEAN), col(1, DataType.BOOLEAN),
        DataType.BOOLEAN,
    )
    or_expr = BoundBinary(
        "OR", col(0, DataType.BOOLEAN), col(1, DataType.BOOLEAN),
        DataType.BOOLEAN,
    )

    def kleene_and(x, y):
        if x is False or y is False:
            return False
        if x is None or y is None:
            return None
        return True

    def kleene_or(x, y):
        if x is True or y is True:
            return True
        if x is None or y is None:
            return None
        return False

    assert and_expr.evaluate(batch).to_pylist() == [
        kleene_and(x, y) for x, y in pairs
    ]
    assert or_expr.evaluate(batch).to_pylist() == [
        kleene_or(x, y) for x, y in pairs
    ]


class TestPredicates:
    def test_is_null(self):
        batch = _batch(a=(DataType.INTEGER, [1, None]))
        assert BoundIsNull(col(0, DataType.INTEGER), False).evaluate(
            batch
        ).to_pylist() == [False, True]
        assert BoundIsNull(col(0, DataType.INTEGER), True).evaluate(
            batch
        ).to_pylist() == [True, False]

    def test_in_list_numeric_and_text(self):
        batch = _batch(a=(DataType.INTEGER, [1, 2, None]))
        expr = BoundInList(col(0, DataType.INTEGER), [1, 3], False)
        assert expr.evaluate(batch).to_pylist() == [True, False, None]
        batch_t = _batch(a=(DataType.TEXT, ["x", "y"]))
        expr_t = BoundInList(col(0, DataType.TEXT), ["y"], True)
        assert expr_t.evaluate(batch_t).to_pylist() == [True, False]

    def test_like(self):
        batch = _batch(a=(DataType.TEXT, ["promo box", "standard", None]))
        expr = BoundLike(col(0, DataType.TEXT), "promo%", False)
        assert expr.evaluate(batch).to_pylist() == [True, False, None]

    def test_like_underscore_and_anchoring(self):
        batch = _batch(a=(DataType.TEXT, ["cat", "cart", "scat"]))
        expr = BoundLike(col(0, DataType.TEXT), "c_t", False)
        assert expr.evaluate(batch).to_pylist() == [True, False, False]


class TestCaseAndCast:
    def test_case_first_match_wins(self):
        batch = _batch(a=(DataType.INTEGER, [1, 5, 20]))
        branches = [
            (
                BoundBinary(
                    "<", col(0, DataType.INTEGER),
                    BoundLiteral(DataType.INTEGER, 3), DataType.BOOLEAN,
                ),
                BoundLiteral(DataType.TEXT, "small"),
            ),
            (
                BoundBinary(
                    "<", col(0, DataType.INTEGER),
                    BoundLiteral(DataType.INTEGER, 10), DataType.BOOLEAN,
                ),
                BoundLiteral(DataType.TEXT, "medium"),
            ),
        ]
        expr = BoundCase(branches, BoundLiteral(DataType.TEXT, "large"),
                         DataType.TEXT)
        assert expr.evaluate(batch).to_pylist() == ["small", "medium", "large"]

    def test_case_without_default_yields_null(self):
        batch = _batch(a=(DataType.INTEGER, [100]))
        branches = [
            (
                BoundBinary(
                    "<", col(0, DataType.INTEGER),
                    BoundLiteral(DataType.INTEGER, 3), DataType.BOOLEAN,
                ),
                BoundLiteral(DataType.INTEGER, 1),
            )
        ]
        expr = BoundCase(branches, None, DataType.INTEGER)
        assert expr.evaluate(batch).to_pylist() == [None]

    def test_cast_int_to_text_and_back(self):
        batch = _batch(a=(DataType.INTEGER, [42, None]))
        as_text = BoundCast(col(0, DataType.INTEGER), DataType.TEXT)
        assert as_text.evaluate(batch).to_pylist() == ["42", None]
        batch_t = _batch(a=(DataType.TEXT, ["17"]))
        as_int = BoundCast(col(0, DataType.TEXT), DataType.INTEGER)
        assert as_int.evaluate(batch_t).to_pylist() == [17]

    def test_cast_invalid_text_raises(self):
        batch = _batch(a=(DataType.TEXT, ["nope"]))
        with pytest.raises(ExecutionError):
            BoundCast(col(0, DataType.TEXT), DataType.FLOAT).evaluate(batch)

    def test_cast_text_to_date(self):
        batch = _batch(a=(DataType.TEXT, ["2020-06-15"]))
        out = BoundCast(col(0, DataType.TEXT), DataType.DATE).evaluate(batch)
        assert out.to_pylist()[0].isoformat() == "2020-06-15"


class TestColumnTracking:
    def test_referenced_columns(self):
        expr = BoundBinary(
            "+",
            col(2, DataType.INTEGER),
            BoundBinary(
                "*", col(5, DataType.INTEGER), col(2, DataType.INTEGER),
                DataType.INTEGER,
            ),
            DataType.INTEGER,
        )
        assert expr.referenced_columns() == {2, 5}

    def test_rewrite_columns(self):
        expr = BoundBinary(
            "+", col(1, DataType.INTEGER), col(3, DataType.INTEGER),
            DataType.INTEGER,
        )
        rewritten = expr.rewrite_columns({1: 0, 3: 1})
        assert rewritten.referenced_columns() == {0, 1}
        # Original untouched.
        assert expr.referenced_columns() == {1, 3}

    def test_rewrite_handles_shared_subtrees(self):
        shared = col(2, DataType.INTEGER)
        expr = BoundBinary("+", shared, shared, DataType.INTEGER)
        rewritten = expr.rewrite_columns({2: 0})
        assert rewritten.referenced_columns() == {0}
