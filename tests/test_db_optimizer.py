"""Optimizer tests: rewrites preserve semantics and improve plans."""

import pytest

from flock.db import Database
from flock.db.optimizer.cost import (
    CostModel,
    estimate_rows,
    predicate_selectivity,
)
from flock.db.optimizer.rules import Optimizer
from flock.db.plan import FilterNode, JoinNode, ProjectNode, ScanNode
from flock.db.sql.parser import parse_statement
from flock.db.binder import Binder


def _optimized_plan(db, sql, **flags):
    optimizer = Optimizer(**flags)
    plan = Binder(db).bind_select(parse_statement(sql))
    return optimizer.optimize(plan, db)


@pytest.fixture
def rich_db(db):
    db.execute(
        "CREATE TABLE big (id INT, k INT, payload TEXT, extra1 TEXT, "
        "extra2 FLOAT)"
    )
    db.execute("CREATE TABLE small (k INT, label TEXT)")
    rows = ", ".join(
        f"({i}, {i % 10}, 'p{i}', 'x', {float(i)})" for i in range(200)
    )
    db.execute(f"INSERT INTO big VALUES {rows}")
    db.execute(
        "INSERT INTO small VALUES (1, 'one'), (2, 'two'), (3, 'three')"
    )
    return db


class TestPredicatePushdown:
    def test_filter_moves_below_project(self, rich_db):
        plan = _optimized_plan(
            rich_db, "SELECT id * 2 AS d FROM big WHERE id < 5"
        )
        # The filter must sit below the projection, directly over the scan.
        assert isinstance(plan, ProjectNode)
        assert isinstance(plan.child, FilterNode)
        assert isinstance(plan.child.child, ScanNode)

    def test_filter_splits_across_join(self, rich_db):
        plan = _optimized_plan(
            rich_db,
            "SELECT b.id FROM big b JOIN small s ON b.k = s.k "
            "WHERE b.id < 10 AND s.label = 'one'",
        )
        joins = [n for n in plan.walk() if isinstance(n, JoinNode)]
        assert len(joins) == 1
        join = joins[0]
        # Both sides gained a filter below the join.
        assert any(isinstance(n, FilterNode) for n in join.left.walk())
        assert any(isinstance(n, FilterNode) for n in join.right.walk())

    def test_cross_join_becomes_inner(self, rich_db):
        plan = _optimized_plan(
            rich_db,
            "SELECT b.id FROM big b, small s WHERE b.k = s.k",
        )
        joins = [n for n in plan.walk() if isinstance(n, JoinNode)]
        assert joins and all(j.join_type == "INNER" for j in joins)
        assert all(j.condition is not None for j in joins)

    def test_pushdown_does_not_cross_limit(self, rich_db):
        plan = _optimized_plan(
            rich_db,
            "SELECT d FROM (SELECT id AS d FROM big LIMIT 5) t WHERE d > 2",
        )
        # Filter must remain above the Limit (semantics!).
        from flock.db.plan import LimitNode

        def find_filter_below_limit(node):
            if isinstance(node, LimitNode):
                return any(
                    isinstance(n, FilterNode) for n in node.walk()
                    if n is not node
                )
            return any(
                find_filter_below_limit(c) for c in node.children()
            )

        assert not find_filter_below_limit(plan)

    def test_disabled_pushdown_keeps_plan_correct(self, rich_db):
        sql = "SELECT id FROM big WHERE id < 5 ORDER BY id"
        on = rich_db.execute(sql).rows()
        rich_db.optimizer = Optimizer(
            enable_predicate_pushdown=False,
            enable_projection_pruning=False,
            enable_join_rules=False,
        )
        off = rich_db.execute(sql).rows()
        assert on == off


class TestProjectionPruning:
    def test_scan_narrowed_to_used_columns(self, rich_db):
        plan = _optimized_plan(rich_db, "SELECT id FROM big WHERE k = 1")
        scans = [n for n in plan.walk() if isinstance(n, ScanNode)]
        assert len(scans) == 1
        names = [f.name for f in scans[0].fields]
        assert set(names) == {"id", "k"}  # payload/extras pruned

    def test_star_keeps_all(self, rich_db):
        plan = _optimized_plan(rich_db, "SELECT * FROM big")
        scans = [n for n in plan.walk() if isinstance(n, ScanNode)]
        assert len(scans[0].fields) == 5

    def test_aggregate_prunes_unused_inputs(self, rich_db):
        plan = _optimized_plan(
            rich_db, "SELECT k, COUNT(*) FROM big GROUP BY k"
        )
        scans = [n for n in plan.walk() if isinstance(n, ScanNode)]
        assert [f.name for f in scans[0].fields] == ["k"]

    def test_pruned_and_unpruned_agree(self, rich_db):
        sql = (
            "SELECT b.id, s.label FROM big b JOIN small s ON b.k = s.k "
            "WHERE b.id < 30 ORDER BY b.id"
        )
        with_pruning = rich_db.execute(sql).rows()
        rich_db.optimizer = Optimizer(enable_projection_pruning=False)
        without = rich_db.execute(sql).rows()
        assert with_pruning == without


class TestConstantFolding:
    def test_column_free_predicate_folds_away(self, rich_db):
        plan = _optimized_plan(rich_db, "SELECT id FROM big WHERE 1 + 1 = 2")
        assert not any(isinstance(n, FilterNode) for n in plan.walk())

    def test_arithmetic_folded_in_projection(self, rich_db):
        plan = _optimized_plan(rich_db, "SELECT 2 * 3 + 1 AS c FROM big")
        from flock.db.expr import BoundLiteral

        project = next(n for n in plan.walk() if isinstance(n, ProjectNode))
        assert isinstance(project.exprs[0], BoundLiteral)
        assert project.exprs[0].value == 7


class TestCostModel:
    def test_selectivities_ordered(self):
        from flock.db.expr import BoundBinary, BoundColumn, BoundLiteral
        from flock.db.types import DataType

        eq = BoundBinary(
            "=",
            BoundColumn(0, DataType.INTEGER, "a"),
            BoundLiteral(DataType.INTEGER, 1),
            DataType.BOOLEAN,
        )
        rng = BoundBinary(
            "<",
            BoundColumn(0, DataType.INTEGER, "a"),
            BoundLiteral(DataType.INTEGER, 1),
            DataType.BOOLEAN,
        )
        assert predicate_selectivity(eq) < predicate_selectivity(rng)
        conj = BoundBinary("AND", eq, rng, DataType.BOOLEAN)
        assert predicate_selectivity(conj) == pytest.approx(
            predicate_selectivity(eq) * predicate_selectivity(rng)
        )

    def test_estimate_rows_scan_and_filter(self, rich_db):
        plan = Binder(rich_db).bind_select(
            parse_statement("SELECT id FROM big WHERE k = 1")
        )
        rows = estimate_rows(plan, rich_db.table_row_count)
        assert 0 < rows < 200

    def test_join_sides_swapped_for_small_build(self, rich_db):
        # big JOIN small: the optimizer should build on `small`.
        plan = _optimized_plan(
            rich_db,
            "SELECT b.id FROM small s JOIN big b ON b.k = s.k",
        )
        joins = [n for n in plan.walk() if isinstance(n, JoinNode)]
        assert len(joins) == 1
        cost = CostModel(rich_db.table_row_count)
        assert cost.rows(joins[0].right) <= cost.rows(joins[0].left)

    def test_swap_preserves_results(self, rich_db):
        sql = (
            "SELECT b.id, s.label FROM small s JOIN big b ON b.k = s.k "
            "ORDER BY b.id LIMIT 5"
        )
        swapped = rich_db.execute(sql).rows()
        rich_db.optimizer = Optimizer(enable_join_rules=False)
        unswapped = rich_db.execute(sql).rows()
        assert swapped == unswapped


class TestOptimizerEquivalence:
    """The golden property: every rewrite preserves query results."""

    QUERIES = [
        "SELECT id, payload FROM big WHERE id % 7 = 0 ORDER BY id",
        "SELECT k, COUNT(*) AS n, SUM(extra2) AS s FROM big GROUP BY k "
        "HAVING COUNT(*) > 10 ORDER BY k",
        "SELECT b.id, s.label FROM big b JOIN small s ON b.k = s.k "
        "WHERE b.id BETWEEN 10 AND 50 ORDER BY b.id",
        "SELECT DISTINCT k FROM big WHERE payload LIKE 'p1%' ORDER BY k",
        "SELECT t.k, t.n FROM (SELECT k, COUNT(*) AS n FROM big GROUP BY k) t "
        "WHERE t.n > 15 ORDER BY t.k",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_all_optimizations_off_vs_on(self, rich_db, sql):
        optimized = rich_db.execute(sql).rows()
        rich_db.optimizer = Optimizer(
            enable_predicate_pushdown=False,
            enable_projection_pruning=False,
            enable_join_rules=False,
        )
        naive = rich_db.execute(sql).rows()
        assert optimized == naive
