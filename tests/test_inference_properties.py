"""Property-based tests for the inference layer's equivalences.

These are the invariants the whole Figure 4 result rests on: however the
cross-optimizer rewrites a model — inlined to SQL expressions, compressed
against data statistics, pruned of unused inputs — the numbers that come out
are the numbers the original graph produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.db.expr import BoundColumn
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.inference.compression import compress_graph
from flock.inference.udf import inline_graph
from flock.mlgraph import GraphRuntime
from flock.mlgraph.analysis import used_inputs
from flock.mlgraph.graph import Graph, Node, TensorSpec


def _linear_pipeline_graph(weights, bias, offsets, divisors) -> Graph:
    names = [f"x{i}" for i in range(len(weights))]
    return Graph(
        "g",
        inputs=[TensorSpec(n) for n in names],
        outputs=[TensorSpec("probability")],
        nodes=[
            Node("pack", names, ["m"]),
            Node(
                "scale", ["m"], ["s"],
                {"offset": list(offsets), "divisor": list(divisors)},
            ),
            Node(
                "linear", ["s"], ["z"],
                {"weights": list(weights), "bias": bias},
            ),
            Node("sigmoid", ["z"], ["probability"]),
        ],
        output_kinds={"probability": "probability"},
    )


_weights = st.lists(
    st.floats(-5, 5).filter(lambda v: abs(v) > 1e-9 or v == 0.0),
    min_size=1,
    max_size=4,
)


@settings(deadline=None, max_examples=40)
@given(
    _weights,
    st.floats(-3, 3),
    st.data(),
)
def test_inline_matches_runtime_for_linear_pipelines(weights, bias, data):
    d = len(weights)
    offsets = data.draw(
        st.lists(st.floats(-10, 10), min_size=d, max_size=d)
    )
    divisors = data.draw(
        st.lists(st.floats(0.5, 10), min_size=d, max_size=d)
    )
    graph = _linear_pipeline_graph(weights, bias, offsets, divisors)

    rows = data.draw(
        st.lists(
            st.lists(st.floats(-100, 100), min_size=d, max_size=d),
            min_size=1,
            max_size=12,
        )
    )
    X = np.array(rows)
    feeds = {f"x{i}": X[:, i] for i in range(d)}
    runtime_out = GraphRuntime().run(graph, feeds)["probability"]

    exprs = inline_graph(
        graph,
        {
            f"x{i}": BoundColumn(i, DataType.FLOAT, f"x{i}")
            for i in range(d)
        },
    )
    assert exprs is not None
    batch = Batch(
        [f"x{i}" for i in range(d)],
        [
            ColumnVector.from_values(DataType.FLOAT, X[:, i].tolist())
            for i in range(d)
        ],
    )
    inline_out = exprs["probability"].evaluate(batch).values
    assert np.allclose(inline_out, runtime_out, atol=1e-12, equal_nan=True)


@st.composite
def _random_tree(draw, depth=0, n_features=2):
    if depth >= 3 or draw(st.booleans()):
        return {
            "value": [draw(st.floats(-10, 10))],
            "left": None,
            "right": None,
        }
    return {
        "feature": draw(st.integers(0, n_features - 1)),
        "threshold": draw(st.floats(-5, 5)),
        "left": draw(_random_tree(depth=depth + 1, n_features=n_features)),
        "right": draw(_random_tree(depth=depth + 1, n_features=n_features)),
    }


def _tree_graph(trees) -> Graph:
    return Graph(
        "t",
        inputs=[TensorSpec("a"), TensorSpec("b")],
        outputs=[TensorSpec("score")],
        nodes=[
            Node("pack", ["a", "b"], ["m"]),
            Node(
                "tree_ensemble", ["m"], ["score"],
                {"trees": trees, "aggregation": "sum", "scale": 1.0,
                 "init": 0.0},
            ),
        ],
        output_kinds={"score": "score"},
    )


@settings(deadline=None, max_examples=40)
@given(st.lists(_random_tree(), min_size=1, max_size=3), st.data())
def test_compression_exact_within_observed_ranges(trees, data):
    """Folding branches outside [lo, hi] never changes in-range results."""
    graph = _tree_graph(trees)
    lo_a = data.draw(st.floats(-4, 0))
    hi_a = data.draw(st.floats(0.1, 4))
    lo_b = data.draw(st.floats(-4, 0))
    hi_b = data.draw(st.floats(0.1, 4))
    compressed, _ = compress_graph(
        graph, {"a": (lo_a, hi_a), "b": (lo_b, hi_b)}
    )

    n = 25
    rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
    feeds = {
        "a": rng.uniform(lo_a, hi_a, size=n),
        "b": rng.uniform(lo_b, hi_b, size=n),
    }
    original = GraphRuntime().run(graph, feeds)["score"]
    folded = GraphRuntime().run(compressed, feeds)["score"]
    assert np.allclose(original, folded)


@settings(deadline=None, max_examples=40)
@given(st.lists(_random_tree(), min_size=1, max_size=3), st.data())
def test_tree_inlining_matches_runtime(trees, data):
    graph = _tree_graph(trees)
    exprs = inline_graph(
        graph,
        {
            "a": BoundColumn(0, DataType.FLOAT, "a"),
            "b": BoundColumn(1, DataType.FLOAT, "b"),
        },
    )
    assert exprs is not None
    n = 20
    rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
    X = rng.uniform(-6, 6, size=(n, 2))
    runtime_out = GraphRuntime().run(
        graph, {"a": X[:, 0], "b": X[:, 1]}
    )["score"]
    batch = Batch(
        ["a", "b"],
        [
            ColumnVector.from_values(DataType.FLOAT, X[:, 0].tolist()),
            ColumnVector.from_values(DataType.FLOAT, X[:, 1].tolist()),
        ],
    )
    inline_out = exprs["score"].evaluate(batch).values
    assert np.allclose(inline_out, runtime_out)


@settings(deadline=None, max_examples=40)
@given(_weights)
def test_pruning_soundness_property(weights):
    """An input is reported unused iff its weight is exactly zero."""
    graph = Graph(
        "g",
        inputs=[TensorSpec(f"x{i}") for i in range(len(weights))],
        outputs=[TensorSpec("score")],
        nodes=[
            Node("pack", [f"x{i}" for i in range(len(weights))], ["m"]),
            Node("linear", ["m"], ["score"],
                 {"weights": list(weights), "bias": 0.0}),
        ],
        output_kinds={"score": "score"},
    )
    used = used_inputs(graph)
    for i, w in enumerate(weights):
        if w == 0.0:
            assert f"x{i}" not in used
        else:
            assert f"x{i}" in used
