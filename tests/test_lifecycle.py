"""Lifecycle tests: the cloud training service and FlockSession."""

import numpy as np
import pytest

from flock.errors import FlockError
from flock.lifecycle import CloudTrainingService, FlockSession
from flock.ml import (
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    Pipeline,
    StandardScaler,
)
from flock.ml.datasets import make_loans, make_regression


class TestCloudTrainingService:
    def test_submit_tracks_run(self):
        service = CloudTrainingService()
        X, y, _ = make_regression(100, 3, random_state=0)
        run = service.submit("m", LinearRegression(), X, y, dataset_name="d")
        assert run.status == "succeeded"
        assert run.run_id == "run-1"
        assert "train_r2" in run.metrics
        assert run.duration_seconds >= 0.0
        assert run.hyperparameters["fit_intercept"] is True

    def test_failed_run_recorded(self):
        service = CloudTrainingService()
        with pytest.raises(Exception):
            service.submit("m", LinearRegression(), np.zeros((3, 2)), np.zeros(5))
        run = service.runs("m")[0]
        assert run.status == "failed"
        assert run.error

    def test_best_run_selection(self):
        service = CloudTrainingService()
        X, y, _ = make_regression(150, 3, noise=1.0, random_state=1)
        service.submit(
            "m", GradientBoostingRegressor(n_estimators=2, random_state=0), X, y
        )
        service.submit(
            "m", GradientBoostingRegressor(n_estimators=30, random_state=0), X, y
        )
        best = service.best_run("m", "train_r2")
        assert best.hyperparameters["n_estimators"] == 30

    def test_best_run_without_runs(self):
        with pytest.raises(FlockError):
            CloudTrainingService().best_run("ghost", "r2")

    def test_custom_evaluation(self):
        service = CloudTrainingService()
        X, y, _ = make_regression(60, 2, random_state=2)
        run = service.submit(
            "m",
            LinearRegression(),
            X,
            y,
            evaluate=lambda est, X_, y_: {"custom": 1.23},
        )
        assert run.metrics == {"custom": 1.23}


class TestFlockSession:
    @pytest.fixture
    def session(self):
        s = FlockSession()
        s.load_dataset(make_loans(150, random_state=0))
        return s

    def test_full_lifecycle(self, session):
        run = session.train_and_deploy(
            "loan_model",
            Pipeline(
                [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
            ),
            "loans",
            ["income", "credit_score", "loan_amount", "debt_ratio",
             "years_employed"],
            "approved",
        )
        assert run.status == "succeeded"
        assert session.registry.latest("loan_model").version == 1
        result = session.sql(
            "SELECT COUNT(*) FROM loans WHERE PREDICT(loan_model) > 0.5"
        )
        assert 0 < result.scalar() <= 150

    def test_provenance_spans_phases(self, session):
        session.train_and_deploy(
            "loan_model",
            LogisticRegression(max_iter=100),
            "loans",
            ["income", "credit_score"],
            "approved",
        )
        lineage = session.model_lineage("loan_model")
        names = {e.name for e in lineage}
        assert "loans" in names
        assert "loans.income" in names

    def test_models_affected_by_column(self, session):
        session.train_and_deploy(
            "loan_model",
            LogisticRegression(max_iter=100),
            "loans",
            ["income", "credit_score"],
            "approved",
        )
        affected = session.models_affected_by_column("loans", "income")
        assert affected == ["loan_model:v1"]
        assert session.models_affected_by_column("loans", "region") == []

    def test_sql_captures_provenance_eagerly(self, session):
        from flock.provenance.model import EntityType

        session.sql("SELECT income FROM loans WHERE approved = 1")
        queries = session.provenance.search(EntityType.QUERY)
        assert queries

    def test_missing_lineage_raises(self, session):
        with pytest.raises(FlockError):
            session.model_lineage("ghost", version=1)

    def test_retraining_bumps_version(self, session):
        features = ["income", "credit_score"]
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=50), "loans", features, "approved"
        )
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=80), "loans", features, "approved"
        )
        assert session.registry.latest("m").version == 2
        assert len(session.training.runs("m")) == 2
