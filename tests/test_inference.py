"""In-DBMS inference tests: PREDICT semantics and the cross-optimizer.

The golden property throughout: whatever the cross-optimizer does —
compression, input pruning, UDF inlining, strategy switching — the
predictions match the Python pipeline exactly.
"""

import numpy as np
import pytest

from flock import create_database
from flock.errors import BindError
from flock.inference import CrossOptimizer
from flock.inference.selection import choose_strategy, estimate_costs
from flock.ml import (
    GradientBoostingClassifier,
    LinearRegression,
    LogisticRegression,
    Pipeline,
    StandardScaler,
)
from flock.ml.datasets import load_dataset_into, make_loans
from flock.mlgraph import to_graph


class TestPredictSQL:
    def test_predict_matches_python(self, loan_setup):
        database, registry, dataset, pipeline = loan_setup
        rows = database.execute(
            "SELECT applicant_id, PREDICT(loan_model) AS p FROM loans "
            "ORDER BY applicant_id"
        ).rows()
        expected = pipeline.predict_proba(dataset.feature_matrix())[:, 1]
        got = np.array([p for _, p in rows])
        assert np.allclose(got, expected)

    def test_predict_with_explicit_args(self, loan_setup):
        database, *_ = loan_setup
        result = database.execute(
            "SELECT PREDICT(loan_model, income, credit_score, loan_amount, "
            "debt_ratio, years_employed) AS p FROM loans LIMIT 5"
        )
        assert result.row_count == 5

    def test_predict_with_output_selector(self, loan_setup):
        database, *_ = loan_setup
        labels = database.execute(
            "SELECT PREDICT(loan_model) WITH label AS verdict FROM loans"
        ).column("verdict")
        assert set(labels) <= {0, 1}

    def test_predict_in_where_only(self, loan_setup):
        database, registry, dataset, pipeline = loan_setup
        n = database.execute(
            "SELECT COUNT(*) FROM loans WHERE PREDICT(loan_model) > 0.8"
        ).scalar()
        expected = int(
            (pipeline.predict_proba(dataset.feature_matrix())[:, 1] > 0.8).sum()
        )
        assert n == expected

    def test_predict_wrong_arity(self, loan_setup):
        database, *_ = loan_setup
        with pytest.raises(BindError):
            database.execute("SELECT PREDICT(loan_model, income) FROM loans")

    def test_unknown_model(self, loan_setup):
        database, *_ = loan_setup
        with pytest.raises(BindError, match="unknown model"):
            database.execute("SELECT PREDICT(ghost) FROM loans")

    def test_unknown_output(self, loan_setup):
        database, *_ = loan_setup
        with pytest.raises(BindError):
            database.execute(
                "SELECT PREDICT(loan_model) WITH volume FROM loans"
            )

    def test_predict_composes_with_sql(self, loan_setup):
        database, registry, dataset, pipeline = loan_setup
        rows = database.execute(
            "SELECT region, COUNT(*) AS n, AVG(PREDICT(loan_model)) AS avg_p "
            "FROM loans GROUP BY region ORDER BY region"
        ).rows()
        assert len(rows) == 4
        assert all(0.0 <= r[2] <= 1.0 for r in rows)


class TestCrossOptimizerEquivalence:
    CONFIGS = [
        {"enable_compression": False, "enable_pruning": False,
         "enable_inlining": False, "enable_strategy_selection": False},
        {"enable_compression": True, "enable_pruning": False,
         "enable_inlining": False, "enable_strategy_selection": False},
        {"enable_compression": False, "enable_pruning": True,
         "enable_inlining": False, "enable_strategy_selection": False},
        {"enable_compression": False, "enable_pruning": False,
         "enable_inlining": True, "enable_strategy_selection": False},
        {"enable_compression": True, "enable_pruning": True,
         "enable_inlining": True, "enable_strategy_selection": True},
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    def test_every_configuration_same_answers(self, config):
        dataset = make_loans(150, random_state=1)
        pipeline = Pipeline(
            [("s", StandardScaler()), ("m", LogisticRegression(max_iter=150))]
        ).fit(dataset.feature_matrix(), dataset.target_vector())
        database, registry = create_database(CrossOptimizer(**config))
        load_dataset_into(database, dataset)
        registry.deploy(
            "m", to_graph(pipeline, dataset.feature_names, name="m")
        )
        rows = database.execute(
            "SELECT applicant_id, PREDICT(m) AS p FROM loans "
            "WHERE PREDICT(m) > 0.3 ORDER BY applicant_id"
        ).rows()
        probs = pipeline.predict_proba(dataset.feature_matrix())[:, 1]
        expected = [
            (i + 1, p) for i, p in enumerate(probs) if p > 0.3
        ]
        assert len(rows) == len(expected)
        for (got_id, got_p), (want_id, want_p) in zip(rows, expected):
            assert got_id == want_id
            assert got_p == pytest.approx(want_p, abs=1e-9)

    def test_gbm_not_inlined_but_exact(self):
        dataset = make_loans(120, random_state=2)
        gbm = GradientBoostingClassifier(
            n_estimators=30, random_state=0
        ).fit(dataset.feature_matrix(), dataset.target_vector())
        database, registry = create_database()
        load_dataset_into(database, dataset)
        registry.deploy("gbm", to_graph(gbm, dataset.feature_names, name="gbm"))
        got = database.execute(
            "SELECT PREDICT(gbm) AS p FROM loans ORDER BY applicant_id"
        ).column("p")
        expected = gbm.predict_proba(dataset.feature_matrix())[:, 1]
        assert np.allclose(got, expected)
        # Big ensembles stay as Predict operators (not inlined).
        plan_text = database.explain("SELECT PREDICT(gbm) FROM loans")
        assert "Predict(" in plan_text


class TestInliningAndPushup:
    def test_linear_model_disappears_from_plan(self, loan_setup):
        database, *_ = loan_setup
        plan_text = database.explain(
            "SELECT PREDICT(loan_model) AS p FROM loans WHERE "
            "PREDICT(loan_model) > 0.9"
        )
        assert "Predict(" not in plan_text  # fully inlined
        assert "Filter" in plan_text
        assert "EXP" in plan_text  # the sigmoid became SQL arithmetic

    def test_report_mentions_inlining(self, loan_setup):
        database, *_ = loan_setup
        database.execute("SELECT PREDICT(loan_model) FROM loans LIMIT 1")
        assert any(
            "inlined" in line for line in database.cross_optimizer.last_report
        )

    def test_pushup_evaluates_model_once(self, loan_setup):
        """After inlining, the predicate over the prediction filters the
        inlined projection: the model expression appears (and is evaluated)
        exactly once — no model runtime, no double evaluation."""
        database, *_ = loan_setup
        plan_text = database.explain(
            "SELECT applicant_id FROM loans WHERE PREDICT(loan_model) > 0.9"
        )
        assert "Predict(" not in plan_text
        # The sigmoid expression (EXP) occurs once in the whole plan.
        assert plan_text.count("EXP") == 1
        # And the filter sits over the projection that computes it.
        lines = [l.strip() for l in plan_text.splitlines()]
        filter_index = next(
            i for i, l in enumerate(lines) if l.startswith("Filter(")
        )
        assert lines[filter_index + 1].startswith("Project(")


class TestPruning:
    def test_sparse_model_narrows_scan(self):
        dataset = make_loans(150, random_state=3)
        X = dataset.feature_matrix()
        y = dataset.target_vector()
        model = LogisticRegression(max_iter=150).fit(X, y)
        # Make the model provably ignore three features.
        model.coef_[2] = 0.0
        model.coef_[3] = 0.0
        model.coef_[4] = 0.0
        database, registry = create_database(
            CrossOptimizer(enable_inlining=False)
        )
        load_dataset_into(database, dataset)
        registry.deploy(
            "sparse", to_graph(model, dataset.feature_names, name="sparse")
        )
        plan_text = database.explain("SELECT PREDICT(sparse) AS p FROM loans")
        scan_line = [l for l in plan_text.splitlines() if "Scan(" in l][0]
        assert "loan_amount" not in scan_line
        assert "debt_ratio" not in scan_line
        assert "income" in scan_line
        # And predictions still match.
        got = database.execute(
            "SELECT PREDICT(sparse) AS p FROM loans ORDER BY applicant_id"
        ).column("p")
        assert np.allclose(got, model.predict_proba(X)[:, 1])

    def test_report_mentions_pruning(self):
        dataset = make_loans(100, random_state=4)
        model = LogisticRegression(max_iter=100).fit(
            dataset.feature_matrix(), dataset.target_vector()
        )
        model.coef_[0] = 0.0
        database, registry = create_database(
            CrossOptimizer(enable_inlining=False)
        )
        load_dataset_into(database, dataset)
        registry.deploy(
            "m", to_graph(model, dataset.feature_names, name="m")
        )
        database.execute("SELECT PREDICT(m) FROM loans LIMIT 1")
        assert any(
            "pruned" in line for line in database.cross_optimizer.last_report
        )


class TestStrategySelection:
    def test_batch_for_large_row_udf_for_tiny(self):
        dataset = make_loans(60, random_state=5)
        model = LinearRegression().fit(
            dataset.feature_matrix(), dataset.target_vector().astype(float)
        )
        graph = to_graph(model, dataset.feature_names, name="m")
        assert choose_strategy(100_000, graph) == "batch"
        assert choose_strategy(1, graph) == "row_udf"

    def test_costs_monotone_in_rows(self):
        dataset = make_loans(60, random_state=6)
        model = LinearRegression().fit(
            dataset.feature_matrix(), dataset.target_vector().astype(float)
        )
        graph = to_graph(model, dataset.feature_names, name="m")
        small = estimate_costs(10, graph)
        large = estimate_costs(10_000, graph)
        assert large.batch_cost > small.batch_cost
        assert large.row_udf_cost > small.row_udf_cost

    def test_row_udf_execution_correct(self):
        dataset = make_loans(50, random_state=7)
        gbm = GradientBoostingClassifier(n_estimators=5, random_state=0).fit(
            dataset.feature_matrix(), dataset.target_vector()
        )
        database, registry = create_database(
            CrossOptimizer(
                enable_inlining=False, enable_strategy_selection=False
            )
        )
        load_dataset_into(database, dataset)
        registry.deploy("m", to_graph(gbm, dataset.feature_names, name="m"))

        # Force row_udf by planning manually.
        from flock.db.plan import PredictNode

        class ForcedRowUDF(CrossOptimizer):
            def apply(self, plan, context):
                plan = super().apply(plan, context)
                for node in plan.walk():
                    if isinstance(node, PredictNode):
                        node.strategy = "row_udf"
                return plan

        database.optimizer.extra_rules = [
            ForcedRowUDF(
                enable_inlining=False, enable_strategy_selection=False
            ).apply
        ]
        got = database.execute(
            "SELECT PREDICT(m) AS p FROM loans ORDER BY applicant_id"
        ).column("p")
        expected = gbm.predict_proba(dataset.feature_matrix())[:, 1]
        assert np.allclose(got, expected)
