"""Tests for the interactive shell (driven programmatically)."""

import pytest

from flock.cli import ShellState, execute_line, format_result, make_state


@pytest.fixture
def shell():
    state = make_state()
    execute_line(state, "CREATE TABLE t (a INT, b TEXT)")
    execute_line(state, "INSERT INTO t VALUES (1, 'x'), (2, NULL)")
    return state


class TestExecuteLine:
    def test_select_renders_table(self, shell):
        out = execute_line(shell, "SELECT a, b FROM t ORDER BY a")
        assert "a" in out and "b" in out
        assert "NULL" in out
        assert "(2 rows)" in out

    def test_dml_reports_counts(self, shell):
        out = execute_line(shell, "UPDATE t SET b = 'y' WHERE a = 2")
        assert out == "UPDATE: 1 row(s)"

    def test_errors_are_messages_not_raises(self, shell):
        out = execute_line(shell, "SELECT nope FROM t")
        assert out.startswith("error:")

    def test_empty_line(self, shell):
        assert execute_line(shell, "   ") == ""

    def test_explain_through_shell(self, shell):
        out = execute_line(shell, "EXPLAIN SELECT a FROM t WHERE a > 1")
        assert "Scan(t" in out


class TestDotCommands:
    def test_tables_and_views(self, shell):
        assert "t" in execute_line(shell, ".tables")
        execute_line(shell, "CREATE VIEW v AS SELECT a FROM t")
        assert "v" in execute_line(shell, ".views")

    def test_help_and_unknown(self, shell):
        assert ".tables" in execute_line(shell, ".help")
        assert "unknown command" in execute_line(shell, ".bogus")

    def test_quit_sets_done(self, shell):
        assert execute_line(shell, ".quit") == "bye"
        assert shell.done

    def test_user_switching_enforces_security(self, shell):
        execute_line(shell, "CREATE USER guest")
        assert "guest" in execute_line(shell, ".user guest")
        out = execute_line(shell, "SELECT a FROM t")
        assert out.startswith("error:")
        assert "current user: guest" in execute_line(shell, ".user")
        assert "error" in execute_line(shell, ".user nobody_here")

    def test_audit(self, shell):
        out = execute_line(shell, ".audit 5")
        assert "CREATE_TABLE" in out or "INSERT" in out

    def test_models_listing(self, shell):
        assert execute_line(shell, ".models") == "(none)"

    def test_save_and_reload(self, shell, tmp_path):
        out = execute_line(shell, f".save {tmp_path / 'snap'}")
        assert "saved" in out
        restored = make_state(load=str(tmp_path / "snap"))
        assert "(2 rows)" in execute_line(
            restored, "SELECT * FROM t ORDER BY a"
        )


class TestDemo:
    def test_demo_loans_scores(self, capsys):
        state = make_state(demo="loans")
        capsys.readouterr()
        out = execute_line(
            state, "SELECT PREDICT(loans_model) AS p FROM loans LIMIT 3"
        )
        assert "(3 rows)" in out
        assert "loans_model" in execute_line(state, ".models")

    def test_unknown_demo(self):
        from flock.errors import FlockError

        with pytest.raises(FlockError):
            make_state(demo="nothing")


class TestFormatResult:
    def test_empty_result(self, shell):
        out = execute_line(shell, "SELECT a FROM t WHERE a > 99")
        assert "(0 rows)" in out
