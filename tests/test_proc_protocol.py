"""Protocol-corruption battery for the worker wire (flock.proc.framing).

Two layers of guarantee, mirroring test_sql_errors.py's golden-message
style for the wire instead of the grammar:

- golden messages: every structural fault — truncated header, truncated
  payload, bit-flipped bytes (CRC mismatch), oversized declared length,
  bad magic, mid-frame EOF — raises a typed
  :class:`~flock.errors.ProtocolError` naming the fault, and the CRC is
  always verified *before* any payload byte reaches ``pickle.loads``;
- liveness classification: EOF at a frame boundary is a
  :class:`~flock.errors.WorkerCrashError` (peer death), a missed socket
  deadline is a :class:`~flock.errors.WorkerTimeoutError` (hung worker),
  and any of the three marks the supervisor channel unhealthy so a
  desynced stream is never reused.

The Channel tests drive the exact parent-side runtime path against a
scripted peer over a plain socketpair; the end-to-end tests SIGKILL and
corrupt real workers.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import zlib

import pytest

from flock.errors import (
    FlockError,
    ProcError,
    ProtocolError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from flock.proc import proc_available
from flock.proc.framing import (
    MAGIC,
    MAX_FRAME_BYTES,
    dump_message,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
)
from flock.proc.supervisor import Channel

pytestmark = pytest.mark.skipif(
    not proc_available(), reason="process backend needs POSIX socketpairs"
)

_HEADER = struct.Struct(">4sII")


def frame_bytes(payload: bytes) -> bytes:
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def sockpair():
    a, b = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


# ----------------------------------------------------------------------
# Golden roundtrips
# ----------------------------------------------------------------------
class TestRoundtrip:
    def test_message_roundtrip(self):
        a, b = sockpair()
        for obj in [
            {"op": "ping"},
            ("ok", {"pid": 42}),
            ("err", FlockError("boom")),
            [1, 2.5, "three", None, b"\x00\xff"],
        ]:
            send_message(a, obj)
            got = recv_message(b)
            assert repr(got) == repr(obj)

    def test_empty_payload_frame(self):
        a, b = sockpair()
        send_frame(a, b"")
        assert recv_frame(b) == b""

    def test_clean_eof_at_boundary_is_none_when_allowed(self):
        a, b = sockpair()
        a.close()
        assert recv_frame(b, eof_ok=True) is None
        assert recv_message(b, eof_ok=True) is None


# ----------------------------------------------------------------------
# Structural corruption → typed ProtocolError, golden messages
# ----------------------------------------------------------------------
class TestCorruption:
    def test_bad_magic(self):
        a, b = sockpair()
        payload = dump_message({"op": "ping"})
        a.sendall(
            b"EVIL" + _HEADER.pack(MAGIC, len(payload),
                                   zlib.crc32(payload))[4:] + payload
        )
        with pytest.raises(ProtocolError) as err:
            recv_frame(b)
        for needle in ("bad frame magic", "b'EVIL'", "desynced"):
            assert needle in str(err.value)

    def test_oversized_declared_length_rejected_before_read(self):
        a, b = sockpair()
        # The declared length is absurd; the reader must reject it from
        # the 12 header bytes alone instead of trying to allocate/read.
        a.sendall(_HEADER.pack(MAGIC, MAX_FRAME_BYTES + 1, 0))
        with pytest.raises(ProtocolError) as err:
            recv_frame(b)
        for needle in ("declared frame length", "cap", "refusing to read"):
            assert needle in str(err.value)

    def test_bit_flip_is_crc_mismatch_never_unpickled(self):
        a, b = sockpair()
        seen = []
        real_loads = pickle.loads

        payload = dump_message({"op": "evil"})
        wire = bytearray(frame_bytes(payload))
        wire[_HEADER.size + 3] ^= 0x40  # flip one payload bit
        a.sendall(bytes(wire))

        def spy(data, *args, **kwargs):
            seen.append(data)
            return real_loads(data, *args, **kwargs)

        pickle.loads = spy
        try:
            with pytest.raises(ProtocolError) as err:
                recv_message(b)
        finally:
            pickle.loads = real_loads
        assert seen == [], "corrupt payload reached pickle.loads"
        for needle in ("CRC mismatch", "refusing to deserialize"):
            assert needle in str(err.value)

    def test_truncated_header_is_mid_frame_eof(self):
        a, b = sockpair()
        a.sendall(frame_bytes(dump_message("x"))[:7])
        a.close()
        with pytest.raises(ProtocolError) as err:
            recv_frame(b)
        assert "EOF mid-frame" in str(err.value)
        assert "7 of 12 byte(s)" in str(err.value)

    def test_truncated_payload_is_mid_frame_eof(self):
        a, b = sockpair()
        payload = dump_message({"op": "ping", "pad": "y" * 64})
        a.sendall(frame_bytes(payload)[:-10])
        a.close()
        with pytest.raises(ProtocolError) as err:
            recv_frame(b)
        assert "EOF mid-frame" in str(err.value)

    def test_oversized_send_refused(self):
        a, _ = sockpair()
        with pytest.raises(ProtocolError):
            send_frame(a, b"x" * (MAX_FRAME_BYTES + 1))

    def test_crc_valid_but_undeserializable_payload(self):
        a, b = sockpair()
        send_frame(a, b"\x80\x05 this is not a pickle")
        with pytest.raises(ProtocolError) as err:
            recv_message(b)
        assert "failed to deserialize" in str(err.value)


# ----------------------------------------------------------------------
# Liveness classification
# ----------------------------------------------------------------------
class TestLiveness:
    def test_eof_at_boundary_is_worker_crash(self):
        a, b = sockpair()
        a.close()
        with pytest.raises(WorkerCrashError) as err:
            recv_frame(b)
        assert "closed by peer" in str(err.value)

    def test_deadline_is_worker_timeout(self):
        a, b = sockpair()
        b.settimeout(0.05)
        with pytest.raises(WorkerTimeoutError) as err:
            recv_frame(b)
        assert "deadline" in str(err.value)

    def test_all_proc_errors_are_flock_errors(self):
        for cls in (ProtocolError, WorkerCrashError, WorkerTimeoutError):
            assert issubclass(cls, ProcError)
            assert issubclass(cls, FlockError)


# ----------------------------------------------------------------------
# The supervisor channel against a scripted peer
# ----------------------------------------------------------------------
class Peer:
    """A fake worker: replies to each request with scripted raw bytes."""

    def __init__(self, sock, replies):
        self.sock = sock
        self.replies = list(replies)
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        try:
            for reply in self.replies:
                recv_message(self.sock)  # consume the request
                if reply is None:
                    break  # hang up without replying
                self.sock.sendall(reply)
        except ProcError:
            pass
        finally:
            try:
                self.sock.close()
            except OSError:
                pass


class TestChannel:
    def test_ok_reply(self):
        a, b = sockpair()
        Peer(b, [frame_bytes(dump_message(("ok", 7)))])
        chan = Channel(a, timeout=5.0)
        assert chan.request("ping") == 7
        assert chan.healthy

    def test_err_reply_reraises_original_class_channel_stays_up(self):
        a, b = sockpair()
        Peer(b, [
            frame_bytes(dump_message(("err", FlockError("worker says no")))),
            frame_bytes(dump_message(("ok", "pong"))),
        ])
        chan = Channel(a, timeout=5.0)
        with pytest.raises(FlockError, match="worker says no"):
            chan.request("boom")
        # A typed error reply is a *healthy* protocol exchange: the next
        # request must still work on the same stream.
        assert chan.healthy
        assert chan.request("ping") == "pong"

    def test_corrupt_reply_marks_channel_unhealthy(self):
        a, b = sockpair()
        bad = bytearray(frame_bytes(dump_message(("ok", 1))))
        bad[-1] ^= 0x01
        Peer(b, [bytes(bad)])
        chan = Channel(a, timeout=5.0)
        with pytest.raises(ProtocolError):
            chan.request("ping")
        assert not chan.healthy
        # Once poisoned, the channel refuses further use outright.
        with pytest.raises(WorkerCrashError, match="channel is down"):
            chan.request("ping")

    def test_peer_hangup_marks_channel_unhealthy(self):
        a, b = sockpair()
        Peer(b, [None])
        chan = Channel(a, timeout=5.0)
        with pytest.raises(WorkerCrashError):
            chan.request("ping")
        assert not chan.healthy

    def test_silent_peer_times_out(self):
        a, b = sockpair()
        chan = Channel(a, timeout=0.1)  # peer never reads nor replies
        with pytest.raises(WorkerTimeoutError):
            chan.request("ping")
        assert not chan.healthy
        b.close()

    def test_malformed_reply_shape_is_protocol_error(self):
        a, b = sockpair()
        Peer(b, [frame_bytes(dump_message({"not": "a reply tuple"}))])
        chan = Channel(a, timeout=5.0)
        with pytest.raises(ProtocolError, match="malformed reply"):
            chan.request("ping")
        assert not chan.healthy


# ----------------------------------------------------------------------
# End to end: real workers, real deaths
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_sigkill_mid_request_is_worker_crash(self, tmp_path):
        import os
        import signal

        import flock

        client = flock.connect(tmp_path / "db", shards=2, process=True)
        try:
            client.execute("CREATE TABLE t (k INT PRIMARY KEY)")
            client.execute("INSERT INTO t VALUES (1), (2), (3)")
            victim = client.cluster.shards[0]
            os.kill(victim.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError) as err:
                victim.database.execute("SELECT * FROM t")
            assert not victim.healthy
            # The crash error names the worker's fate — SIGKILL shows up
            # as a reaped exit status, a clean EOF, or ECONNRESET
            # depending on where the read was when the process died.
            assert any(
                needle in str(err.value)
                for needle in ("exited", "closed", "mid-read")
            )
            # Recovery path: restart the shard, data is still there.
            client.cluster.restart_shard(0)
            rows = client.execute("SELECT * FROM t ORDER BY k").rows()
            assert rows == [(1,), (2,), (3,)]
        finally:
            client.close()

    def test_worker_boot_failure_reraises_in_parent(self, tmp_path):
        from flock.proc.supervisor import WorkerHandle

        with pytest.raises(ValueError, match="unknown worker role"):
            WorkerHandle({
                "role": "nonsense", "name": "x", "path": str(tmp_path),
            })

    def test_hung_worker_killed_on_deadline(self, tmp_path):
        import flock

        client = flock.connect(tmp_path / "db", shards=1, process=True)
        try:
            shard = client.cluster.shards[0]
            # A 'sleep' fault parks the worker's WAL path well past the
            # request deadline; the supervisor must kill it, not wait.
            shard.set_fault("wal.pre_fsync", action="sleep",
                            delay_ms=30_000.0)
            with pytest.raises((WorkerTimeoutError, WorkerCrashError)):
                shard.handle.request(
                    "db_execute",
                    sql="CREATE TABLE slow (k INT PRIMARY KEY)",
                    _timeout=1.0,
                )
            assert not shard.healthy
            assert not shard.handle.alive  # killed, not lingering
        finally:
            client.close()
