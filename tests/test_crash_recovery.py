"""Crash-recovery stress: SIGKILL-equivalent crashes at random fault points.

Each round launches :mod:`flock.testing.crashload` as a child process with
``FLOCK_FAULTPOINTS`` arming one WAL/checkpoint point to crash after a
random number of hits, then recovers the directory and checks the
committed-prefix invariant the child's acknowledgement file pins down:

- acknowledged operations are all recovered (acknowledged ⇒ durable);
- recovered operations were all attempted (nothing invented);
- paired-table transactions are atomic (both rows or neither);
- the audit hash chain verifies, and deploy audits match mirrored models
  exactly once;
- the recovered database still takes writes.

Knobs (all environment variables): ``FLOCK_STRESS_ROUNDS`` (default 5),
``FLOCK_STRESS_SEED``, ``FLOCK_STRESS_OPS`` (default 60), and
``FLOCK_STRESS_ARTIFACTS`` — a directory to copy failing data dirs into
(CI uploads it on failure).
"""

from __future__ import annotations

import os
import random
import shutil
import subprocess
import sys
from pathlib import Path

import flock
from flock.testing import faultpoints

SRC = str(Path(__file__).resolve().parent.parent / "src")

ROUNDS = int(os.environ.get("FLOCK_STRESS_ROUNDS", "5"))
SEED = int(os.environ.get("FLOCK_STRESS_SEED", "20260806"))
OPS = int(os.environ.get("FLOCK_STRESS_OPS", "60"))
SHARDS = int(os.environ.get("FLOCK_SHARDS", "2"))
SHARD_ROUNDS = int(os.environ.get("FLOCK_STRESS_SHARD_ROUNDS", "3"))

#: Crashing at wal.pre_ack exercises the "durable but unacknowledged"
#: window; the checkpoint points exercise swap repair; mid_record leaves a
#: physically torn frame.
CRASH_POINTS = list(faultpoints.KNOWN_POINTS)


def parse_ack(path: Path) -> dict[str, dict[str, set[int]]]:
    markers: dict[str, dict[str, set[int]]] = {}
    if not path.exists():
        return markers
    for line in path.read_text().splitlines():
        state, op, ident = line.split()
        markers.setdefault(op, {"try": set(), "ok": set()})
        markers[op][state].add(int(ident))
    return markers


def rows_of(db, table: str, column: str = "m") -> set[int]:
    if table not in db.catalog.table_names():
        return set()
    return {r[0] for r in db.execute(f"SELECT {column} FROM {table}").rows()}


def verify_recovery(data_dir: Path, ack_path: Path) -> None:
    markers = parse_ack(ack_path)
    session = flock.open_session(data_dir)
    db = session.db
    try:
        # Paired transactions are atomic, and acked pairs are durable.
        pair_a = rows_of(db, "pair_a")
        pair_b = rows_of(db, "pair_b")
        assert pair_a == pair_b, "paired transaction replayed partially"
        pairs = markers.get("pair", {"try": set(), "ok": set()})
        assert pairs["ok"] <= pair_a, "acknowledged pair lost"
        assert pair_a <= pairs["try"], "pair row appeared from nowhere"

        # Singles: acked inserts survive unless a delete was attempted;
        # acked deletes are gone; nothing is invented.
        singles = rows_of(db, "singles")
        ins = markers.get("single", {"try": set(), "ok": set()})
        dels = markers.get("delete", {"try": set(), "ok": set()})
        assert (ins["ok"] - dels["try"]) <= singles, "acked insert lost"
        assert not (singles & dels["ok"]), "acked delete resurrected"
        assert singles <= ins["try"], "single row appeared from nowhere"

        # DDL: acked extra tables exist with their row.
        tab = markers.get("table", {"try": set(), "ok": set()})
        for k in tab["ok"]:
            assert f"extra_{k}" in db.catalog.table_names()
            assert rows_of(db, f"extra_{k}", "k") == {k}
        extras = {
            int(name.split("_")[1])
            for name in db.catalog.table_names()
            if name.startswith("extra_")
        }
        assert extras <= tab["try"], "table appeared from nowhere"

        # Models: acked deploys are queryable, and every mirrored model
        # version has exactly one DEPLOY_MODEL audit record.
        dep = markers.get("deploy", {"try": set(), "ok": set()})
        deployed = set()
        if "flock_models" in db.catalog.table_names():
            mirrored = db.execute(
                "SELECT name, version FROM flock_models"
            ).rows()
            deployed = {
                int(name.removeprefix("stress_m"))
                for name, _ in mirrored
                if name.startswith("stress_m")
            }
            audits = [
                (r.object_name, r.detail)
                for r in db.audit.log.records(action="DEPLOY_MODEL")
            ]
            assert len(audits) == len(mirrored), (
                "deploy audits and mirrored models diverged"
            )
        assert dep["ok"] <= deployed, "acknowledged deploy lost"
        assert deployed <= dep["try"], "model appeared from nowhere"

        assert db.audit.log.verify_chain(), "audit hash chain broken"

        # Still a working database.
        db.execute("CREATE TABLE IF NOT EXISTS post_crash (x INT)")
        db.execute("INSERT INTO post_crash VALUES (1)")
        assert db.execute("SELECT COUNT(*) FROM post_crash").scalar() >= 1
    finally:
        db.close()


def verify_shard_recovery(data_dir: Path, ack_path: Path) -> None:
    """The sharded contract: acked ⇒ durable across N write-ahead logs.

    Reopening runs the router's reconciliation, which resumes any DDL or
    deploy broadcast the crash cut short mid-fleet. Pair atomicity is the
    one deliberate relaxation: the sharded tier has no cross-shard
    transactions, so a crash between the two routed pair inserts may
    leave a partial *unacknowledged* pair — acknowledged pairs must still
    be complete.
    """
    markers = parse_ack(ack_path)
    client = flock.connect(data_dir, shards=SHARDS)

    def rows(table: str, column: str = "m") -> set[int]:
        if table not in client.db.catalog.table_names():
            return set()
        result = client.execute(f"SELECT {column} FROM {table}")
        return {r[0] for r in result.rows()}

    try:
        pair_a, pair_b = rows("pair_a"), rows("pair_b")
        pairs = markers.get("pair", {"try": set(), "ok": set()})
        assert pairs["ok"] <= (pair_a & pair_b), "acknowledged pair lost"
        assert (pair_a | pair_b) <= pairs["try"], (
            "pair row appeared from nowhere"
        )

        singles = rows("singles")
        ins = markers.get("single", {"try": set(), "ok": set()})
        dels = markers.get("delete", {"try": set(), "ok": set()})
        assert (ins["ok"] - dels["try"]) <= singles, "acked insert lost"
        assert not (singles & dels["ok"]), "acked delete resurrected"
        assert singles <= ins["try"], "single row appeared from nowhere"

        tab = markers.get("table", {"try": set(), "ok": set()})
        for k in tab["ok"]:
            assert f"extra_{k}" in client.db.catalog.table_names()
            assert rows(f"extra_{k}", "k") == {k}
        extras = {
            int(name.split("_")[1])
            for name in client.db.catalog.table_names()
            if name.startswith("extra_")
        }
        assert extras <= tab["try"], "table appeared from nowhere"

        dep = markers.get("deploy", {"try": set(), "ok": set()})
        deployed = {
            int(name.removeprefix("stress_m"))
            for name in client.registry.model_names()
            if name.startswith("stress_m")
        }
        assert dep["ok"] <= deployed, "acknowledged deploy lost"
        assert deployed <= dep["try"], "model appeared from nowhere"

        # Broadcast invariant restored: every shard sees every table and
        # model, and every shard's audit hash chain still verifies.
        for shard in client.cluster.shards:
            names = set(shard.database.catalog.table_names())
            assert set(client.db.catalog.table_names()) <= names
            assert set(shard.registry.model_names()) == set(
                client.registry.model_names()
            )
            assert shard.database.audit.log.verify_chain(), (
                f"shard {shard.index}: audit hash chain broken"
            )

        # The reconciled cluster still takes scattered writes.
        client.execute(
            "CREATE TABLE IF NOT EXISTS post_crash (x INT PRIMARY KEY)"
        )
        client.execute("INSERT INTO post_crash VALUES (1), (2), (3)")
        count = client.execute("SELECT COUNT(*) FROM post_crash").scalar()
        assert count >= 3
    finally:
        client.close()


def test_crash_recovery_stress(tmp_path):
    rng = random.Random(SEED)
    for round_no in range(ROUNDS):
        point = rng.choice(CRASH_POINTS)
        after = rng.randint(1, 30)
        data_dir = tmp_path / f"round{round_no}"
        ack_path = tmp_path / f"ack{round_no}.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["FLOCK_FAULTPOINTS"] = f"{point}=crash:{after}"
        sync_mode = rng.choice(["commit", "commit", "group"])
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "flock.testing.crashload",
                "--dir",
                str(data_dir),
                "--seed",
                str(rng.randrange(1 << 30)),
                "--ops",
                str(OPS),
                "--ack-file",
                str(ack_path),
                "--sync-mode",
                sync_mode,
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        # 137 = injected crash; 0 = the workload finished before the fault
        # point accumulated enough hits (recovery still verified below).
        assert proc.returncode in (0, faultpoints.CRASH_EXIT_CODE), (
            f"round {round_no} ({point}=crash:{after}, {sync_mode}): "
            f"child failed\n{proc.stderr}"
        )
        try:
            verify_recovery(data_dir, ack_path)
        except BaseException:
            artifacts = os.environ.get("FLOCK_STRESS_ARTIFACTS")
            if artifacts:
                dest = Path(artifacts) / f"round{round_no}"
                dest.mkdir(parents=True, exist_ok=True)
                shutil.copytree(
                    data_dir, dest / "data", dirs_exist_ok=True
                )
                if ack_path.exists():
                    shutil.copy(ack_path, dest / "ack.log")
                (dest / "round.txt").write_text(
                    f"point={point} after={after} sync_mode={sync_mode} "
                    f"returncode={proc.returncode}\n"
                )
            raise


def test_shard_crash_recovery_stress(tmp_path):
    rng = random.Random(SEED + 1)
    for round_no in range(SHARD_ROUNDS):
        point = rng.choice(CRASH_POINTS)
        after = rng.randint(1, 40)
        data_dir = tmp_path / f"shard-round{round_no}"
        ack_path = tmp_path / f"shard-ack{round_no}.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["FLOCK_FAULTPOINTS"] = f"{point}=crash:{after}"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "flock.testing.crashload",
                "--dir",
                str(data_dir),
                "--seed",
                str(rng.randrange(1 << 30)),
                "--ops",
                str(OPS),
                "--ack-file",
                str(ack_path),
                "--shards",
                str(SHARDS),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode in (0, faultpoints.CRASH_EXIT_CODE), (
            f"shard round {round_no} ({point}=crash:{after}): "
            f"child failed\n{proc.stderr}"
        )
        try:
            verify_shard_recovery(data_dir, ack_path)
        except BaseException:
            artifacts = os.environ.get("FLOCK_STRESS_ARTIFACTS")
            if artifacts:
                dest = Path(artifacts) / f"shard-round{round_no}"
                dest.mkdir(parents=True, exist_ok=True)
                shutil.copytree(
                    data_dir, dest / "data", dirs_exist_ok=True
                )
                if ack_path.exists():
                    shutil.copy(ack_path, dest / "ack.log")
                (dest / "round.txt").write_text(
                    f"point={point} after={after} shards={SHARDS} "
                    f"returncode={proc.returncode}\n"
                )
            raise
