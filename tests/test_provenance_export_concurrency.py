"""Provenance export tests and engine concurrency tests."""

import json
import threading

import pytest

from flock.db import Database
from flock.errors import ProvenanceError, TransactionError
from flock.provenance import ProvenanceCatalog, SQLProvenanceCapture
from flock.provenance.export import (
    graph_from_json,
    graph_to_dot,
    graph_to_json,
    load_provenance,
    save_provenance,
)
from flock.provenance.model import EntityType


@pytest.fixture
def captured():
    catalog = ProvenanceCatalog()
    capture = SQLProvenanceCapture(catalog)
    capture.capture_query("SELECT a, b FROM t1 JOIN t2 ON t1.k = t2.k")
    capture.capture_query("INSERT INTO t1 VALUES (1)")
    return catalog.graph


class TestExport:
    def test_json_roundtrip(self, captured):
        payload = json.loads(json.dumps(graph_to_json(captured)))
        restored = graph_from_json(payload)
        assert restored.node_count == captured.node_count
        assert restored.edge_count == captured.edge_count
        # Lineage still works after the round trip.
        query = restored.entities(EntityType.QUERY)[0]
        assert restored.lineage(query.entity_id, "upstream")

    def test_file_roundtrip(self, captured, tmp_path):
        path = tmp_path / "prov.json"
        save_provenance(captured, path)
        restored = load_provenance(path)
        assert restored.size == captured.size

    def test_version_check(self, captured):
        payload = graph_to_json(captured)
        payload["format_version"] = 42
        with pytest.raises(ProvenanceError):
            graph_from_json(payload)

    def test_dot_output(self, captured):
        dot = graph_to_dot(captured)
        assert dot.startswith("digraph provenance {")
        assert "READS" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_truncation(self, captured):
        dot = graph_to_dot(captured, max_entities=2)
        assert dot.count("fillcolor") == 2

    def test_nonserializable_properties_coerced(self):
        from flock.provenance.model import Entity, ProvenanceGraph

        graph = ProvenanceGraph()
        graph.add_entity(
            Entity("e1", EntityType.MODEL, "m",
                   properties={"obj": object(), "ok": 1})
        )
        payload = graph_to_json(graph)
        json.dumps(payload)  # must not raise
        assert payload["entities"][0]["properties"]["ok"] == 1


class TestConcurrency:
    def test_parallel_readers_during_writes(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (0)")
        errors: list[Exception] = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    count = db.execute("SELECT COUNT(*) FROM t").scalar()
                    assert count >= 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(30):
                db.execute(f"INSERT INTO t VALUES ({i + 1})")
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 31

    def test_concurrent_conflicting_writers_one_wins(self):
        db = Database()
        db.execute("CREATE TABLE counter (v INT)")
        db.execute("INSERT INTO counter VALUES (0)")
        outcomes: list[str] = []
        barrier = threading.Barrier(2)

        def writer(tag: str):
            conn = db.connect()
            conn.execute("BEGIN")
            conn.execute("UPDATE counter SET v = v + 1")
            barrier.wait()  # both hold staged writes before committing
            try:
                conn.execute("COMMIT")
                outcomes.append(f"{tag}:commit")
            except TransactionError:
                outcomes.append(f"{tag}:abort")

        threads = [
            threading.Thread(target=writer, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(o.split(":")[1] for o in outcomes) == ["abort", "commit"]
        # Exactly one increment survived: no lost updates.
        assert db.execute("SELECT v FROM counter").scalar() == 1

    def test_concurrent_disjoint_writers_all_commit(self):
        db = Database()
        for i in range(4):
            db.execute(f"CREATE TABLE t{i} (v INT)")
        errors: list[Exception] = []

        def writer(i: int):
            try:
                for k in range(10):
                    db.execute(f"INSERT INTO t{i} VALUES ({k})")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(4):
            assert db.execute(f"SELECT COUNT(*) FROM t{i}").scalar() == 10

    def test_concurrent_same_table_autocommit_retries(self):
        """Autocommit inserts to one table from many threads all land."""
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        errors: list[Exception] = []

        def writer(base: int):
            try:
                for k in range(8):
                    db.execute(f"INSERT INTO t VALUES ({base * 100 + k})")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 32
        assert db.execute("SELECT COUNT(DISTINCT v) FROM t").scalar() == 32

    def test_audit_log_thread_safe(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")

        def worker():
            for _ in range(20):
                db.execute("SELECT COUNT(*) FROM t")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert db.audit.log.verify_chain()
