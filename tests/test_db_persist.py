"""Persistence tests: snapshot/restore fidelity across every subsystem."""

import numpy as np
import pytest

from flock import create_database
from flock.db import Database
from flock.db.persist import load_database, save_database
from flock.errors import FlockError, SecurityError


@pytest.fixture
def rich_database(tmp_path):
    db = Database()
    db.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, "
        "salary FLOAT, hired DATE)"
    )
    db.execute(
        "INSERT INTO emp VALUES (1,'ann',100.0,'2020-01-05'), "
        "(2,'bob',NULL,'2021-03-01')"
    )
    db.execute("UPDATE emp SET salary = 95.0 WHERE id = 2")
    db.execute("CREATE VIEW emp_names AS SELECT id, name FROM emp")
    db.execute("CREATE USER alice")
    db.execute("CREATE ROLE reader")
    db.execute("GRANT SELECT ON emp_names TO reader")
    db.execute("GRANT reader TO alice")
    return db


class TestRoundTrip:
    def test_rows_identical(self, rich_database, tmp_path):
        save_database(rich_database, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.execute(
            "SELECT id, name, salary, hired FROM emp ORDER BY id"
        ).rows() == rich_database.execute(
            "SELECT id, name, salary, hired FROM emp ORDER BY id"
        ).rows()

    def test_version_history_preserved(self, rich_database, tmp_path):
        save_database(rich_database, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        original = rich_database.catalog.table("emp")
        table = restored.catalog.table("emp")
        assert table.version_count == original.version_count
        # The pre-UPDATE version still scans the old salary.
        old = table.scan(version_id=1)
        salary = old.column("salary").to_pylist()
        assert None in salary

    def test_views_restored_and_queryable(self, rich_database, tmp_path):
        save_database(rich_database, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        rows = restored.execute(
            "SELECT name FROM emp_names ORDER BY id"
        ).rows()
        assert rows == [("ann",), ("bob",)]

    def test_security_restored(self, rich_database, tmp_path):
        save_database(rich_database, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        # alice reads through the view (role grant), not the base table.
        assert restored.execute(
            "SELECT COUNT(*) FROM emp_names", user="alice"
        ).scalar() == 2
        with pytest.raises(SecurityError):
            restored.execute("SELECT salary FROM emp", user="alice")

    def test_audit_chain_survives(self, rich_database, tmp_path):
        save_database(rich_database, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        assert restored.audit.log.verify_chain()
        assert len(restored.audit.log) == len(rich_database.audit.log)
        # New records continue the chain.
        restored.execute("SELECT COUNT(*) FROM emp")
        assert restored.audit.log.verify_chain()

    def test_query_log_restored_for_lazy_provenance(
        self, rich_database, tmp_path
    ):
        save_database(rich_database, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        from flock.provenance import ProvenanceCatalog, SQLProvenanceCapture

        catalog = ProvenanceCatalog()
        capture = SQLProvenanceCapture(catalog, database=restored)
        summary = capture.capture_log(restored.query_log)
        assert summary.query_count >= 4

    def test_writes_after_restore(self, rich_database, tmp_path):
        save_database(rich_database, tmp_path / "snap")
        restored = load_database(tmp_path / "snap")
        restored.execute(
            "INSERT INTO emp VALUES (3,'cyd',70.0,'2023-05-05')"
        )
        assert restored.execute("SELECT COUNT(*) FROM emp").scalar() == 3
        # Primary key constraint still enforced post-restore.
        from flock.errors import ConstraintError

        with pytest.raises(ConstraintError):
            restored.execute(
                "INSERT INTO emp VALUES (3,'dup',1.0,'2023-01-01')"
            )

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(FlockError):
            load_database(tmp_path / "nothing")

    def test_bad_format_version(self, rich_database, tmp_path):
        import json

        save_database(rich_database, tmp_path / "snap")
        manifest = tmp_path / "snap" / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["format_version"] = 99
        manifest.write_text(json.dumps(payload))
        with pytest.raises(FlockError):
            load_database(tmp_path / "snap")


class TestModelsSurvive:
    def test_deployed_models_restore_and_score(self, tmp_path):
        from flock.ml import LogisticRegression
        from flock.ml.datasets import load_dataset_into, make_loans
        from flock.mlgraph import to_graph
        from flock.registry import ModelRegistry

        database, registry = create_database()
        dataset = make_loans(100, random_state=0)
        load_dataset_into(database, dataset)
        model = LogisticRegression(max_iter=80).fit(
            dataset.feature_matrix(), dataset.target_vector()
        )
        registry.deploy(
            "m", to_graph(model, dataset.feature_names, name="m")
        )
        before = database.execute(
            "SELECT PREDICT(m) AS p FROM loans ORDER BY applicant_id"
        ).column("p")

        save_database(database, tmp_path / "snap")

        # Fresh process simulation: restore + rebuild the registry from the
        # flock_models system table.
        fresh_registry = ModelRegistry()
        restored = load_database(tmp_path / "snap", model_store=fresh_registry)
        fresh_registry.bind_database(restored)
        assert fresh_registry.load_from_database(restored) == 1
        after = restored.execute(
            "SELECT PREDICT(m) AS p FROM loans ORDER BY applicant_id"
        ).column("p")
        assert np.allclose(before, after)
