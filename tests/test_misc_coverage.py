"""Coverage for the smaller public surfaces: hybrid-IR helpers, datasets,
training-service edges, create_database wiring, script corpora."""

import numpy as np
import pytest

from flock import create_database
from flock.errors import FlockError, WorkloadError


class TestHybridIR:
    def test_summarize_counts_operators(self, loan_setup):
        from flock.db.binder import Binder
        from flock.db.sql.parser import parse_statement
        from flock.inference.ir import predict_nodes, scan_nodes, summarize

        database, *_ = loan_setup
        plan = Binder(database).bind_select(
            parse_statement(
                "SELECT applicant_id, PREDICT(loan_model) AS p FROM loans"
            )
        )
        summary = summarize(plan)
        assert summary.ml_operators == 1
        assert summary.relational_operators >= 2
        assert summary.total_operators == (
            summary.ml_operators + summary.relational_operators
        )
        assert len(predict_nodes(plan)) == 1
        assert len(scan_nodes(plan)) == 1

    def test_column_origin_through_operators(self, emp_db):
        from flock.db.binder import Binder
        from flock.db.sql.parser import parse_statement
        from flock.inference.ir import column_origin

        plan = Binder(emp_db).bind_select(
            parse_statement("SELECT name, salary * 2 AS d FROM emp")
        )
        assert column_origin(plan, 0) == ("emp", "name")
        assert column_origin(plan, 1) is None  # computed column


class TestDatasets:
    def test_generators_deterministic(self):
        from flock.ml.datasets import make_bigdata_jobs, make_loans, make_patients

        for maker in (make_loans, make_patients, make_bigdata_jobs):
            a, b = maker(50), maker(50)
            assert a.insert_rows() == b.insert_rows()

    def test_tabular_dataset_interface(self):
        from flock.ml.datasets import make_patients

        dataset = make_patients(40)
        assert dataset.n_rows == 40
        assert dataset.feature_matrix().shape == (40, 5)
        assert len(dataset.target_vector()) == 40
        assert "CREATE TABLE patients" in dataset.create_table_sql()
        assert dataset.create_table_sql("other").startswith(
            "CREATE TABLE other"
        )

    def test_load_dataset_into_chunks(self, db):
        from flock.ml.datasets import load_dataset_into, make_loans

        dataset = make_loans(750)  # crosses the 500-row chunk boundary
        load_dataset_into(db, dataset)
        assert db.execute("SELECT COUNT(*) FROM loans").scalar() == 750

    def test_make_regression_validation(self):
        from flock.ml.datasets import make_regression

        with pytest.raises(Exception):
            make_regression(0, 3)

    def test_sql_literal_escaping(self, db):
        from flock.ml.datasets import _sql_literal

        assert _sql_literal(None) == "NULL"
        assert _sql_literal("it's") == "'it''s'"
        assert _sql_literal(True) == "TRUE"
        assert _sql_literal(2.5) == "2.5"


class TestCreateDatabaseWiring:
    def test_returns_wired_pair(self):
        database, registry = create_database()
        assert database.model_store is registry
        assert database.catalog.has_table("flock_models")

    def test_custom_cross_optimizer_respected(self):
        from flock.inference import CrossOptimizer

        co = CrossOptimizer(enable_inlining=False)
        database, _ = create_database(co)
        assert database.cross_optimizer is co

    def test_repro_shim(self):
        import repro

        assert repro.__version__
        assert hasattr(repro, "Database")


class TestScriptCorpora:
    def test_corpus_sources_are_valid_python(self):
        import ast as python_ast

        from flock.corpus.scripts import enterprise_corpus, kaggle_like_corpus

        for case in kaggle_like_corpus(49) + enterprise_corpus(37):
            python_ast.parse(case.source)  # must not raise

    def test_ground_truth_nonempty(self):
        from flock.corpus.scripts import kaggle_like_corpus

        for case in kaggle_like_corpus(16):
            assert case.true_models
            assert case.true_datasets

    def test_failures_enumerated(self):
        from flock.corpus.scripts import evaluate_coverage, kaggle_like_corpus
        from flock.provenance import PythonProvenanceCapture

        result = evaluate_coverage(
            kaggle_like_corpus(16), PythonProvenanceCapture()
        )
        missing = (result.models_total - result.models_found) + (
            result.datasets_total - result.datasets_found
        )
        assert len(result.failures) == missing


class TestWorkloadEdges:
    def test_tpch_counts_scale(self):
        from flock.db import Database
        from flock.workloads import create_tpch_schema, generate_tpch_data

        db = Database()
        create_tpch_schema(db)
        counts = generate_tpch_data(db, scale=0.0003)
        assert counts["lineitem"] >= counts["orders"]
        assert counts["partsupp"] == counts["part"] * 4

    def test_tpcc_statement_count_exact(self):
        from flock.workloads import generate_tpcc_transactions

        assert len(generate_tpcc_transactions(137)) == 137


class TestRuntimeStats:
    def test_scorer_runtime_counts(self, loan_setup):
        database, *_ = loan_setup
        scorer = database.scorer
        runs_before = scorer.runtime.stats.runs
        database.execute("SELECT PREDICT(loan_model) FROM loans LIMIT 10")
        # Inlined linear models never touch the runtime; force a non-inlined
        # path via the GBM-style monitored plan is out of scope here, so the
        # assertion is on the stats object itself being live.
        assert scorer.runtime.stats.runs >= runs_before

    def test_graph_runtime_per_op_counters(self):
        from flock.mlgraph import GraphRuntime
        from flock.mlgraph.graph import Graph, Node, TensorSpec

        graph = Graph(
            "g",
            [TensorSpec("x")],
            [TensorSpec("y")],
            [
                Node("pack", ["x"], ["m"]),
                Node("linear", ["m"], ["y"], {"weights": [2.0], "bias": 0.0}),
            ],
        )
        rt = GraphRuntime()
        rt.run(graph, {"x": np.arange(4.0)})
        assert rt.stats.per_op["pack"] == 1
        assert rt.stats.per_op["linear"] == 1
        assert rt.stats.rows == 4
