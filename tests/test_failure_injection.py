"""Failure-injection tests: broken components must fail clean, not dirty."""

import numpy as np
import pytest

from flock import create_database
from flock.db import Database
from flock.errors import ConstraintError, ExecutionError, InferenceError


class TestScoringFailures:
    def test_broken_scorer_fails_query_not_database(self, loan_setup):
        database, registry, dataset, _ = loan_setup

        class BrokenScorer:
            def score(self, node, inputs, store):
                raise InferenceError("scorer exploded")

        # Disable inlining so the scorer is actually consulted.
        from flock.inference import CrossOptimizer

        database.optimizer.extra_rules = [
            CrossOptimizer(enable_inlining=False).apply
        ]
        original = database._scorer
        database.scorer = BrokenScorer()
        try:
            with pytest.raises(InferenceError, match="exploded"):
                database.execute("SELECT PREDICT(loan_model) FROM loans")
        finally:
            database.scorer = original
        # The database is still healthy.
        assert database.execute("SELECT COUNT(*) FROM loans").scalar() == 200
        assert database.audit.log.verify_chain()

    def test_broken_monitor_does_not_break_scoring(self, loan_setup):
        database, *_ = loan_setup

        class BrokenHub:
            def has_monitor(self, name):
                return True  # also disables inlining

            def on_score(self, *args, **kwargs):
                raise RuntimeError("monitor exploded")

        database.scorer.monitor_hub = BrokenHub()
        database.cross_optimizer.monitor_hub = BrokenHub()
        try:
            result = database.execute(
                "SELECT PREDICT(loan_model) AS p FROM loans LIMIT 5"
            )
            assert result.row_count == 5
        finally:
            database.scorer.monitor_hub = None
            database.cross_optimizer.monitor_hub = None

    def test_model_missing_inputs_fails_cleanly(self, loan_setup):
        database, *_ = loan_setup
        from flock.errors import BindError

        with pytest.raises(BindError):
            database.execute(
                "SELECT PREDICT(loan_model, income) FROM loans"
            )
        # No residue in the query path.
        assert database.execute("SELECT COUNT(*) FROM loans").scalar() == 200


class TestWriteFailures:
    def test_multi_row_insert_is_all_or_nothing(self, db):
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (1), (NULL), (3)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_update_failure_keeps_old_values(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (0), (4)")
        with pytest.raises(ExecutionError):
            db.execute("UPDATE t SET a = 10 / a")
        assert sorted(db.execute("SELECT a FROM t").column("a")) == [0, 1, 4]

    def test_explicit_txn_failure_then_rollback_then_reuse(self, db):
        db.execute("CREATE TABLE t (a INT NOT NULL)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ConstraintError):
            conn.execute("INSERT INTO t VALUES (NULL)")
        # The transaction is still open; the user decides what to do.
        assert conn.in_transaction
        conn.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
        conn.execute("INSERT INTO t VALUES (7)")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_primary_key_violation_mid_transaction(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (2)")
        with pytest.raises(ConstraintError):
            conn.execute("INSERT INTO t VALUES (2)")  # dup within txn view
        conn.execute("COMMIT")  # the successful part commits
        assert sorted(db.execute("SELECT id FROM t").column("id")) == [1, 2]


class TestRegistryFailures:
    def test_failed_training_never_deploys(self):
        from flock.lifecycle import FlockSession
        from flock.ml import LinearRegression
        from flock.ml.datasets import make_loans

        session = FlockSession()
        session.load_dataset(make_loans(50, random_state=0))

        class ExplodingModel(LinearRegression):
            def fit(self, X, y):
                raise RuntimeError("training cluster on fire")

        with pytest.raises(RuntimeError):
            session.train_and_deploy(
                "doomed", ExplodingModel(), "loans",
                ["income"], "approved",
            )
        assert not session.registry.has_model("doomed")
        assert session.database.execute(
            "SELECT COUNT(*) FROM flock_models"
        ).scalar() == 0
        run = session.training.runs("doomed")[0]
        assert run.status == "failed"

    def test_bad_graph_rejected_before_any_mutation(self):
        from flock.errors import RegistryError

        database, registry = create_database()
        with pytest.raises(RegistryError):
            registry.deploy_many([("good", None), ("bad", None)])
        assert registry.model_names() == []
        assert database.execute(
            "SELECT COUNT(*) FROM flock_models"
        ).scalar() == 0
