"""flock.connect(): the unified client over embedded, serving and
cluster topologies, plus the create_database/open_session compat shims."""

from __future__ import annotations

import pytest

import flock
from flock.client import Client
from flock.errors import FlockError, ReplicationError


class TestEmbeddedMemory:
    def test_connect_defaults_to_embedded_memory(self):
        with flock.connect() as client:
            assert client.mode == "embedded"
            assert client.db.wal is None
            client.execute("CREATE TABLE t (x INT)")
            client.execute("INSERT INTO t VALUES (1), (2)")
            assert client.execute("SELECT SUM(x) FROM t").scalar() == 3

    def test_submit_returns_resolved_future(self):
        with flock.connect() as client:
            client.execute("CREATE TABLE t (x INT)")
            future = client.submit("INSERT INTO t VALUES (7)")
            assert future.done()
            future.result()
            assert client.execute("SELECT x FROM t").scalar() == 7

    def test_submit_surfaces_errors_through_future(self):
        with flock.connect() as client:
            future = client.submit("SELECT * FROM missing")
            assert future.done()
            with pytest.raises(FlockError):
                future.result()

    def test_executemany_bulk_path(self):
        with flock.connect() as client:
            client.execute("CREATE TABLE b (k INT, v TEXT)")
            client.executemany(
                "INSERT INTO b VALUES (?, ?)",
                [(i, f"v{i}") for i in range(50)],
            )
            assert client.execute("SELECT COUNT(*) FROM b").scalar() == 50

    def test_stats_reports_engine_counters(self):
        with flock.connect() as client:
            client.execute("CREATE TABLE t (x INT)")
            client.execute("INSERT INTO t VALUES (1)")
            stats = client.stats()
            assert stats["committed"] >= 1
            assert "engine_workers" in stats


class TestEmbeddedDurable:
    def test_connect_path_persists_across_reopen(self, tmp_path):
        with flock.connect(tmp_path / "db") as client:
            assert client.mode == "embedded"
            assert client.db.wal is not None
            client.execute("CREATE TABLE d (x INT)")
            client.execute("INSERT INTO d VALUES (5)")
        with flock.connect(tmp_path / "db") as client:
            assert client.execute("SELECT x FROM d").scalar() == 5

    def test_registry_and_cross_optimizer_wired(self, tmp_path):
        with flock.connect(tmp_path / "db") as client:
            assert client.registry is client.session.registry
            assert client.cross_optimizer is not None
            assert client.database is client.db


class TestServingMode:
    def test_connect_serving_executes_through_server(self, tmp_path):
        with flock.connect(tmp_path / "db", serving=True, workers=2) as c:
            assert c.mode == "serving"
            c.execute("CREATE TABLE s (x INT)")
            c.execute("INSERT INTO s VALUES (1)")
            assert c.execute("SELECT COUNT(*) FROM s").scalar() == 1
            assert c.stats()["served"] >= 3

    def test_serving_submit_is_asynchronous(self, tmp_path):
        with flock.connect(tmp_path / "db", serving=True) as c:
            c.execute("CREATE TABLE s (x INT)")
            futures = [
                c.submit("INSERT INTO s VALUES (?)", [i]) for i in range(8)
            ]
            for future in futures:
                future.result(timeout=10.0)
            assert c.execute("SELECT COUNT(*) FROM s").scalar() == 8


class TestClusterMode:
    def test_connect_replicas_routes_and_replicates(self, tmp_path):
        with flock.connect(tmp_path / "db", replicas=2) as client:
            assert client.mode == "cluster"
            client.execute("CREATE TABLE c (x INT)")
            client.execute("INSERT INTO c VALUES (1), (2), (3)")
            client.cluster.wait_for_catchup(10.0)
            assert client.execute("SELECT SUM(x) FROM c").scalar() == 6
            stats = client.stats()
            assert stats["epoch"] == 1
            assert len(stats["followers"]) == 2

    def test_replicas_require_a_path(self):
        with pytest.raises(ReplicationError):
            flock.connect(replicas=2)


class TestLifecycle:
    def test_closed_client_rejects_execution(self):
        client = flock.connect()
        client.close()
        assert client.closed
        with pytest.raises(FlockError):
            client.execute("SELECT 1")
        client.close()  # idempotent

    def test_for_user_shares_stack(self):
        with flock.connect() as admin:
            admin.execute("CREATE TABLE t (x INT)")
            other = admin.for_user("analyst")
            assert isinstance(other, Client)
            assert other.db is admin.db
            assert other.user == "analyst"

    def test_repr_names_mode_and_location(self, tmp_path):
        with flock.connect(tmp_path / "db") as client:
            assert "embedded" in repr(client)


class TestCompatShims:
    def test_create_database_still_unpacks(self):
        db, registry = flock.create_database()
        db.execute("CREATE TABLE t (x INT)")
        assert registry is not None

    def test_create_database_session_object(self):
        session = flock.create_database()
        assert session.db is session.database
        assert session.cross_optimizer is not None

    def test_open_session_still_durable(self, tmp_path):
        session = flock.open_session(tmp_path / "db")
        session.db.execute("CREATE TABLE t (x INT)")
        session.db.execute("INSERT INTO t VALUES (9)")
        session.db.close()
        with flock.connect(tmp_path / "db") as client:
            assert client.execute("SELECT x FROM t").scalar() == 9
