"""Unit tests for the SQL lexer and parser."""

import pytest

from flock.db.sql import ast_nodes as ast
from flock.db.sql.lexer import TokenType, tokenize
from flock.db.sql.parser import parse_script, parse_statement, split_statements
from flock.errors import LexerError, ParseError


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT foo FROM Bar")
        kinds = [(t.type, t.value) for t in tokens[:-1]]
        assert kinds == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.IDENT, "foo"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.IDENT, "Bar"),
        ]

    def test_string_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'abc")

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 .5 1e3 1.5E-2")[:-1]]
        assert values == ["1", "2.5", ".5", "1e3", "1.5E-2"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- hi\n 1 /* block */ + 2")
        values = [t.value for t in tokens[:-1]]
        assert values == ["SELECT", "1", "+", "2"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_multichar_operators(self):
        values = [t.value for t in tokenize("a <= b <> c || d")[:-1]]
        assert values == ["a", "<=", "b", "<>", "c", "||", "d"]

    def test_quoted_identifier(self):
        tokens = tokenize('"My Column"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "My Column"

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestParserSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b AS bee FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[1].alias == "bee"
        assert isinstance(stmt.from_clause, ast.TableRef)

    def test_star(self):
        stmt = parse_statement("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.table == "t"

    def test_where_precedence(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse_statement("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept "
            "HAVING COUNT(*) > 1 ORDER BY dept DESC LIMIT 5 OFFSET 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5
        assert stmt.offset == 2

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        outer = stmt.from_clause
        assert isinstance(outer, ast.Join)
        assert outer.join_type == "LEFT"
        assert outer.left.join_type == "INNER"

    def test_comma_join_is_cross(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert stmt.from_clause.join_type == "CROSS"

    def test_subquery_in_from(self):
        stmt = parse_statement(
            "SELECT s.n FROM (SELECT COUNT(*) AS n FROM t) s"
        )
        assert isinstance(stmt.from_clause, ast.SubqueryRef)
        assert stmt.from_clause.alias == "s"

    def test_case_cast_between_in_like(self):
        stmt = parse_statement(
            "SELECT CASE WHEN a > 0 THEN 'p' ELSE 'n' END, "
            "CAST(a AS FLOAT) FROM t "
            "WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) AND c LIKE 'x%' "
            "AND d IS NOT NULL"
        )
        assert isinstance(stmt.items[0].expr, ast.CaseWhen)
        assert isinstance(stmt.items[1].expr, ast.Cast)

    def test_not_variants(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a NOT IN (1) AND b NOT LIKE 'x%' "
            "AND c NOT BETWEEN 1 AND 2"
        )
        conj = stmt.where
        assert conj.right.negated is True  # NOT BETWEEN

    def test_date_and_interval(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE d >= DATE '1994-01-01' + INTERVAL '3' MONTH"
        )
        text = str(stmt.where)
        assert "DATE" in text and "INTERVAL" in text

    def test_extract(self):
        stmt = parse_statement("SELECT EXTRACT(YEAR FROM d) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, ast.FunctionCall)
        assert call.name == "EXTRACT"
        assert call.args[0].value == "YEAR"

    def test_predict_expression(self):
        stmt = parse_statement(
            "SELECT PREDICT(my_model, a, b) FROM t WHERE PREDICT(my_model, a, b) > 0.5"
        )
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.Predict)
        assert expr.model_name == "my_model"
        assert len(expr.args) == 2

    def test_predict_with_output(self):
        stmt = parse_statement("SELECT PREDICT(m) WITH label FROM t")
        assert stmt.items[0].expr.output == "label"

    def test_count_distinct(self):
        stmt = parse_statement("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct is True

    def test_keyword_as_identifier(self):
        # Unreserved positions accept keyword-looking identifiers.
        stmt = parse_statement("SELECT date FROM calendar")
        assert isinstance(stmt.items[0].expr, ast.ColumnRef)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM t extra garbage ,")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("")


class TestParserOther:
    def test_insert_values(self):
        stmt = parse_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)"
        )
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2
        assert stmt.rows[1][1].value is None

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM s")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(stmt, ast.Delete)

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE IF NOT EXISTS t ("
            "id INT PRIMARY KEY, name VARCHAR(25) NOT NULL, price DECIMAL(15,2))"
        )
        assert stmt.if_not_exists
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].nullable is False
        assert stmt.columns[2].type_name == "DECIMAL"

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_transactions(self):
        assert isinstance(parse_statement("BEGIN"), ast.Begin)
        assert isinstance(parse_statement("BEGIN TRANSACTION"), ast.Begin)
        assert isinstance(parse_statement("COMMIT"), ast.Commit)
        assert isinstance(parse_statement("ROLLBACK"), ast.Rollback)

    def test_security_statements(self):
        assert isinstance(parse_statement("CREATE USER alice"), ast.CreateUser)
        assert isinstance(parse_statement("CREATE ROLE analyst"), ast.CreateRole)
        grant = parse_statement("GRANT SELECT ON emp TO alice")
        assert grant.privilege == "SELECT"
        assert grant.object_name == "emp"
        role_grant = parse_statement("GRANT analyst TO alice")
        assert role_grant.object_name is None
        revoke = parse_statement("REVOKE SELECT ON emp FROM alice")
        assert isinstance(revoke, ast.Revoke)

    def test_parse_script(self):
        statements = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);; SELECT a FROM t"
        )
        assert len(statements) == 3

    def test_split_statements_respects_strings(self):
        parts = split_statements(
            "INSERT INTO t VALUES ('a;b'); SELECT 1 FROM t -- c;d\n; "
        )
        assert len(parts) == 2
        assert "a;b" in parts[0]
