"""Concurrency stress: morsel-parallel reads racing writers and checkpoints.

The morsel executor pins its MVCC snapshot once, in the driver thread,
before fanning morsels out — so a parallel scan must behave exactly like a
serial one under concurrent commits: every read sees one committed version
of the table, never a mix (no torn reads). These tests hammer that claim:

- writer threads move value between rows in balanced transactions, so any
  consistent snapshot satisfies a global-sum invariant; reader threads run
  morsel-parallel aggregates and assert the invariant on every read;
- ``flock.testing.faultpoints`` injects sleeps at morsel boundaries to
  stretch the fan-out window far beyond what timing accidents would give;
- a durable variant adds checkpoint races and verifies recovery.
"""

from __future__ import annotations

import threading

import pytest

from flock.db import Database
from flock.errors import TransactionError
from flock.observability import metrics
from flock.testing import faultpoints

N_ACCOUNTS = 60
BALANCE = 100
TOTAL = N_ACCOUNTS * BALANCE


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    faultpoints.clear()
    yield
    faultpoints.clear()


def _make_accounts(db: Database) -> None:
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)")
    db.execute(
        "INSERT INTO accounts VALUES "
        + ", ".join(f"({i}, {BALANCE})" for i in range(N_ACCOUNTS))
    )


def _transfer_loop(db: Database, stop: threading.Event, seed: int,
                   errors: list) -> None:
    """Move amounts between random account pairs, balanced per transaction."""
    import random

    rng = random.Random(seed)
    conn = db.connect()
    try:
        while not stop.is_set():
            a, b = rng.sample(range(N_ACCOUNTS), 2)
            amount = rng.randrange(1, 10)
            try:
                conn.execute("BEGIN")
                conn.execute(
                    f"UPDATE accounts SET balance = balance - {amount} "
                    f"WHERE id = {a}"
                )
                conn.execute(
                    f"UPDATE accounts SET balance = balance + {amount} "
                    f"WHERE id = {b}"
                )
                conn.execute("COMMIT")
            except TransactionError:
                # Lost a write race; a failed COMMIT already cleared the
                # transaction, a failed statement did not.
                if conn.in_transaction:
                    conn.execute("ROLLBACK")
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(exc)
                return
    finally:
        if conn.in_transaction:
            conn.execute("ROLLBACK")


def _read_loop(db: Database, stop: threading.Event, sums: list,
               errors: list) -> None:
    try:
        while not stop.is_set():
            total = db.execute(
                "SELECT SUM(balance), COUNT(*) FROM accounts"
            ).rows()[0]
            sums.append(total)
    except Exception as exc:  # pragma: no cover - fail the test
        errors.append(exc)


def _run_race(db: Database, duration_s: float = 1.0,
              extra_thread=None) -> list:
    stop = threading.Event()
    sums: list = []
    errors: list = []
    threads = [
        threading.Thread(target=_transfer_loop, args=(db, stop, s, errors))
        for s in (1, 2)
    ] + [
        threading.Thread(target=_read_loop, args=(db, stop, sums, errors))
        for _ in range(2)
    ]
    if extra_thread is not None:
        threads.append(threading.Thread(
            target=extra_thread, args=(stop, errors)
        ))
    for t in threads:
        t.start()
    stop.wait(duration_s)
    stop.set()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive(), "stress thread wedged"
    assert not errors, errors
    assert sums, "readers never completed a query"
    for total, count in sums:
        assert count == N_ACCOUNTS
        assert total == TOTAL, f"torn read: SUM(balance) = {total}"
    return sums


def test_parallel_reads_are_snapshot_consistent_under_writes():
    """Every morsel-parallel SUM sees one committed snapshot while balanced
    transfers race it, with fan-out windows stretched by injected sleeps."""
    db = Database(workers=4, morsel_rows=7, min_parallel_rows=1)
    try:
        _make_accounts(db)
        # 2 ms per morsel, from the first hit: a 60-row table at 7-row
        # morsels holds each scan open ~18 ms — hundreds of commit windows.
        faultpoints.set_fault(
            "parallel.pre_morsel", "sleep", after=1, delay_ms=2.0
        )
        before = metrics().counter("parallel.fragments").value
        sums = _run_race(db, duration_s=1.0)
        after = metrics().counter("parallel.fragments").value
        assert after > before, "reads never took the parallel path"
        assert faultpoints.hit_count("parallel.pre_morsel") > len(sums)
    finally:
        db.close()


def test_parallel_predict_is_snapshot_consistent_under_writes():
    """PREDICT fans model scoring out per-morsel; racing writers that swap
    feature values between rows keep the prediction *multiset* invariant,
    so any consistent snapshot yields the same prediction sum."""
    from flock.lifecycle import FlockSession
    from flock.ml import LogisticRegression, Pipeline, StandardScaler
    from flock.ml.datasets import make_patients

    features = [
        "age", "prior_admissions", "length_of_stay",
        "chronic_conditions", "medication_count",
    ]
    session = FlockSession()
    session.load_dataset(make_patients(120, random_state=0))
    session.train_and_deploy(
        "risk",
        Pipeline([
            ("s", StandardScaler()),
            ("m", LogisticRegression(max_iter=100)),
        ]),
        "patients", features, "readmitted",
    )
    db = session.database
    db.set_workers(4)
    db.parallel.morsel_rows = 13
    db.parallel.min_parallel_rows = 1
    faultpoints.set_fault(
        "parallel.post_morsel", "sleep", after=1, delay_ms=1.0
    )

    query = "SELECT SUM(PREDICT(risk)), COUNT(*) FROM patients"
    baseline, count = db.execute(query).rows()[0]
    assert count == 120

    cols = ", ".join(features)

    def swap_loop(stop, seed, errors):
        import random

        rng = random.Random(seed)
        conn = db.connect()
        while not stop.is_set():
            a, b = rng.sample(range(1, 121), 2)  # patient_id is 1-based
            try:
                conn.execute("BEGIN")
                # Swap the two rows' *entire* feature vectors: the multiset
                # of feature vectors — hence of predictions — never changes
                # (swapping a single feature would not be invariant: the
                # model is nonlinear in each row). Conflict detection is
                # first-updater-wins against the base version at first
                # *write*, so pin the base with a no-op touch before
                # reading — otherwise a commit landing between our reads
                # and our writes would turn the swap into a lost update.
                conn.execute(
                    f"UPDATE patients SET age = age WHERE patient_id = {a}"
                )
                row_a = conn.execute(
                    f"SELECT {cols} FROM patients WHERE patient_id = {a}"
                ).rows()[0]
                row_b = conn.execute(
                    f"SELECT {cols} FROM patients WHERE patient_id = {b}"
                ).rows()[0]
                set_b = ", ".join(
                    f"{c} = {v!r}" for c, v in zip(features, row_b)
                )
                set_a = ", ".join(
                    f"{c} = {v!r}" for c, v in zip(features, row_a)
                )
                conn.execute(
                    f"UPDATE patients SET {set_b} WHERE patient_id = {a}"
                )
                conn.execute(
                    f"UPDATE patients SET {set_a} WHERE patient_id = {b}"
                )
                conn.execute("COMMIT")
            except TransactionError:
                if conn.in_transaction:
                    conn.execute("ROLLBACK")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
                return
        if conn.in_transaction:
            conn.execute("ROLLBACK")

    stop = threading.Event()
    errors: list = []
    observed: list = []

    def read_loop():
        try:
            while not stop.is_set():
                observed.append(db.execute(query).rows()[0])
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=swap_loop, args=(stop, s, errors))
        for s in (3, 4)
    ] + [threading.Thread(target=read_loop) for _ in range(2)]
    for t in threads:
        t.start()
    stop.wait(1.0)
    stop.set()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive(), "stress thread wedged"
    assert not errors, errors
    assert observed
    for total, count in observed:
        assert count == 120
        # The multiset of scored rows is invariant; only float summation
        # order can differ between snapshots.
        assert total == pytest.approx(baseline, abs=1e-8)


def test_parallel_reads_race_checkpoints_durably(tmp_path):
    """Parallel aggregates stay consistent while writers commit *and* the
    WAL checkpointer swaps snapshots underneath them; a crash-style reopen
    afterwards recovers the invariant state."""
    path = tmp_path / "stress"
    db = Database.open(path)
    try:
        db.set_workers(4)
        db.parallel.morsel_rows = 7
        db.parallel.min_parallel_rows = 1
        _make_accounts(db)
        faultpoints.set_fault(
            "parallel.pre_morsel", "sleep", after=1, delay_ms=1.0
        )

        def checkpoint_loop(stop, errors):
            try:
                while not stop.is_set():
                    db.checkpoint()
                    stop.wait(0.05)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        _run_race(db, duration_s=1.0, extra_thread=checkpoint_loop)
    finally:
        db.close()

    reopened = Database.open(path)
    try:
        total, count = reopened.execute(
            "SELECT SUM(balance), COUNT(*) FROM accounts"
        ).rows()[0]
        assert count == N_ACCOUNTS
        assert total == TOTAL
    finally:
        reopened.close()
