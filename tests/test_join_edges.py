"""LEFT JOIN residual-predicate and NULL-key edge cases.

The hash join splits an ON condition into equi-key pairs plus a residual
predicate evaluated over combined rows. These tests pin the tricky
interactions: an equi-match whose residual fails must *revert* to a
NULL-padded left row (not disappear), NULL join keys never match on either
side, and both behaviors hold for multi-key joins and for the vectorized
single-integer-key fast path.
"""

from __future__ import annotations

import pytest

from flock.db import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE l (lk INTEGER, lv INTEGER, ls TEXT)")
    database.execute("CREATE TABLE r (rk INTEGER, rv INTEGER, rs TEXT)")
    database.execute(
        "INSERT INTO l VALUES (1, 10, 'a'), (2, 20, 'b'), "
        "(NULL, 30, 'c'), (4, NULL, 'd')"
    )
    database.execute(
        "INSERT INTO r VALUES (1, 100, 'x'), (2, 5, 'y'), "
        "(NULL, 300, 'z'), (4, 400, 'w')"
    )
    return database


class TestLeftJoinResidual:
    def test_residual_failure_reverts_to_null_padding(self, db):
        # lk=2 equi-matches rk=2 but the residual (rv > lv) fails there,
        # and lk=4 equi-matches rk=4 with an unknown residual (lv NULL):
        # both rows must come back NULL-padded, not vanish.
        rows = db.execute(
            "SELECT lk, rv FROM l LEFT JOIN r ON lk = rk AND rv > lv "
            "ORDER BY lv"
        ).rows()
        assert rows == [(1, 100), (2, None), (None, None), (4, None)]

    def test_residual_partial_failure_keeps_surviving_match(self, db):
        # Duplicate right keys: one match fails the residual, one passes —
        # the survivor must suppress the NULL padding.
        db.execute("INSERT INTO r VALUES (2, 25, 'y2')")
        rows = db.execute(
            "SELECT lk, rv FROM l LEFT JOIN r ON lk = rk AND rv > lv "
            "WHERE lk = 2"
        ).rows()
        assert rows == [(2, 25)]

    def test_residual_failing_everywhere_pads_every_left_row(self, db):
        rows = db.execute(
            "SELECT lk, rk FROM l LEFT JOIN r ON lk = rk AND rv < 0 "
            "ORDER BY lv"
        ).rows()
        assert rows == [(1, None), (2, None), (None, None), (4, None)]


class TestNullJoinKeys:
    def test_null_left_key_never_matches(self, db):
        # l.lk NULL must not match r.rk NULL (SQL equality on NULL is
        # unknown); the left row survives NULL-padded.
        rows = db.execute(
            "SELECT lv, rs FROM l LEFT JOIN r ON lk = rk ORDER BY lv"
        ).rows()
        assert (30, None) in rows
        assert all(rs != "z" for _, rs in rows)

    def test_null_right_key_never_matches_inner(self, db):
        rows = db.execute(
            "SELECT lk, rk FROM l JOIN r ON lk = rk ORDER BY lk"
        ).rows()
        assert rows == [(1, 1), (2, 2), (4, 4)]

    def test_all_null_keys_on_both_sides(self, db):
        db.execute("DELETE FROM l WHERE lk IS NOT NULL")
        db.execute("DELETE FROM r WHERE rk IS NOT NULL")
        assert db.execute(
            "SELECT * FROM l JOIN r ON lk = rk"
        ).rows() == []
        rows = db.execute(
            "SELECT lv, rv FROM l LEFT JOIN r ON lk = rk"
        ).rows()
        assert rows == [(30, None)]


class TestMultiKeyJoins:
    @pytest.fixture
    def multi(self):
        database = Database()
        database.execute("CREATE TABLE a (k1 INTEGER, k2 TEXT, av INTEGER)")
        database.execute("CREATE TABLE b (k1 INTEGER, k2 TEXT, bv INTEGER)")
        database.execute(
            "INSERT INTO a VALUES (1, 'x', 1), (1, 'y', 2), "
            "(NULL, 'x', 3), (2, NULL, 4)"
        )
        database.execute(
            "INSERT INTO b VALUES (1, 'x', 10), (1, 'z', 20), "
            "(NULL, 'x', 30), (2, NULL, 40)"
        )
        return database

    def test_multi_key_null_in_either_key_never_matches(self, multi):
        rows = multi.execute(
            "SELECT av, bv FROM a LEFT JOIN b ON a.k1 = b.k1 "
            "AND a.k2 = b.k2 ORDER BY av"
        ).rows()
        # Only (1,'x') matches; NULL components block (NULL,'x')/(2,NULL).
        assert rows == [(1, 10), (2, None), (3, None), (4, None)]

    def test_multi_key_residual_revert(self, multi):
        rows = multi.execute(
            "SELECT av, bv FROM a LEFT JOIN b ON a.k1 = b.k1 "
            "AND a.k2 = b.k2 AND bv > 10 ORDER BY av"
        ).rows()
        assert rows == [(1, None), (2, None), (3, None), (4, None)]


class TestVectorizedIntKeyParity:
    """The single-integer-key fast path must agree with the generic hash
    join — including row order — on duplicates, misses and NULLs."""

    def test_duplicates_preserve_build_probe_order(self):
        database = Database()
        database.execute("CREATE TABLE l (k INTEGER, lv INTEGER)")
        database.execute("CREATE TABLE r (k INTEGER, rv INTEGER)")
        database.execute(
            "INSERT INTO l VALUES (5, 1), (3, 2), (5, 3), (NULL, 4)"
        )
        database.execute(
            "INSERT INTO r VALUES (5, 10), (5, 20), (3, 30), (NULL, 40)"
        )
        rows = database.execute(
            "SELECT lv, rv FROM l JOIN r ON l.k = r.k"
        ).rows()
        # Probe order: left row 0 against right matches in right order,
        # then left row 1, ... — the serial dict-build order.
        assert rows == [(1, 10), (1, 20), (2, 30), (3, 10), (3, 20)]

    def test_int_key_left_join_matches_text_key_twin(self):
        database = Database()
        database.execute("CREATE TABLE li (k INTEGER, v INTEGER)")
        database.execute("CREATE TABLE ri (k INTEGER, w INTEGER)")
        database.execute("CREATE TABLE lt (k TEXT, v INTEGER)")
        database.execute("CREATE TABLE rt (k TEXT, w INTEGER)")
        data_l = [(7, 1), (2, 2), (None, 3), (7, 4), (9, 5)]
        data_r = [(7, 10), (2, 20), (2, 21), (None, 30)]
        for k, v in data_l:
            database.execute(f"INSERT INTO li VALUES ({k or 'NULL'}, {v})")
            database.execute(
                "INSERT INTO lt VALUES ({}, {})".format(
                    "NULL" if k is None else f"'k{k}'", v
                )
            )
        for k, w in data_r:
            database.execute(f"INSERT INTO ri VALUES ({k or 'NULL'}, {w})")
            database.execute(
                "INSERT INTO rt VALUES ({}, {})".format(
                    "NULL" if k is None else f"'k{k}'", w
                )
            )
        int_rows = database.execute(
            "SELECT v, w FROM li LEFT JOIN ri ON li.k = ri.k"
        ).rows()
        text_rows = database.execute(
            "SELECT v, w FROM lt LEFT JOIN rt ON lt.k = rt.k"
        ).rows()
        assert int_rows == text_rows

    def test_int_key_group_by_matches_text_twin_ordering(self):
        database = Database()
        database.execute("CREATE TABLE gi (k INTEGER, v INTEGER)")
        database.execute("CREATE TABLE gt (k TEXT, v INTEGER)")
        data = [(3, 1), (1, 2), (None, 3), (3, 4), (None, 5), (2, 6)]
        for k, v in data:
            database.execute(
                f"INSERT INTO gi VALUES ({'NULL' if k is None else k}, {v})"
            )
            database.execute(
                "INSERT INTO gt VALUES ({}, {})".format(
                    "NULL" if k is None else f"'k{k}'", v
                )
            )
        int_rows = database.execute(
            "SELECT k, COUNT(*), SUM(v) FROM gi GROUP BY k"
        ).rows()
        text_rows = database.execute(
            "SELECT k, COUNT(*), SUM(v) FROM gt GROUP BY k"
        ).rows()
        # First-appearance group order: keys 3, 1, NULL, 2 in both.
        assert [r[1:] for r in int_rows] == [r[1:] for r in text_rows]
        assert [r[0] for r in int_rows] == [3, 1, None, 2]
