"""flock.cluster: WAL shipping, the read router, staleness bounds,
read-only followers, registry sync and failover promotion."""

from __future__ import annotations

import threading

import pytest

import flock
from flock.cluster import (
    FlockCluster,
    ReplicationHub,
)
from flock.errors import (
    FailoverError,
    ReadOnlyReplicaError,
    ReplicationError,
)


@pytest.fixture
def cluster(tmp_path):
    with FlockCluster(tmp_path / "db", replicas=2) as c:
        yield c


def table_rows(db, table):
    return sorted(db.execute(f"SELECT * FROM {table}").rows())


# ----------------------------------------------------------------------
# The hub
# ----------------------------------------------------------------------
class TestReplicationHub:
    def test_records_arrive_in_publish_order_with_lsns(self):
        hub = ReplicationHub()
        sub = hub.subscribe("r0")
        for i in range(5):
            hub.publish({"t": "commit", "i": i})
        got = [sub.next(timeout=1.0) for _ in range(5)]
        assert [lsn for lsn, _ in got] == [1, 2, 3, 4, 5]
        assert [rec["i"] for _, rec in got] == [0, 1, 2, 3, 4]
        assert hub.lsn == 5

    def test_closed_hub_rejects_publish(self):
        hub = ReplicationHub()
        hub.close()
        with pytest.raises(ReplicationError):
            hub.publish({"t": "commit"})

    def test_subscription_drains_queued_records_after_close(self):
        hub = ReplicationHub()
        sub = hub.subscribe("r0")
        hub.publish({"t": "commit", "i": 0})
        hub.close()
        assert sub.next(timeout=1.0) is not None
        assert sub.next(timeout=0.05) is None


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------
class TestReplication:
    def test_dml_reaches_every_follower(self, cluster):
        cluster.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        for k in range(10):
            cluster.execute(f"INSERT INTO t VALUES ({k}, 'v{k}')")
        cluster.execute("DELETE FROM t WHERE k = 3")
        cluster.execute("UPDATE t SET v = 'patched' WHERE k = 7")
        assert cluster.wait_for_catchup(10.0)
        expect = table_rows(cluster.database, "t")
        assert len(expect) == 9
        for follower in cluster.followers:
            assert table_rows(follower.database, "t") == expect

    def test_ddl_after_bootstrap_replicates(self, cluster):
        cluster.execute("CREATE TABLE late (x INT)")
        cluster.execute("INSERT INTO late VALUES (1)")
        assert cluster.wait_for_catchup(10.0)
        for follower in cluster.followers:
            assert "late" in follower.database.catalog.table_names()
            assert table_rows(follower.database, "late") == [(1,)]

    def test_snapshot_state_present_before_any_streaming(self, tmp_path):
        # Data committed before the cluster opens arrives via the snapshot,
        # not the stream.
        with flock.connect(tmp_path / "db") as seed:
            seed.execute("CREATE TABLE pre (x INT)")
            seed.execute("INSERT INTO pre VALUES (42)")
        with FlockCluster(tmp_path / "db", replicas=1) as cluster:
            assert cluster.hub.lsn == 0
            for follower in cluster.followers:
                assert table_rows(follower.database, "pre") == [(42,)]

    def test_rolled_back_statement_not_shipped(self, cluster):
        cluster.execute("CREATE TABLE u (k INT PRIMARY KEY)")
        cluster.execute("INSERT INTO u VALUES (1)")
        before = cluster.hub.lsn
        with pytest.raises(Exception):
            cluster.execute("INSERT INTO u VALUES (1)")  # PK violation
        assert cluster.hub.lsn == before
        assert cluster.wait_for_catchup(10.0)
        for follower in cluster.followers:
            assert table_rows(follower.database, "u") == [(1,)]

    def test_follower_audit_log_not_polluted_by_replication(self, cluster):
        cluster.execute("CREATE TABLE a (x INT)")
        cluster.execute("INSERT INTO a VALUES (1)")
        assert cluster.wait_for_catchup(10.0)
        for follower in cluster.followers:
            assert follower.database.audit.log.verify_chain()


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
class TestRouter:
    def test_reads_fan_to_followers_writes_stay_primary(self, cluster):
        cluster.execute("CREATE TABLE r (k INT)")
        for k in range(4):
            cluster.execute(f"INSERT INTO r VALUES ({k})")
        assert cluster.wait_for_catchup(10.0)
        served_before = [f.server._served for f in cluster.followers]
        for _ in range(6):
            assert cluster.execute("SELECT COUNT(*) FROM r").scalar() == 4
        served_after = [f.server._served for f in cluster.followers]
        # Round-robin: with 6 reads over 2 followers, both served some.
        assert all(b > a for a, b in zip(served_before, served_after))

    def test_unparseable_statement_routed_to_primary_raises(self, cluster):
        with pytest.raises(Exception):
            cluster.execute("THIS IS NOT SQL")

    def test_stale_follower_skipped_under_staleness_bound(self, tmp_path):
        with FlockCluster(
            tmp_path / "db", replicas=1, max_staleness=0
        ) as cluster:
            cluster.execute("CREATE TABLE s (k INT)")
            cluster.execute("INSERT INTO s VALUES (1)")
            assert cluster.wait_for_catchup(10.0)
            follower = cluster.followers[0]
            follower.pause()
            cluster.execute("INSERT INTO s VALUES (2)")  # follower now lags
            assert follower.lag > 0
            primary_served = cluster.primary.stats()["served"]
            # Read must fall back to the primary and see the fresh row.
            assert cluster.execute("SELECT COUNT(*) FROM s").scalar() == 2
            assert cluster.primary.stats()["served"] == primary_served + 1
            follower.resume()
            assert cluster.wait_for_catchup(10.0)
            # Caught up again: the follower takes reads once more.
            before = follower.server._served
            assert cluster.execute("SELECT COUNT(*) FROM s").scalar() == 2
            assert follower.server._served == before + 1

    def test_unparseable_statement_raises_parse_error_and_cluster_lives(
        self, cluster
    ):
        from flock.errors import ParseError

        cluster.execute("CREATE TABLE ok (k INT)")
        with pytest.raises(ParseError):
            cluster.execute("FROBNICATE ALL THE THINGS")
        # The router fell back to the primary for the error; the cluster
        # keeps serving afterwards.
        cluster.execute("INSERT INTO ok VALUES (1)")
        assert cluster.execute("SELECT COUNT(*) FROM ok").scalar() == 1

    def test_read_with_subquery_on_writable_table_serves_from_follower(
        self, cluster
    ):
        # A SELECT whose WHERE holds an IN (SELECT ...) over a table that
        # also takes writes is still read-only: it must classify as such
        # and fan to a follower, with post-catchup results matching.
        cluster.execute("CREATE TABLE wq (k INT, grp INT)")
        for k in range(6):
            cluster.execute(f"INSERT INTO wq VALUES ({k}, {k % 2})")
        assert cluster.wait_for_catchup(10.0)
        sql = (
            "SELECT COUNT(*) FROM wq "
            "WHERE k IN (SELECT k FROM wq WHERE grp = 0)"
        )
        served_before = sum(f.server._served for f in cluster.followers)
        assert cluster.execute(sql).scalar() == 3
        served_after = sum(f.server._served for f in cluster.followers)
        assert served_after == served_before + 1

    def test_staleness_bound_falls_back_past_dead_follower(self, tmp_path):
        with FlockCluster(
            tmp_path / "db", replicas=2, max_staleness=0
        ) as cluster:
            cluster.execute("CREATE TABLE d (k INT)")
            cluster.execute("INSERT INTO d VALUES (1)")
            assert cluster.wait_for_catchup(10.0)
            # One follower dies outright, the other lags past the bound:
            # nothing is eligible, so reads must land on the primary.
            dead, laggard = cluster.followers
            dead.error = RuntimeError("injected crash")
            laggard.pause()
            cluster.execute("INSERT INTO d VALUES (2)")
            primary_served = cluster.primary.stats()["served"]
            assert cluster.execute("SELECT COUNT(*) FROM d").scalar() == 2
            assert cluster.primary.stats()["served"] == primary_served + 1
            laggard.resume()

    def test_unhealthy_follower_routed_around(self, cluster):
        cluster.execute("CREATE TABLE h (k INT)")
        assert cluster.wait_for_catchup(10.0)
        broken = cluster.followers[0]
        broken.error = RuntimeError("injected divergence")
        for _ in range(4):
            cluster.execute("SELECT COUNT(*) FROM h")
        assert not broken.healthy
        status = [f["healthy"] for f in cluster.stats()["followers"]]
        assert status.count(False) == 1


# ----------------------------------------------------------------------
# Read-only followers
# ----------------------------------------------------------------------
class TestReadOnlyFollower:
    def test_direct_write_to_follower_rejected(self, cluster):
        cluster.execute("CREATE TABLE w (k INT)")
        assert cluster.wait_for_catchup(10.0)
        follower = cluster.followers[0]
        with pytest.raises(ReadOnlyReplicaError):
            follower.server.execute("INSERT INTO w VALUES (1)")
        with pytest.raises(ReadOnlyReplicaError):
            follower.server.execute("CREATE TABLE nope (x INT)")
        # Reads still fine.
        assert follower.server.execute(
            "SELECT COUNT(*) FROM w"
        ).scalar() == 0


# ----------------------------------------------------------------------
# Registry sync
# ----------------------------------------------------------------------
class TestRegistrySync:
    def test_deploy_after_bootstrap_serves_predict_on_followers(
        self, cluster
    ):
        from flock.ml import LinearRegression
        from flock.ml.datasets import make_regression
        from flock.mlgraph import to_graph

        X, y, _ = make_regression(40, 2, random_state=3)
        graph = to_graph(LinearRegression().fit(X, y), ["f0", "f1"])
        cluster.execute("CREATE TABLE feats (f0 FLOAT, f1 FLOAT)")
        cluster.execute("INSERT INTO feats VALUES (0.1, 0.2), (0.3, 0.4)")
        cluster.registry.deploy("late_model", graph)
        assert cluster.wait_for_catchup(10.0)
        for follower in cluster.followers:
            assert follower.registry.has_model("late_model")
            rows = follower.server.execute(
                "SELECT PREDICT(late_model) FROM feats"
            ).rows()
            assert len(rows) == 2


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
class TestPromotion:
    def test_promotion_preserves_committed_writes(self, cluster):
        cluster.execute("CREATE TABLE p (k INT PRIMARY KEY)")
        for k in range(20):
            cluster.execute(f"INSERT INTO p VALUES ({k})")
        report = cluster.promote()
        assert report["epoch"] == 2
        assert report["promoted"]["name"].startswith("replica-")
        assert cluster.database.execute(
            "SELECT COUNT(*) FROM p"
        ).scalar() == 20
        # The rebuilt tier keeps replicating.
        cluster.execute("INSERT INTO p VALUES (20)")
        assert cluster.wait_for_catchup(10.0)
        for follower in cluster.followers:
            assert follower.database.execute(
                "SELECT COUNT(*) FROM p"
            ).scalar() == 21

    def test_promotion_under_concurrent_reads(self, cluster):
        cluster.execute("CREATE TABLE cr (k INT)")
        cluster.execute("INSERT INTO cr VALUES (1)")
        assert cluster.wait_for_catchup(10.0)
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    cluster.execute("SELECT COUNT(*) FROM cr")
                except Exception as exc:  # draining servers may reject
                    errors.append(exc)

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            cluster.promote()
        finally:
            stop.set()
            thread.join(5.0)
        assert cluster.execute("SELECT COUNT(*) FROM cr").scalar() == 1

    def test_closed_cluster_refuses_promotion(self, tmp_path):
        cluster = FlockCluster(tmp_path / "db", replicas=1)
        cluster.close()
        with pytest.raises(FailoverError):
            cluster.promote()


# ----------------------------------------------------------------------
# Construction errors
# ----------------------------------------------------------------------
class TestConstruction:
    def test_cluster_requires_path_and_replicas(self, tmp_path):
        with pytest.raises(ReplicationError):
            FlockCluster(None, replicas=2)
        with pytest.raises(ReplicationError):
            FlockCluster(tmp_path / "db", replicas=0)
