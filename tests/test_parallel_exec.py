"""Morsel-driven parallel execution: determinism, merging and plumbing.

Three layers of coverage:

- property tests (hypothesis) — random tables with arbitrary shapes, NULL
  ratios and int/float/bool/text mixes are run through a serial engine, a
  morsel-parallel twin with tiny forced morsels, and a numpy reference;
  results must be *bit-identical* between serial and parallel (repr-level:
  row order, -0.0 vs 0.0, exact mantissas), and numerically correct vs
  numpy;
- unit tests of the mergeable-state machinery — morsel bounds, column and
  batch concatenation, the worker pool's ordering and error contracts, the
  cost model's serial-vs-parallel decision;
- engine plumbing — ``SET flock.workers``, environment configuration,
  EXPLAIN ANALYZE parallelism annotations, the nested-parallelism guard.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.db import Database
from flock.db.exec.parallel import (
    ParallelConfig,
    concat_columns,
    morsel_bounds,
)
from flock.db.exec.pool import WorkerPool, in_worker_thread
from flock.db.optimizer.cost import (
    DEFAULT_MORSEL_ROWS,
    choose_morsel_rows,
)
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.errors import BindError, ExecutionError


# ----------------------------------------------------------------------
# Twin-engine helpers
# ----------------------------------------------------------------------
def _twin(morsel_rows: int = 3):
    serial = Database(workers=1)
    parallel = Database(
        workers=4, morsel_rows=morsel_rows, min_parallel_rows=1
    )
    return serial, parallel


def _load(db, rows):
    db.execute("CREATE TABLE t (i INT, f FLOAT, b BOOLEAN, s TEXT)")
    if not rows:
        return
    values = ", ".join(
        "({}, {}, {}, {})".format(
            "NULL" if i is None else i,
            "NULL" if f is None else repr(f),
            "NULL" if b is None else ("TRUE" if b else "FALSE"),
            "NULL" if s is None else f"'{s}'",
        )
        for i, f, b, s in rows
    )
    db.execute(f"INSERT INTO t VALUES {values}")


def _rows(db, sql):
    return repr(db.execute(sql).rows())


row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(-100, 100)),
    st.one_of(
        st.none(),
        st.floats(-1e6, 1e6, allow_nan=False).map(lambda x: round(x, 6)),
    ),
    st.one_of(st.none(), st.booleans()),
    st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
)

# Shapes deliberately include empty (0 rows), single-row, and sizes around
# morsel boundaries (morsel_rows=3 → 2/3/4-row tables hit the "fewer rows
# than one morsel", "exactly one morsel" and "ragged tail" cases).
table_strategy = st.lists(row_strategy, min_size=0, max_size=40)


@settings(deadline=None, max_examples=40)
@given(table_strategy)
def test_aggregates_bit_identical_and_match_numpy(rows):
    serial, parallel = _twin()
    try:
        for db in (serial, parallel):
            _load(db, rows)
        sql = (
            "SELECT COUNT(*), COUNT(i), COUNT(DISTINCT i), SUM(i), "
            "SUM(f), AVG(f), MIN(f), MAX(f), STDDEV(f), MIN(s), MAX(s) "
            "FROM t"
        )
        assert _rows(serial, sql) == _rows(parallel, sql)

        got = serial.execute(sql).rows()[0]
        ints = [i for i, _, _, _ in rows if i is not None]
        floats = [f for _, f, _, _ in rows if f is not None]
        texts = [s for _, _, _, s in rows if s is not None]
        assert got[0] == len(rows)
        assert got[1] == len(ints)
        assert got[2] == len(set(ints))
        assert got[3] == (sum(ints) if ints else None)
        if floats:
            assert math.isclose(
                got[4], float(np.sum(floats)), rel_tol=1e-9, abs_tol=1e-9
            )
            assert math.isclose(
                got[5], float(np.mean(floats)), rel_tol=1e-9, abs_tol=1e-9
            )
            assert got[6] == min(floats)
            assert got[7] == max(floats)
        else:
            assert got[4] is None and got[5] is None
            assert got[6] is None and got[7] is None
        assert got[9] == (min(texts) if texts else None)
        assert got[10] == (max(texts) if texts else None)
    finally:
        serial.close()
        parallel.close()


@settings(deadline=None, max_examples=40)
@given(table_strategy)
def test_grouped_aggregates_bit_identical(rows):
    serial, parallel = _twin()
    try:
        for db in (serial, parallel):
            _load(db, rows)
        # Group order is first-appearance order: identical output order is
        # part of the contract, so no ORDER BY here on purpose.
        for sql in (
            "SELECT s, COUNT(*), SUM(f), AVG(i), COUNT(DISTINCT i) "
            "FROM t GROUP BY s",
            "SELECT b, s, STDDEV(f), MIN(i), MAX(f) FROM t GROUP BY b, s",
            "SELECT i, COUNT(*) FROM t GROUP BY i HAVING COUNT(*) > 1",
        ):
            assert _rows(serial, sql) == _rows(parallel, sql), sql
    finally:
        serial.close()
        parallel.close()


@settings(deadline=None, max_examples=40)
@given(table_strategy, st.integers(1, 10), st.integers(0, 4))
def test_topk_and_pipelines_bit_identical(rows, limit, offset):
    serial, parallel = _twin()
    try:
        for db in (serial, parallel):
            _load(db, rows)
        for sql in (
            f"SELECT i, f, s FROM t ORDER BY f DESC, i "
            f"LIMIT {limit} OFFSET {offset}",
            f"SELECT i, s FROM t ORDER BY s, f LIMIT {limit}",
            f"SELECT i, f FROM t LIMIT {limit} OFFSET {offset}",
            "SELECT i * 2 + 1, f FROM t WHERE i > 0",
            "SELECT DISTINCT s FROM t",
            "SELECT i, f FROM t ORDER BY i, f, s",
        ):
            assert _rows(serial, sql) == _rows(parallel, sql), sql
    finally:
        serial.close()
        parallel.close()


@settings(deadline=None, max_examples=20)
@given(st.lists(st.integers(-5, 5), min_size=1, max_size=30))
def test_error_surfacing_bit_identical(values):
    """Division by zero raises the same error, parallel or not — the
    lowest-index-morsel rule makes the parallel engine surface exactly the
    failure serial execution would hit first."""
    serial, parallel = _twin(morsel_rows=2)
    try:
        for db in (serial, parallel):
            db.execute("CREATE TABLE z (v INT)")
            db.execute(
                "INSERT INTO z VALUES "
                + ", ".join(f"({v})" for v in values)
            )
        outcomes = []
        for db in (serial, parallel):
            try:
                outcomes.append(("ok", repr(db.execute(
                    "SELECT 10 / v FROM z"
                ).rows())))
            except ExecutionError as exc:
                outcomes.append(("err", str(exc)))
        assert outcomes[0] == outcomes[1]
        if any(v == 0 for v in values):
            assert outcomes[0][0] == "err"
    finally:
        serial.close()
        parallel.close()


# ----------------------------------------------------------------------
# Mergeable-state machinery
# ----------------------------------------------------------------------
class TestMorselBounds:
    def test_partitions_exactly(self):
        assert morsel_bounds(10, 3) == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert morsel_bounds(9, 3) == [(0, 3), (3, 6), (6, 9)]
        assert morsel_bounds(2, 3) == [(0, 2)]
        assert morsel_bounds(0, 3) == []

    def test_bounds_cover_every_row_once(self):
        for n in range(0, 50):
            for m in range(1, 9):
                bounds = morsel_bounds(n, m)
                covered = [i for lo, hi in bounds for i in range(lo, hi)]
                assert covered == list(range(n)), (n, m)


class TestConcat:
    def test_concat_columns_matches_pairwise(self):
        rng = np.random.default_rng(0)
        chunks = []
        for size in (0, 3, 1, 7, 0, 4):
            values = rng.normal(size=size)
            nulls = rng.random(size) < 0.3
            chunks.append(ColumnVector(DataType.FLOAT, values, nulls))
        merged = concat_columns(DataType.FLOAT, chunks)
        reference = chunks[0]
        for chunk in chunks[1:]:
            reference = reference.concat(chunk)
        assert np.array_equal(merged.values, reference.values)
        assert np.array_equal(merged.nulls, reference.nulls)

    def test_concat_columns_empty(self):
        merged = concat_columns(DataType.INTEGER, [])
        assert len(merged) == 0 and merged.dtype is DataType.INTEGER

    def test_batch_concat_all_matches_pairwise(self):
        def batch(lo, hi):
            return Batch(
                ["x"],
                [ColumnVector.from_values(
                    DataType.INTEGER, list(range(lo, hi))
                )],
            )

        pieces = [batch(0, 3), batch(3, 3), batch(3, 8), batch(8, 9)]
        merged = Batch.concat_all(pieces)
        assert list(merged.columns[0].values) == list(range(9))

    def test_morsels_are_zero_copy_views(self):
        batch = Batch(
            ["x"],
            [ColumnVector.from_values(DataType.INTEGER, list(range(10)))],
        )
        morsels = list(batch.morsels(4))
        assert [m.num_rows for m in morsels] == [4, 4, 2]
        assert morsels[1].columns[0].values.base is not None


class TestWorkerPool:
    def test_results_in_submission_order(self):
        import time

        pool = WorkerPool(4)
        try:
            def make(i):
                def task():
                    time.sleep(0.01 * ((7 - i) % 4))  # finish out of order
                    return i
                return task

            assert pool.run_ordered([make(i) for i in range(8)]) == list(
                range(8)
            )
        finally:
            pool.shutdown()

    def test_lowest_index_error_wins(self):
        pool = WorkerPool(4)
        try:
            def ok():
                return 1

            def boom(tag):
                def task():
                    raise ValueError(tag)
                return task

            with pytest.raises(ValueError, match="first"):
                pool.run_ordered([ok, boom("first"), ok, boom("second")])
        finally:
            pool.shutdown()

    def test_workers_are_marked(self):
        pool = WorkerPool(2)
        try:
            assert not in_worker_thread()
            assert pool.run_ordered(
                [lambda: in_worker_thread()] * 4
            ) == [True] * 4
        finally:
            pool.shutdown()


class TestCostModel:
    def test_serial_for_small_or_single_worker(self):
        assert choose_morsel_rows(10**6, has_predict=False, workers=1) == 0
        assert choose_morsel_rows(100, has_predict=False, workers=4) == 0
        assert choose_morsel_rows(0, has_predict=False, workers=4) == 0

    def test_parallel_above_threshold(self):
        rows = 10**6
        chosen = choose_morsel_rows(rows, has_predict=False, workers=4)
        assert chosen == DEFAULT_MORSEL_ROWS
        assert len(morsel_bounds(rows, chosen)) >= 2

    def test_predict_lowers_threshold(self):
        rows = 4096
        assert choose_morsel_rows(rows, has_predict=False, workers=4) == 0
        assert choose_morsel_rows(rows, has_predict=True, workers=4) > 0

    def test_explicit_floor_and_morsel_size_win(self):
        chosen = choose_morsel_rows(
            40, has_predict=False, workers=4,
            morsel_rows=7, min_parallel_rows=1,
        )
        assert 0 < chosen <= 7

    def test_never_a_single_morsel(self):
        for rows in range(1, 400):
            chosen = choose_morsel_rows(
                rows, has_predict=False, workers=4,
                morsel_rows=300, min_parallel_rows=1,
            )
            if chosen:
                assert len(morsel_bounds(rows, chosen)) >= 2, rows


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEngineConfiguration:
    def test_env_configuration(self, monkeypatch):
        monkeypatch.setenv("FLOCK_WORKERS", "3")
        monkeypatch.setenv("FLOCK_MORSEL_ROWS", "512")
        monkeypatch.setenv("FLOCK_PARALLEL_MIN_ROWS", "64")
        config = ParallelConfig.from_env()
        assert config.workers == 3
        assert config.morsel_rows == 512
        assert config.min_parallel_rows == 64

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("FLOCK_WORKERS", "3")
        assert ParallelConfig.from_env(workers=2).workers == 2

    def test_set_workers_statement(self):
        db = Database(workers=1)  # explicit: FLOCK_WORKERS may be set in CI
        try:
            assert db.workers == 1
            result = db.execute("SET flock.workers = 4")
            assert result.detail == "flock.workers = 4"
            assert db.workers == 4
            db.execute("SET flock.morsel_rows = 128")
            db.execute("SET flock.parallel_min_rows = 0")
            assert db.parallel.morsel_rows == 128
            assert db.parallel.min_parallel_rows == 0
        finally:
            db.close()

    def test_set_rejects_bad_values(self):
        db = Database()
        try:
            with pytest.raises(BindError):
                db.execute("SET flock.workers = 0")
            with pytest.raises(BindError):
                db.execute("SET flock.unknown_thing = 1")
        finally:
            db.close()

    def test_set_requires_admin(self):
        db = Database()
        try:
            db.execute("CREATE USER bob")
            from flock.errors import SecurityError

            with pytest.raises(SecurityError):
                db.execute("SET flock.workers = 2", user="bob")
        finally:
            db.close()

    def test_explain_analyze_reports_parallelism(self):
        db = Database(workers=4, morsel_rows=5, min_parallel_rows=1)
        try:
            db.execute("CREATE TABLE t (v INT)")
            db.execute(
                "INSERT INTO t VALUES "
                + ", ".join(f"({i})" for i in range(40))
            )
            result = db.execute(
                "EXPLAIN ANALYZE SELECT SUM(v) FROM t"
            )
            text = "\n".join(r[0] for r in result.rows())
            assert "workers=4" in text
            assert "morsels=8" in text
        finally:
            db.close()

    def test_parallel_metrics_recorded(self):
        from flock.observability import metrics

        db = Database(workers=4, morsel_rows=5, min_parallel_rows=1)
        try:
            db.execute("CREATE TABLE t (v INT)")
            db.execute(
                "INSERT INTO t VALUES "
                + ", ".join(f"({i})" for i in range(40))
            )
            before = metrics().counter("parallel.fragments").value
            db.execute("SELECT SUM(v) FROM t")
            after = metrics().counter("parallel.fragments").value
            assert after > before
        finally:
            db.close()

    def test_no_nested_parallelism(self):
        """A query running inside a pool worker must not fan out again."""
        db = Database(workers=4, morsel_rows=5, min_parallel_rows=1)
        try:
            db.execute("CREATE TABLE t (v INT)")
            db.execute(
                "INSERT INTO t VALUES "
                + ", ".join(f"({i})" for i in range(40))
            )
            pool = db._acquire_pool()

            def inner():
                result = db.execute("EXPLAIN ANALYZE SELECT SUM(v) FROM t")
                return "\n".join(r[0] for r in result.rows())

            (text,) = pool.run_ordered([inner])
            assert "workers=" not in text
        finally:
            db.close()
