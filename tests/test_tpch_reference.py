"""TPC-H result validation against independent numpy references.

The engine's answers for representative query shapes (scan-aggregate,
join-group-sort, selective scan, CASE-in-aggregate) are recomputed with
plain numpy over the raw table contents — a completely separate code path
from the SQL stack.
"""

import numpy as np
import pytest

from flock.db import Database
from flock.db.types import date_to_days
from flock.workloads import create_tpch_schema, generate_tpch_data


@pytest.fixture(scope="module")
def tpch():
    db = Database()
    create_tpch_schema(db)
    generate_tpch_data(db, scale=0.0006, seed=17)
    arrays = {}
    for table in ("lineitem", "orders", "customer"):
        batch = db.catalog.table(table).scan()
        arrays[table] = {
            name: np.array(batch.column(name).values)
            for name in batch.names
        }
        # Recover null masks for nullable numeric work.
        arrays[table]["__nulls__"] = {
            name: batch.column(name).nulls.copy() for name in batch.names
        }
    return db, arrays


class TestQ1Reference:
    def test_full_aggregate_rows(self, tpch):
        db, arrays = tpch
        cutoff = date_to_days("1998-12-01") - 90
        got = db.execute(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sq, "
            "SUM(l_extendedprice * (1 - l_discount)) AS disc, "
            "AVG(l_discount) AS ad, COUNT(*) AS n "
            "FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' "
            "- INTERVAL '90' DAY "
            "GROUP BY l_returnflag, l_linestatus "
            "ORDER BY l_returnflag, l_linestatus"
        ).rows()

        li = arrays["lineitem"]
        mask = li["l_shipdate"] <= cutoff
        keys = sorted(
            set(zip(li["l_returnflag"][mask].tolist(),
                    li["l_linestatus"][mask].tolist()))
        )
        expected = []
        for rf, ls in keys:
            m = mask & (li["l_returnflag"] == rf) & (li["l_linestatus"] == ls)
            qty = li["l_quantity"][m]
            price = li["l_extendedprice"][m]
            disc = li["l_discount"][m]
            expected.append(
                (
                    rf, ls,
                    float(qty.sum()),
                    float((price * (1 - disc)).sum()),
                    float(disc.mean()),
                    int(m.sum()),
                )
            )
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert g[0] == e[0] and g[1] == e[1]
            assert g[2] == pytest.approx(e[2])
            assert g[3] == pytest.approx(e[3])
            assert g[4] == pytest.approx(e[4])
            assert g[5] == e[5]


class TestQ6Reference:
    def test_selective_sum(self, tpch):
        db, arrays = tpch
        start = date_to_days("1994-01-01")
        got = db.execute(
            "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
            "WHERE l_shipdate >= DATE '1994-01-01' "
            "AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR "
            "AND l_discount BETWEEN 0.02 AND 0.06 AND l_quantity < 30"
        ).scalar()
        li = arrays["lineitem"]
        mask = (
            (li["l_shipdate"] >= start)
            & (li["l_shipdate"] < start + 365)
            & (li["l_discount"] >= 0.02)
            & (li["l_discount"] <= 0.06)
            & (li["l_quantity"] < 30)
        )
        expected = float(
            (li["l_extendedprice"][mask] * li["l_discount"][mask]).sum()
        )
        if got is None:
            assert not mask.any()
        else:
            assert got == pytest.approx(expected)


class TestQ3Reference:
    def test_join_group_topk(self, tpch):
        db, arrays = tpch
        cut = date_to_days("1995-03-15")
        got = db.execute(
            "SELECT l.l_orderkey, "
            "SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
            "FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
            "JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
            "WHERE c.c_mktsegment = 'BUILDING' "
            "AND o.o_orderdate < DATE '1995-03-15' "
            "AND l.l_shipdate > DATE '1995-03-15' "
            "GROUP BY l.l_orderkey ORDER BY revenue DESC, l.l_orderkey "
            "LIMIT 10"
        ).rows()

        cust = arrays["customer"]
        orders = arrays["orders"]
        li = arrays["lineitem"]
        building = set(
            cust["c_custkey"][cust["c_mktsegment"] == "BUILDING"].tolist()
        )
        order_ok = {
            int(k)
            for k, d, c in zip(
                orders["o_orderkey"], orders["o_orderdate"],
                orders["o_custkey"],
            )
            if d < cut and int(c) in building
        }
        revenue: dict[int, float] = {}
        for key, ship, price, disc in zip(
            li["l_orderkey"], li["l_shipdate"], li["l_extendedprice"],
            li["l_discount"],
        ):
            if ship > cut and int(key) in order_ok:
                revenue[int(key)] = revenue.get(int(key), 0.0) + float(
                    price * (1 - disc)
                )
        expected = sorted(
            revenue.items(), key=lambda kv: (-kv[1], kv[0])
        )[:10]
        assert len(got) == len(expected)
        for (gk, gr), (ek, er) in zip(got, expected):
            assert gk == ek
            assert gr == pytest.approx(er)


class TestQ14Reference:
    def test_case_in_aggregate_ratio(self, tpch):
        db, arrays = tpch
        # Promo revenue share over all lineitems joined to parts.
        got = db.execute(
            "SELECT 100.0 * SUM(CASE WHEN p.p_type LIKE 'PROMO%' "
            "THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0.0 END) "
            "/ SUM(l.l_extendedprice * (1 - l.l_discount)) "
            "FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey"
        ).scalar()
        part = db.catalog.table("part").scan()
        types = {
            int(k): t
            for k, t in zip(
                part.column("p_partkey").to_pylist(),
                part.column("p_type").to_pylist(),
            )
        }
        li = arrays["lineitem"]
        promo = total = 0.0
        for key, price, disc in zip(
            li["l_partkey"], li["l_extendedprice"], li["l_discount"]
        ):
            p_type = types.get(int(key))
            if p_type is None:
                continue
            value = float(price * (1 - disc))
            total += value
            if p_type.startswith("PROMO"):
                promo += value
        assert got == pytest.approx(100.0 * promo / total)
