"""Python static-analysis provenance tests."""

import pytest

from flock.errors import ProvenanceError
from flock.provenance import ProvenanceCatalog, PythonProvenanceCapture
from flock.provenance.kb import KnowledgeBase
from flock.provenance.model import EntityType


@pytest.fixture
def analyzer():
    return PythonProvenanceCapture()


class TestModelDetection:
    def test_from_import_constructor(self, analyzer):
        analysis = analyzer.analyze_script(
            "from sklearn.linear_model import LogisticRegression\n"
            "clf = LogisticRegression(C=2.0)\n"
        )
        assert len(analysis.models) == 1
        model = analysis.models[0]
        assert model.variable == "clf"
        assert model.class_name == "LogisticRegression"
        assert model.hyperparameters == {"C": 2.0}

    def test_module_attribute_constructor(self, analyzer):
        analysis = analyzer.analyze_script(
            "import xgboost as xgb\n"
            "model = xgb.XGBClassifier(max_depth=4)\n"
        )
        assert analysis.model_classes == {"XGBClassifier"}

    def test_aliased_import(self, analyzer):
        analysis = analyzer.analyze_script(
            "from sklearn.ensemble import RandomForestClassifier as RF\n"
            "m = RF(n_estimators=10)\n"
        )
        assert analysis.model_classes == {"RandomForestClassifier"}

    def test_unknown_library_not_detected(self, analyzer):
        analysis = analyzer.analyze_script(
            "from fancyboost import FancyBooster\n"
            "m = FancyBooster()\nm.fit(X, y)\n"
        )
        assert analysis.models == []

    def test_dynamic_constructor_not_detected(self, analyzer):
        analysis = analyzer.analyze_script(
            "import sklearn.ensemble as e\n"
            "cls = getattr(e, 'RandomForest' + 'Classifier')\n"
            "m = cls()\n"
        )
        assert analysis.models == []

    def test_multiple_models(self, analyzer):
        analysis = analyzer.analyze_script(
            "from sklearn.linear_model import LogisticRegression\n"
            "from sklearn.tree import DecisionTreeClassifier\n"
            "a = LogisticRegression()\n"
            "b = DecisionTreeClassifier(max_depth=3)\n"
        )
        assert analysis.model_classes == {
            "LogisticRegression", "DecisionTreeClassifier",
        }

    def test_transformer_not_counted_as_model(self, analyzer):
        analysis = analyzer.analyze_script(
            "from sklearn.preprocessing import StandardScaler\n"
            "s = StandardScaler()\n"
        )
        assert analysis.models == []


class TestDatasetDetection:
    def test_read_csv(self, analyzer):
        analysis = analyzer.analyze_script(
            "import pandas as pd\ndf = pd.read_csv('train.csv')\n"
        )
        assert analysis.dataset_sources == {"train.csv"}

    def test_read_sql(self, analyzer):
        analysis = analyzer.analyze_script(
            "import pandas as pd\n"
            "df = pd.read_sql('SELECT * FROM loans', conn)\n"
        )
        assert analysis.dataset_sources == {"SELECT * FROM loans"}

    def test_dynamic_path_unresolved(self, analyzer):
        analysis = analyzer.analyze_script(
            "import os\nimport pandas as pd\n"
            "df = pd.read_csv(os.path.join(d, 'x.csv'))\n"
        )
        assert analysis.dataset_sources == {"<dynamic:read_csv>"}

    def test_duplicate_loads_deduped(self, analyzer):
        analysis = analyzer.analyze_script(
            "import pandas as pd\n"
            "a = pd.read_csv('x.csv')\nb = pd.read_csv('x.csv')\n"
        )
        assert len(analysis.datasets) == 1


class TestTrainingLinkage:
    SCRIPT = (
        "import pandas as pd\n"
        "from sklearn.linear_model import LogisticRegression\n"
        "from sklearn.metrics import accuracy_score\n"
        "from sklearn.model_selection import train_test_split\n"
        "df = pd.read_csv('loans.csv')\n"
        "X = df.drop(columns=['y'])\n"
        "y = df['y']\n"
        "X_tr, X_te, y_tr, y_te = train_test_split(X, y)\n"
        "clf = LogisticRegression(max_iter=100)\n"
        "clf.fit(X_tr, y_tr)\n"
        "pred = clf.predict(X_te)\n"
        "print(accuracy_score(y_te, pred))\n"
    )

    def test_fit_links_dataset_through_derivations(self, analyzer):
        analysis = analyzer.analyze_script(self.SCRIPT)
        model = analysis.models[0]
        assert model.trained
        assert model.training_datasets == ["loans.csv"]

    def test_metric_linked_to_model(self, analyzer):
        analysis = analyzer.analyze_script(self.SCRIPT)
        assert analysis.models[0].metrics == ["accuracy_score"]

    def test_fit_inside_loop_or_if(self, analyzer):
        analysis = analyzer.analyze_script(
            "import pandas as pd\n"
            "from sklearn.svm import SVC\n"
            "df = pd.read_csv('d.csv')\n"
            "m = SVC()\n"
            "if True:\n"
            "    m.fit(df, df['y'])\n"
        )
        assert analysis.models[0].trained
        assert analysis.models[0].training_datasets == ["d.csv"]

    def test_syntax_error_raises(self, analyzer):
        with pytest.raises(ProvenanceError):
            analyzer.analyze_script("def broken(:\n")


class TestCatalogRegistration:
    def test_entities_and_cross_system_bridge(self):
        cat = ProvenanceCatalog()
        # SQL side knows the table.
        table = cat.register(EntityType.TABLE, "loans")
        analyzer = PythonProvenanceCapture(cat)
        analyzer.analyze_script(
            "import pandas as pd\n"
            "from sklearn.linear_model import LogisticRegression\n"
            "df = pd.read_sql_table('loans', engine)\n"
            "m = LogisticRegression()\n"
            "m.fit(df, df['y'])\n",
            name="train_loans",
        )
        script = cat.find(EntityType.SCRIPT, "train_loans")
        assert script is not None
        dataset = cat.find(EntityType.DATASET, "loans")
        assert dataset is not None
        # The bridge: dataset → table edge exists (C3).
        from flock.provenance.model import Relation

        bridge = cat.graph.edges(
            relation=Relation.DERIVES, src_id=dataset.entity_id
        )
        assert any(e.dst_id == table.entity_id for e in bridge)

    def test_hyperparameters_registered(self):
        cat = ProvenanceCatalog()
        analyzer = PythonProvenanceCapture(cat)
        analyzer.analyze_script(
            "from sklearn.svm import SVC\nm = SVC(C=3.0)\n", name="s"
        )
        hp = cat.find(EntityType.HYPERPARAMETER, "s::m::C")
        assert hp is not None
        assert hp.properties["value"] == 3.0


class TestKnowledgeBase:
    def test_module_hint_filters(self):
        kb = KnowledgeBase()
        assert kb.classify_constructor("LogisticRegression", "sklearn.linear_model")
        assert kb.classify_constructor("LogisticRegression", None) == "model"
        assert kb.classify_constructor("LogisticRegression", "notsklearn") is None

    def test_data_loaders(self):
        kb = KnowledgeBase()
        assert kb.is_data_loader("read_csv") == ("file", 0)
        assert kb.is_data_loader("load_stuff") is None

    def test_extensible(self):
        from flock.provenance.kb import ApiEntry

        kb = KnowledgeBase([ApiEntry("fancyboost", "FancyBooster", "model")])
        assert kb.classify_constructor("FancyBooster", "fancyboost") == "model"


class TestCoverageCorpora:
    def test_enterprise_corpus_full_coverage(self, analyzer):
        from flock.corpus.scripts import enterprise_corpus, evaluate_coverage

        result = evaluate_coverage(enterprise_corpus(37), analyzer)
        assert result.model_coverage == 1.0
        assert result.dataset_coverage == 1.0

    def test_kaggle_corpus_partial_coverage(self, analyzer):
        from flock.corpus.scripts import evaluate_coverage, kaggle_like_corpus

        result = evaluate_coverage(kaggle_like_corpus(49), analyzer)
        # The paper's Table 2 shape: high-but-not-total model coverage,
        # substantially lower dataset coverage.
        assert 0.90 <= result.model_coverage < 1.0
        assert 0.50 <= result.dataset_coverage <= 0.75
        assert result.dataset_coverage < result.model_coverage
