"""Unit + property tests for ColumnVector and Batch."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.errors import ExecutionError


class TestColumnVector:
    def test_from_values_with_nulls(self):
        vec = ColumnVector.from_values(DataType.INTEGER, [1, None, 3])
        assert len(vec) == 3
        assert vec.to_pylist() == [1, None, 3]
        assert vec.has_nulls()

    def test_constant(self):
        vec = ColumnVector.constant(DataType.TEXT, "x", 4)
        assert vec.to_pylist() == ["x"] * 4

    def test_constant_null(self):
        vec = ColumnVector.constant(DataType.FLOAT, None, 3)
        assert vec.to_pylist() == [None] * 3

    def test_take_filter_slice(self):
        vec = ColumnVector.from_values(DataType.INTEGER, [10, 20, 30, 40])
        assert vec.take(np.array([3, 0])).to_pylist() == [40, 10]
        mask = np.array([True, False, True, False])
        assert vec.filter(mask).to_pylist() == [10, 30]
        assert vec.slice(1, 3).to_pylist() == [20, 30]

    def test_concat_type_mismatch(self):
        a = ColumnVector.from_values(DataType.INTEGER, [1])
        b = ColumnVector.from_values(DataType.TEXT, ["x"])
        with pytest.raises(ExecutionError):
            a.concat(b)

    def test_concat(self):
        a = ColumnVector.from_values(DataType.INTEGER, [1, None])
        b = ColumnVector.from_values(DataType.INTEGER, [3])
        assert a.concat(b).to_pylist() == [1, None, 3]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            ColumnVector(
                DataType.INTEGER,
                np.array([1, 2]),
                np.array([False]),
            )

    def test_date_roundtrip_via_getitem(self):
        vec = ColumnVector.from_values(DataType.DATE, ["2020-05-17", None])
        assert vec[0].isoformat() == "2020-05-17"
        assert vec[1] is None


@given(st.lists(st.one_of(st.integers(-1000, 1000), st.none()), max_size=50))
def test_vector_roundtrip_property(values):
    """from_values → to_pylist is the identity for INTEGER columns."""
    vec = ColumnVector.from_values(DataType.INTEGER, values)
    assert vec.to_pylist() == values


@given(
    st.lists(st.one_of(st.text(max_size=8), st.none()), max_size=40),
    st.data(),
)
def test_vector_filter_matches_python(values, data):
    """filter() agrees with a plain Python list comprehension."""
    vec = ColumnVector.from_values(DataType.TEXT, values)
    mask = np.array(
        data.draw(
            st.lists(
                st.booleans(), min_size=len(values), max_size=len(values)
            )
        ),
        dtype=bool,
    )
    expected = [v for v, keep in zip(values, mask) if keep]
    assert vec.filter(mask).to_pylist() == expected


class TestBatch:
    def _batch(self) -> Batch:
        return Batch(
            ["a", "b"],
            [
                ColumnVector.from_values(DataType.INTEGER, [1, 2, 3]),
                ColumnVector.from_values(DataType.TEXT, ["x", None, "z"]),
            ],
        )

    def test_shape(self):
        batch = self._batch()
        assert batch.num_rows == 3
        assert batch.num_columns == 2

    def test_ragged_rejected(self):
        with pytest.raises(ExecutionError):
            Batch(
                ["a", "b"],
                [
                    ColumnVector.from_values(DataType.INTEGER, [1]),
                    ColumnVector.from_values(DataType.INTEGER, [1, 2]),
                ],
            )

    def test_column_lookup(self):
        assert self._batch().column("b").to_pylist() == ["x", None, "z"]
        with pytest.raises(ExecutionError):
            self._batch().column("missing")

    def test_rows(self):
        assert list(self._batch().rows()) == [
            (1, "x"),
            (2, None),
            (3, "z"),
        ]

    def test_select_and_with_columns(self):
        batch = self._batch()
        projected = batch.select([1])
        assert projected.names == ["b"]
        extended = batch.with_columns(
            ["c"], [ColumnVector.from_values(DataType.INTEGER, [7, 8, 9])]
        )
        assert extended.names == ["a", "b", "c"]
        assert extended.num_rows == 3

    def test_concat_schema_mismatch(self):
        other = Batch(
            ["a"], [ColumnVector.from_values(DataType.INTEGER, [1])]
        )
        with pytest.raises(ExecutionError):
            self._batch().concat(other)

    def test_empty(self):
        batch = Batch.empty(["a"], [DataType.FLOAT])
        assert batch.num_rows == 0
