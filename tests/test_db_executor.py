"""Executor tests: joins, aggregation, sorting — plus property tests that
check the vectorized operators against plain-Python reference semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.db import Database


@pytest.fixture
def join_db(db):
    db.execute("CREATE TABLE l (k INT, lv TEXT)")
    db.execute("CREATE TABLE r (k INT, rv TEXT)")
    db.execute(
        "INSERT INTO l VALUES (1, 'a'), (2, 'b'), (2, 'b2'), (3, 'c'), "
        "(NULL, 'n')"
    )
    db.execute("INSERT INTO r VALUES (2, 'x'), (2, 'y'), (4, 'z'), (NULL, 'rn')")
    return db


class TestJoins:
    def test_inner_duplicates_multiply(self, join_db):
        rows = join_db.execute(
            "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k ORDER BY l.lv, r.rv"
        ).rows()
        assert rows == [
            ("b", "x"), ("b", "y"), ("b2", "x"), ("b2", "y"),
        ]

    def test_null_keys_never_match(self, join_db):
        rows = join_db.execute(
            "SELECT COUNT(*) FROM l JOIN r ON l.k = r.k"
        ).scalar()
        assert rows == 4  # the NULL rows on both sides match nothing

    def test_left_join_pads_nulls(self, join_db):
        rows = join_db.execute(
            "SELECT l.lv, r.rv FROM l LEFT JOIN r ON l.k = r.k "
            "ORDER BY l.lv, r.rv"
        ).rows()
        assert ("a", None) in rows
        assert ("c", None) in rows
        assert ("n", None) in rows

    def test_cross_join_cardinality(self, join_db):
        n = join_db.execute("SELECT COUNT(*) FROM l, r").scalar()
        assert n == 5 * 4

    def test_non_equi_join_condition(self, join_db):
        rows = join_db.execute(
            "SELECT l.lv, r.rv FROM l JOIN r ON l.k < r.k ORDER BY l.lv, r.rv"
        ).rows()
        assert ("a", "x") in rows  # 1 < 2
        assert ("c", "z") in rows  # 3 < 4

    def test_join_with_residual_condition(self, join_db):
        rows = join_db.execute(
            "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k AND r.rv <> 'x' "
            "ORDER BY l.lv"
        ).rows()
        assert rows == [("b", "y"), ("b2", "y")]

    def test_left_join_residual_reverts_to_unmatched(self, join_db):
        rows = join_db.execute(
            "SELECT l.lv, r.rv FROM l LEFT JOIN r "
            "ON l.k = r.k AND r.rv = 'nothing' ORDER BY l.lv"
        ).rows()
        # Every left row survives with NULL right side.
        assert len(rows) == 5
        assert all(rv is None for _, rv in rows)

    def test_self_join_with_aliases(self, join_db):
        n = join_db.execute(
            "SELECT COUNT(*) FROM l a JOIN l b ON a.k = b.k"
        ).scalar()
        # keys 1->1, 2->4 (two rows each side), 3->1; NULL never matches
        assert n == 1 + 4 + 1


class TestAggregation:
    def test_group_order_is_first_seen_then_sortable(self, join_db):
        rows = join_db.execute(
            "SELECT k, COUNT(*) AS n FROM l GROUP BY k ORDER BY n DESC, k"
        ).rows()
        assert rows[0] == (2, 2)

    def test_null_group_is_its_own_group(self, join_db):
        rows = join_db.execute(
            "SELECT k, COUNT(*) AS n FROM l GROUP BY k"
        ).rows()
        assert (None, 1) in rows

    def test_count_star_vs_count_column(self, join_db):
        row = join_db.execute(
            "SELECT COUNT(*) AS stars, COUNT(k) AS ks FROM l"
        ).rows()[0]
        assert row == (5, 4)

    def test_multiple_aggregates_one_pass(self, db):
        db.execute("CREATE TABLE v (g TEXT, x FLOAT)")
        db.execute(
            "INSERT INTO v VALUES ('a', 1.0), ('a', 3.0), ('b', 10.0)"
        )
        rows = db.execute(
            "SELECT g, COUNT(*) AS n, SUM(x) AS s, AVG(x) AS m, "
            "MIN(x) AS lo, MAX(x) AS hi FROM v GROUP BY g ORDER BY g"
        ).rows()
        assert rows == [("a", 2, 4.0, 2.0, 1.0, 3.0), ("b", 1, 10.0, 10.0, 10.0, 10.0)]

    def test_group_by_expression(self, db):
        db.execute("CREATE TABLE v (x INT)")
        db.execute("INSERT INTO v VALUES (1), (2), (3), (4)")
        rows = db.execute(
            "SELECT x % 2 AS parity, COUNT(*) AS n FROM v "
            "GROUP BY x % 2 ORDER BY parity"
        ).rows()
        assert rows == [(0, 2), (1, 2)]


class TestSorting:
    def test_multi_key_sort(self, db):
        db.execute("CREATE TABLE s (a INT, b TEXT)")
        db.execute(
            "INSERT INTO s VALUES (2, 'x'), (1, 'z'), (1, 'a'), (2, 'a')"
        )
        rows = db.execute("SELECT a, b FROM s ORDER BY a, b DESC").rows()
        assert rows == [(1, "z"), (1, "a"), (2, "x"), (2, "a")]

    def test_sort_stability_irrelevant_but_total(self, db):
        db.execute("CREATE TABLE s (a INT)")
        values = list(range(50))[::-1]
        db.execute(
            "INSERT INTO s VALUES " + ", ".join(f"({v})" for v in values)
        )
        assert db.execute("SELECT a FROM s ORDER BY a").column("a") == sorted(
            values
        )


@st.composite
def _table_rows(draw):
    n = draw(st.integers(0, 40))
    return [
        (
            draw(st.one_of(st.integers(-5, 5), st.none())),
            draw(st.one_of(st.floats(-100, 100), st.none())),
        )
        for _ in range(n)
    ]


@settings(deadline=None, max_examples=25)
@given(_table_rows())
def test_filter_matches_python_reference(rows):
    """WHERE k > 0 agrees with the Python reference on arbitrary data."""
    db = Database()
    db.execute("CREATE TABLE t (k INT, v FLOAT)")
    if rows:
        values = ", ".join(
            f"({'NULL' if k is None else k}, {'NULL' if v is None else repr(v)})"
            for k, v in rows
        )
        db.execute(f"INSERT INTO t VALUES {values}")
    got = db.execute("SELECT k, v FROM t WHERE k > 0").rows()
    expected = [(k, v) for k, v in rows if k is not None and k > 0]
    assert got == expected


@settings(deadline=None, max_examples=25)
@given(_table_rows())
def test_group_count_matches_python_reference(rows):
    db = Database()
    db.execute("CREATE TABLE t (k INT, v FLOAT)")
    if rows:
        values = ", ".join(
            f"({'NULL' if k is None else k}, {'NULL' if v is None else repr(v)})"
            for k, v in rows
        )
        db.execute(f"INSERT INTO t VALUES {values}")
    got = dict(
        db.execute("SELECT k, COUNT(*) FROM t GROUP BY k").rows()
    )
    expected: dict = {}
    for k, _ in rows:
        expected[k] = expected.get(k, 0) + 1
    assert got == expected


@settings(deadline=None, max_examples=25)
@given(st.lists(st.integers(-1000, 1000), max_size=60))
def test_order_by_matches_sorted(values):
    db = Database()
    db.execute("CREATE TABLE t (x INT)")
    if values:
        db.execute(
            "INSERT INTO t VALUES " + ", ".join(f"({v})" for v in values)
        )
    assert db.execute("SELECT x FROM t ORDER BY x DESC").column("x") == sorted(
        values, reverse=True
    )


@settings(deadline=None, max_examples=20)
@given(st.lists(st.integers(0, 8), max_size=40), st.lists(st.integers(0, 8), max_size=20))
def test_inner_join_matches_nested_loops(left, right):
    """Hash join agrees with the brute-force nested-loop reference."""
    db = Database()
    db.execute("CREATE TABLE a (x INT)")
    db.execute("CREATE TABLE b (y INT)")
    if left:
        db.execute("INSERT INTO a VALUES " + ", ".join(f"({v})" for v in left))
    if right:
        db.execute("INSERT INTO b VALUES " + ", ".join(f"({v})" for v in right))
    got = sorted(
        db.execute("SELECT a.x, b.y FROM a JOIN b ON a.x = b.y").rows()
    )
    expected = sorted((x, y) for x in left for y in right if x == y)
    assert got == expected
