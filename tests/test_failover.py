"""Failover: kill the primary mid-workload, promote, lose nothing.

The workload child (``flock.testing.crashload --replicas N``) drives
random DML through a live cluster — writes on the primary, routed reads on
the followers — while ``FLOCK_FAULTPOINTS`` arms a WAL fault point to
crash the whole process (primary and in-process followers die together,
the worst case). The parent then stands the tier back up with
``FlockCluster`` over the same directory — exactly what
:meth:`FlockCluster.promote` does after selecting a candidate — and
asserts the durability contract from the acknowledgement file:

- zero committed-transaction loss: every acknowledged operation is present
  on the recovered primary *and* on every rebuilt follower;
- nothing invented: recovered rows all have a ``try`` record;
- the rebuilt access paths are correct: primary-key index lookups and
  zone-map-pruned scans agree with full scans after recovery;
- a subsequent in-process promotion keeps the same committed prefix.

Knobs: ``FLOCK_FAILOVER_ROUNDS`` (default 2), ``FLOCK_FAILOVER_OPS``
(default 50), ``FLOCK_FAILOVER_SEED``.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

from flock.cluster import FlockCluster
from flock.testing import faultpoints

from tests.test_crash_recovery import parse_ack, rows_of

SRC = str(Path(__file__).resolve().parent.parent / "src")

ROUNDS = int(os.environ.get("FLOCK_FAILOVER_ROUNDS", "2"))
OPS = int(os.environ.get("FLOCK_FAILOVER_OPS", "50"))
SEED = int(os.environ.get("FLOCK_FAILOVER_SEED", "20260807"))

CRASH_POINTS = [p for p in faultpoints.KNOWN_POINTS if p.startswith("wal.")]


def run_child(data_dir: Path, ack_path: Path, seed: int, point: str,
              after: int, replicas: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["FLOCK_FAULTPOINTS"] = f"{point}=crash:{after}"
    return subprocess.run(
        [
            sys.executable, "-m", "flock.testing.crashload",
            "--dir", str(data_dir),
            "--seed", str(seed),
            "--ops", str(OPS),
            "--ack-file", str(ack_path),
            "--replicas", str(replicas),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def assert_no_committed_loss(db, markers) -> None:
    pair_a = rows_of(db, "pair_a")
    pair_b = rows_of(db, "pair_b")
    assert pair_a == pair_b, "paired transaction replayed partially"
    pairs = markers.get("pair", {"try": set(), "ok": set()})
    assert pairs["ok"] <= pair_a, "acknowledged pair lost in failover"
    assert pair_a <= pairs["try"], "pair row appeared from nowhere"

    singles = rows_of(db, "singles")
    ins = markers.get("single", {"try": set(), "ok": set()})
    dels = markers.get("delete", {"try": set(), "ok": set()})
    assert (ins["ok"] - dels["try"]) <= singles, "acked insert lost"
    assert not (singles & dels["ok"]), "acked delete resurrected"
    assert singles <= ins["try"], "single row appeared from nowhere"


def assert_access_paths_rebuilt(db) -> None:
    """Index lookups and pruned scans must agree with the full scan."""
    singles = rows_of(db, "singles")
    plan = db.explain("SELECT payload FROM singles WHERE m = 1")
    # Cost-based: small recovered tables may scan with zone pruning
    # instead of probing the PK hash index — either path must exist and
    # both must return the truth.
    assert "IndexLookup" in plan or "zones=" in plan, plan
    for m in sorted(singles)[:10]:
        via_index = db.execute(
            f"SELECT payload FROM singles WHERE m = {m}"
        ).rows()
        assert via_index == [(f"payload-{m}",)], (
            f"rebuilt index returned wrong row for m={m}"
        )
    if singles:
        lo = min(singles)
        via_zones = db.execute(
            f"SELECT COUNT(*) FROM singles WHERE m >= {lo}"
        ).scalar()
        assert via_zones == len(singles), "zone-pruned scan dropped rows"
    missing = (max(singles) + 1000) if singles else 1000
    assert db.execute(
        f"SELECT payload FROM singles WHERE m = {missing}"
    ).rows() == []


def test_failover_no_committed_loss(tmp_path):
    rng = random.Random(SEED)
    crashed = 0
    for round_no in range(ROUNDS):
        point = rng.choice(CRASH_POINTS)
        after = rng.randint(5, 40)
        replicas = rng.choice([1, 2])
        data_dir = tmp_path / f"round{round_no}"
        ack_path = tmp_path / f"ack{round_no}.log"
        proc = run_child(
            data_dir, ack_path, rng.randrange(1 << 30), point, after,
            replicas,
        )
        assert proc.returncode in (0, faultpoints.CRASH_EXIT_CODE), (
            f"round {round_no} ({point}=crash:{after}): child failed\n"
            f"{proc.stderr}"
        )
        if proc.returncode == faultpoints.CRASH_EXIT_CODE:
            crashed += 1
        markers = parse_ack(ack_path)

        # Stand the tier back up over the crashed directory: recovery runs
        # inside Database.open, followers bootstrap from the recovered
        # snapshot — the promotion path.
        with FlockCluster(data_dir, replicas=replicas) as cluster:
            assert_no_committed_loss(cluster.database, markers)
            assert_access_paths_rebuilt(cluster.database)

            # Every rebuilt follower carries the identical committed
            # prefix (readable through the router too).
            assert cluster.wait_for_catchup(30.0)
            for follower in cluster.followers:
                assert_no_committed_loss(follower.database, markers)

            # The recovered tier still takes writes, and an in-process
            # promotion on top preserves the same prefix.
            cluster.execute(
                "CREATE TABLE IF NOT EXISTS post_failover (x INT)"
            )
            cluster.execute("INSERT INTO post_failover VALUES (1)")
            report = cluster.promote()
            assert report["epoch"] == 2
            assert_no_committed_loss(cluster.database, markers)
            assert cluster.database.execute(
                "SELECT COUNT(*) FROM post_failover"
            ).scalar() == 1
    # The fault points must actually fire in at least one round; a suite
    # where every child finishes cleanly is not testing failover.
    assert crashed >= 1, "no round crashed — raise OPS or lower 'after'"
