"""Unit tests for model compression and UDF inlining internals."""

import math

import numpy as np
import pytest

from flock.db.expr import BoundColumn, BoundLiteral
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector
from flock.inference.compression import compress_graph
from flock.inference.udf import inline_graph
from flock.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    Pipeline,
    StandardScaler,
)
from flock.ml.datasets import make_classification, make_regression
from flock.mlgraph import GraphRuntime, to_graph
from flock.mlgraph.analysis import graph_size
from flock.mlgraph.graph import Graph, Node, TensorSpec


def _batch(X, names):
    return Batch(
        names,
        [
            ColumnVector.from_values(DataType.FLOAT, X[:, i].tolist())
            for i in range(X.shape[1])
        ],
    )


def _input_exprs(names):
    return {
        n: BoundColumn(i, DataType.FLOAT, n) for i, n in enumerate(names)
    }


class TestCompression:
    def test_unreachable_branches_folded(self):
        # A deep tree over [0, 50]; stored stats say data only spans [0, 10],
        # so every branch beyond 10 folds away.
        X = np.linspace(0, 50, 200).reshape(-1, 1)
        y = X[:, 0]  # identity target → splits all along the range
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        graph = to_graph(tree, ["x"])
        before = graph_size(graph)["tree_nodes"]
        compressed, stats = compress_graph(graph, {"x": (0.0, 10.0)})
        after = graph_size(compressed)["tree_nodes"]
        assert after < before
        assert stats["tree_nodes_after"] == after

        # Results unchanged on data within the stated range.
        X_in = np.linspace(0, 10, 40)
        rt = GraphRuntime()
        a = rt.run(graph, {"x": X_in})
        b = rt.run(compressed, {"x": X_in})
        key = graph.output_names[0]
        assert np.allclose(a[key], b[key])

    def test_ranges_propagate_through_scaler(self):
        X, y, _ = make_regression(200, 2, random_state=0)
        pipe = Pipeline(
            [("s", StandardScaler()), ("m", DecisionTreeRegressor(max_depth=5))]
        ).fit(X, y)
        graph = to_graph(pipe, ["a", "b"])
        # Claim a very narrow observed range: heavy folding expected.
        narrow = {"a": (0.0, 0.1), "b": (0.0, 0.1)}
        compressed, stats = compress_graph(graph, narrow)
        assert stats["tree_nodes_after"] < stats["tree_nodes_before"]

    def test_no_stats_no_change(self):
        X, y, _ = make_regression(100, 2, random_state=1)
        gbm = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(X, y)
        graph = to_graph(gbm, ["a", "b"])
        compressed, stats = compress_graph(graph, {})
        assert stats["tree_nodes_before"] == stats["tree_nodes_after"]

    def test_weight_thresholding(self):
        X, y, _ = make_regression(100, 3, random_state=2)
        model = LinearRegression().fit(X, y)
        model.coef_ = np.array([5.0, 1e-12, -2.0])
        graph = to_graph(model, ["a", "b", "c"])
        compressed, stats = compress_graph(
            graph, {}, weight_tolerance=1e-9
        )
        assert stats["weights_zeroed"] == 1
        linear = next(
            n for n in compressed.nodes if n.op_type == "linear"
        )
        assert np.asarray(linear.attrs["weights"])[1] == 0.0

    def test_compression_exactness_within_range(self):
        """Compressed models agree with originals on all in-range data."""
        X, y, _ = make_regression(300, 3, random_state=3)
        gbm = GradientBoostingRegressor(n_estimators=10, random_state=0).fit(X, y)
        names = ["a", "b", "c"]
        graph = to_graph(gbm, names)
        ranges = {
            n: (float(X[:, i].min()), float(X[:, i].max()))
            for i, n in enumerate(names)
        }
        compressed, _ = compress_graph(graph, ranges)
        rt = GraphRuntime()
        feeds = {n: X[:, i] for i, n in enumerate(names)}
        key = graph.output_names[0]
        assert np.allclose(
            rt.run(graph, feeds)[key], rt.run(compressed, feeds)[key]
        )


class TestInlining:
    def test_linear_regression_inlines_exactly(self):
        X, y, _ = make_regression(60, 3, random_state=4)
        model = LinearRegression().fit(X, y)
        names = ["a", "b", "c"]
        graph = to_graph(model, names)
        exprs = inline_graph(graph, _input_exprs(names))
        assert exprs is not None and "score" in exprs
        got = exprs["score"].evaluate(_batch(X, names)).values
        assert np.allclose(got, model.predict(X))

    def test_logistic_pipeline_inlines_probability_and_label(self):
        X, y = make_classification(80, 3, random_state=5)
        pipe = Pipeline(
            [("s", StandardScaler()), ("m", LogisticRegression(max_iter=100))]
        ).fit(X, y)
        names = ["a", "b", "c"]
        graph = to_graph(pipe, names)
        exprs = inline_graph(graph, _input_exprs(names))
        assert exprs is not None
        batch = _batch(X, names)
        probability = exprs["probability"].evaluate(batch).values
        assert np.allclose(probability, pipe.predict_proba(X)[:, 1])
        label = exprs["label"].evaluate(batch)
        assert np.array_equal(
            np.array(label.to_pylist()), pipe.predict(X)
        )

    def test_small_tree_inlines(self):
        X, y, _ = make_regression(100, 2, random_state=6)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        names = ["a", "b"]
        graph = to_graph(tree, names)
        exprs = inline_graph(graph, _input_exprs(names))
        assert exprs is not None
        got = exprs["score"].evaluate(_batch(X, names)).values
        assert np.allclose(got, tree.predict(X))

    def test_budget_rejects_big_ensembles(self):
        X, y, _ = make_regression(200, 3, random_state=7)
        gbm = GradientBoostingRegressor(n_estimators=60, random_state=0).fit(X, y)
        graph = to_graph(gbm, ["a", "b", "c"])
        assert inline_graph(graph, _input_exprs(["a", "b", "c"]), max_nodes=200) is None

    def test_constant_fill_inputs(self):
        X, y, _ = make_regression(50, 2, random_state=8)
        model = LinearRegression().fit(X, y)
        model.coef_ = np.array([model.coef_[0], 0.0])
        graph = to_graph(model, ["a", "b"])
        exprs = inline_graph(
            graph,
            {
                "a": BoundColumn(0, DataType.FLOAT, "a"),
                "b": BoundLiteral(DataType.FLOAT, 0.0),  # pruned input
            },
        )
        assert exprs is not None
        batch = _batch(X[:, :1], ["a"])
        got = exprs["score"].evaluate(batch).values
        assert np.allclose(got, X[:, 0] * model.coef_[0] + model.intercept_)

    def test_text_hash_not_inlinable(self):
        graph = Graph(
            "t",
            inputs=[TensorSpec("c", "text")],
            outputs=[TensorSpec("m")],
            nodes=[
                Node("text_hash", ["c"], ["h"], {"n_buckets": 4}),
                Node("pick_column", ["h"], ["m"], {"index": 0}),
            ],
        )
        from flock.db.expr import BoundColumn as BC

        assert inline_graph(graph, {"c": BC(0, DataType.TEXT, "c")}) is None

    def test_onehot_inlines_as_case(self):
        graph = Graph(
            "oh",
            inputs=[TensorSpec("color", "text")],
            outputs=[TensorSpec("score")],
            nodes=[
                Node("onehot", ["color"], ["enc"], {"categories": ["r", "g"]}),
                Node(
                    "linear", ["enc"], ["score"],
                    {"weights": [2.0, 5.0], "bias": 1.0},
                ),
            ],
            output_kinds={"score": "score"},
        )
        exprs = inline_graph(
            graph, {"color": BoundColumn(0, DataType.TEXT, "color")}
        )
        assert exprs is not None
        batch = Batch(
            ["color"],
            [ColumnVector.from_values(DataType.TEXT, ["r", "g", "zzz"])],
        )
        got = exprs["score"].evaluate(batch).values
        assert got.tolist() == [3.0, 6.0, 1.0]
