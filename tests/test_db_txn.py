"""Transaction tests: atomicity, isolation, conflicts, rollback."""

import pytest

from flock.db import Database
from flock.errors import TransactionError


@pytest.fixture
def accounts(db):
    db.execute("CREATE TABLE acct (id INT PRIMARY KEY, balance FLOAT)")
    db.execute("INSERT INTO acct VALUES (1, 100.0), (2, 50.0)")
    return db


class TestExplicitTransactions:
    def test_commit_makes_writes_visible(self, accounts):
        conn = accounts.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE acct SET balance = balance - 10 WHERE id = 1")
        conn.execute("UPDATE acct SET balance = balance + 10 WHERE id = 2")
        # Another connection sees nothing yet.
        other = accounts.connect()
        assert other.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 100.0
        conn.execute("COMMIT")
        assert other.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 90.0
        assert other.execute(
            "SELECT balance FROM acct WHERE id = 2"
        ).scalar() == 60.0

    def test_rollback_discards_everything(self, accounts):
        conn = accounts.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM acct")
        conn.execute("INSERT INTO acct VALUES (9, 1.0)")
        conn.execute("ROLLBACK")
        assert accounts.execute("SELECT COUNT(*) FROM acct").scalar() == 2

    def test_own_writes_visible_inside_txn(self, accounts):
        conn = accounts.connect()
        conn.execute("BEGIN")
        conn.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        assert conn.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 0.0
        conn.execute("ROLLBACK")

    def test_write_conflict_detected(self, accounts):
        conn_a = accounts.connect()
        conn_b = accounts.connect()
        conn_a.execute("BEGIN")
        conn_a.execute("UPDATE acct SET balance = 1 WHERE id = 1")
        conn_b.execute("BEGIN")
        conn_b.execute("UPDATE acct SET balance = 2 WHERE id = 1")
        conn_a.execute("COMMIT")
        with pytest.raises(TransactionError, match="conflict"):
            conn_b.execute("COMMIT")
        # The loser's write is gone.
        assert accounts.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 1.0

    def test_disjoint_tables_do_not_conflict(self, accounts):
        accounts.execute("CREATE TABLE other (x INT)")
        conn_a = accounts.connect()
        conn_b = accounts.connect()
        conn_a.execute("BEGIN")
        conn_a.execute("INSERT INTO other VALUES (1)")
        conn_b.execute("BEGIN")
        conn_b.execute("UPDATE acct SET balance = 5 WHERE id = 2")
        conn_a.execute("COMMIT")
        conn_b.execute("COMMIT")
        assert accounts.execute("SELECT COUNT(*) FROM other").scalar() == 1

    def test_nested_begin_rejected(self, accounts):
        conn = accounts.connect()
        conn.execute("BEGIN")
        from flock.errors import BindError

        with pytest.raises(BindError):
            conn.execute("BEGIN")

    def test_commit_without_begin_rejected(self, accounts):
        from flock.errors import BindError

        with pytest.raises(BindError):
            accounts.connect().execute("COMMIT")

    def test_transaction_not_reusable_after_commit(self, accounts):
        conn = accounts.connect()
        conn.execute("BEGIN")
        conn.execute("COMMIT")
        assert not conn.in_transaction
        conn.execute("BEGIN")  # a fresh transaction works
        conn.execute("ROLLBACK")


class TestAutocommit:
    def test_each_statement_commits(self, accounts):
        accounts.execute("UPDATE acct SET balance = 0 WHERE id = 1")
        assert accounts.execute(
            "SELECT balance FROM acct WHERE id = 1"
        ).scalar() == 0.0

    def test_failed_statement_leaves_no_trace(self, accounts):
        from flock.errors import ExecutionError

        version_count = accounts.catalog.table("acct").version_count
        with pytest.raises(ExecutionError):
            accounts.execute(
                "UPDATE acct SET balance = balance / 0 WHERE id = 1"
            )
        assert accounts.catalog.table("acct").version_count == version_count

    def test_counters(self, accounts):
        committed = accounts.transactions.committed_count
        accounts.execute("INSERT INTO acct VALUES (3, 1.0)")
        assert accounts.transactions.committed_count == committed + 1


class TestMultiTableAtomicity:
    def test_models_rollout_style_commit(self, db):
        """Multiple tables move atomically (the paper's multi-model rollout)."""
        db.execute("CREATE TABLE m1 (v INT)")
        db.execute("CREATE TABLE m2 (v INT)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO m1 VALUES (1)")
        conn.execute("INSERT INTO m2 VALUES (1)")
        conn.execute("ROLLBACK")
        assert db.execute("SELECT COUNT(*) FROM m1").scalar() == 0
        assert db.execute("SELECT COUNT(*) FROM m2").scalar() == 0
        conn.execute("BEGIN")
        conn.execute("INSERT INTO m1 VALUES (2)")
        conn.execute("INSERT INTO m2 VALUES (2)")
        conn.execute("COMMIT")
        assert db.execute("SELECT COUNT(*) FROM m1").scalar() == 1
        assert db.execute("SELECT COUNT(*) FROM m2").scalar() == 1

    def test_on_commit_hooks_fire(self, db):
        db.execute("CREATE TABLE t (v INT)")
        fired = []
        txn = db.transactions.begin()
        table = db.catalog.table("t")
        txn.stage("t", table.build_insert([(1,)]))
        txn.on_commit(lambda: fired.append("commit"))
        txn.commit()
        assert fired == ["commit"]

    def test_on_rollback_hooks_fire(self, db):
        fired = []
        txn = db.transactions.begin()
        txn.on_rollback(lambda: fired.append("rollback"))
        txn.rollback()
        assert fired == ["rollback"]

    def test_inactive_transaction_rejects_reads(self, db):
        db.execute("CREATE TABLE t (v INT)")
        txn = db.transactions.begin()
        txn.rollback()
        with pytest.raises(TransactionError):
            txn.visible_version("t")
