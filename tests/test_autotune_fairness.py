"""AutoML-lite search and fairness-report tests."""

import numpy as np
import pytest

from flock.errors import FlockError, ModelError
from flock.lifecycle.autotune import AutoTuner, Candidate, grid
from flock.lifecycle.training import CloudTrainingService
from flock.ml import DecisionTreeClassifier, LogisticRegression, RidgeRegression
from flock.ml.datasets import make_classification, make_regression
from flock.ml.fairness import (
    FOUR_FIFTHS,
    fairness_report,
    fairness_report_from_sql,
)


class TestGrid:
    def test_cartesian_product(self):
        candidates = grid(
            LogisticRegression, l2=[0.0, 1.0], max_iter=[50, 100, 150]
        )
        assert len(candidates) == 6
        assert all(isinstance(c, Candidate) for c in candidates)
        params = {(c.params["l2"], c.params["max_iter"]) for c in candidates}
        assert (1.0, 100) in params

    def test_describe(self):
        candidate = grid(LogisticRegression, l2=[0.5])[0]
        assert "LogisticRegression" in candidate.describe
        assert "l2=0.5" in candidate.describe


class TestAutoTuner:
    def test_classification_search(self):
        X, y = make_classification(400, 5, random_state=0)
        tuner = AutoTuner(random_state=1)
        result = tuner.search(
            "clf",
            grid(DecisionTreeClassifier, max_depth=[1, 6], random_state=[0]),
            X,
            y,
        )
        assert result.metric_name == "val_accuracy"
        assert len(result.leaderboard) == 2
        # Deeper tree should win on this separable data.
        assert result.best_candidate.params["max_depth"] == 6
        assert result.best_estimator.is_fitted
        # Every candidate became a tracked run.
        assert len(tuner.training.runs("clf")) == 2

    def test_regression_search(self):
        X, y, _ = make_regression(300, 4, noise=0.5, random_state=2)
        tuner = AutoTuner(random_state=3)
        result = tuner.search(
            "reg",
            grid(RidgeRegression, alpha=[0.01, 1000.0]),
            X,
            y,
            task="regression",
        )
        assert result.metric_name == "val_r2"
        assert result.best_candidate.params["alpha"] == 0.01

    def test_leaderboard_sorted(self):
        X, y = make_classification(200, 3, random_state=4)
        result = AutoTuner(random_state=5).search(
            "m",
            grid(DecisionTreeClassifier, max_depth=[1, 3, 8],
                 random_state=[0]),
            X,
            y,
        )
        scores = [s for _, s, _ in result.leaderboard]
        assert scores == sorted(scores, reverse=True)
        assert "best" in result.summary()

    def test_empty_candidates_rejected(self):
        with pytest.raises(FlockError):
            AutoTuner().search("m", [], np.zeros((4, 1)), np.zeros(4))

    def test_unknown_task_rejected(self):
        with pytest.raises(FlockError):
            AutoTuner().search(
                "m",
                grid(LogisticRegression),
                np.zeros((4, 1)),
                np.zeros(4),
                task="clustering",
            )

    def test_shared_training_service(self):
        service = CloudTrainingService()
        X, y = make_classification(150, 3, random_state=6)
        AutoTuner(training=service).search(
            "m", grid(DecisionTreeClassifier, max_depth=[2, 4],
                      random_state=[0]), X, y
        )
        assert len(service.runs("m")) == 2


class TestFairnessReport:
    def test_perfectly_fair(self):
        y_true = [1, 0, 1, 0]
        y_pred = [1, 0, 1, 0]
        groups = ["a", "a", "b", "b"]
        report = fairness_report(y_true, y_pred, groups)
        assert report.demographic_parity_ratio == 1.0
        assert report.is_fair()
        assert report.violations() == []

    def test_demographic_parity_violation(self):
        # Group a gets approved 80% of the time, group b 20%.
        y_pred = [1, 1, 1, 1, 0] + [1, 0, 0, 0, 0]
        y_true = [1] * 5 + [1] * 5
        groups = ["a"] * 5 + ["b"] * 5
        report = fairness_report(y_true, y_pred, groups)
        assert report.demographic_parity_ratio == pytest.approx(0.25)
        assert "demographic_parity" in report.violations()
        assert not report.is_fair()

    def test_equal_opportunity(self):
        # TPRs: group a 1.0, group b 0.5.
        y_true = [1, 1, 1, 1]
        y_pred = [1, 1, 1, 0]
        groups = ["a", "a", "b", "b"]
        report = fairness_report(y_true, y_pred, groups)
        assert report.equal_opportunity_ratio == pytest.approx(0.5)
        # No negatives anywhere: predictive equality is undefined.
        assert report.predictive_equality_ratio is None

    def test_group_stats(self):
        report = fairness_report(
            [1, 0, 1, 0], [1, 1, 0, 0], ["x", "x", "y", "y"]
        )
        by_group = {g.group: g for g in report.groups}
        assert by_group["x"].positive_rate == 1.0
        assert by_group["x"].false_positive_rate == 1.0
        assert by_group["y"].true_positive_rate == 0.0

    def test_misaligned_inputs(self):
        with pytest.raises(ModelError):
            fairness_report([1], [1, 0], ["a", "b"])

    def test_summary_text(self):
        report = fairness_report(
            [1, 0, 1, 0], [1, 1, 0, 0], ["x", "x", "y", "y"]
        )
        text = report.summary()
        assert "group='x'" in text and "VIOLATION" in text

    def test_fairness_from_sql(self, loan_setup):
        database, registry, dataset, pipeline = loan_setup
        report = fairness_report_from_sql(
            database,
            table="loans",
            model_name="loan_model",
            group_column="region",
            label_column="approved",
        )
        assert len(report.groups) == 4
        assert report.demographic_parity_ratio is not None
        # The PREDICT ran through governed channels: audit has it.
        assert database.audit.log.records(action="PREDICT")
