"""Model monitoring and drift detection tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from flock.errors import FlockError
from flock.monitoring import ModelMonitor, MonitorHub
from flock.monitoring.drift import (
    FeatureBaseline,
    baseline_from_training,
    population_stability_index,
)


class TestPSI:
    def test_identical_distributions_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert population_stability_index(p, p) == pytest.approx(0.0)

    def test_shifted_distribution_positive(self):
        p = np.array([0.5, 0.3, 0.2])
        q = np.array([0.1, 0.2, 0.7])
        assert population_stability_index(p, q) > 0.25

    def test_symmetric(self):
        p = np.array([0.6, 0.4])
        q = np.array([0.3, 0.7])
        assert population_stability_index(p, q) == pytest.approx(
            population_stability_index(q, p)
        )

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10),
        st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10),
    )
    def test_nonnegative_property(self, p, q):
        n = min(len(p), len(q))
        assert population_stability_index(p[:n], q[:n]) >= -1e-12


class TestBaseline:
    def test_from_values_deciles(self):
        rng = np.random.default_rng(0)
        fb = FeatureBaseline.from_values("x", rng.normal(size=2000))
        assert len(fb.proportions) == len(fb.edges) + 1
        assert sum(fb.proportions) == pytest.approx(1.0)
        # Decile bins are roughly equal mass.
        assert max(fb.proportions) < 0.2

    def test_nan_values_skipped(self):
        values = np.array([1.0, np.nan, 2.0, 3.0])
        fb = FeatureBaseline.from_values("x", values)
        assert fb.mean == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(FlockError):
            FeatureBaseline.from_values("x", np.array([np.nan]))

    def test_baseline_from_training(self):
        X = np.random.default_rng(1).normal(size=(500, 3))
        scores = np.random.default_rng(2).uniform(size=500)
        baseline = baseline_from_training(["a", "b", "c"], X, scores)
        assert set(baseline.features) == {"a", "b", "c"}
        assert baseline.score is not None


class TestModelMonitor:
    def _monitor(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(1000, 2))
        baseline = baseline_from_training(["a", "b"], X)
        return ModelMonitor("m", baseline), X

    def test_no_drift_on_same_distribution(self):
        monitor, X = self._monitor()
        rng = np.random.default_rng(4)
        fresh = rng.normal(size=(1000, 2))
        monitor.observe({"a": fresh[:, 0], "b": fresh[:, 1]})
        report = monitor.report()
        assert report.max_feature_psi < 0.1
        assert not report.is_drifted()

    def test_detects_mean_shift(self):
        monitor, _ = self._monitor()
        rng = np.random.default_rng(5)
        shifted = rng.normal(loc=3.0, size=1000)
        stable = rng.normal(size=1000)
        monitor.observe({"a": shifted, "b": stable})
        report = monitor.report()
        assert report.feature_psi["a"] > 0.25
        assert report.feature_psi["b"] < 0.1
        assert report.drifted_features() == ["a"]
        assert report.is_drifted()

    def test_accumulates_across_batches(self):
        monitor, _ = self._monitor()
        rng = np.random.default_rng(6)
        for _ in range(4):
            batch = rng.normal(size=(250, 2))
            monitor.observe({"a": batch[:, 0], "b": batch[:, 1]})
        assert monitor.report().observations == 1000

    def test_reset(self):
        monitor, _ = self._monitor()
        monitor.observe({"a": np.ones(10), "b": np.ones(10)})
        monitor.reset()
        assert monitor.report().observations == 0
        assert monitor.report().feature_psi == {}

    def test_unknown_features_ignored(self):
        monitor, _ = self._monitor()
        monitor.observe({"zzz": np.ones(5)})
        assert monitor.report().feature_psi == {}

    def test_score_drift(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(500, 1))
        baseline = baseline_from_training(
            ["a"], X, scores=rng.uniform(0, 0.5, size=500)
        )
        monitor = ModelMonitor("m", baseline)
        monitor.observe(
            {"a": rng.normal(size=500)},
            scores=rng.uniform(0.5, 1.0, size=500),
        )
        report = monitor.report()
        assert report.score_psi is not None
        assert report.score_psi > 0.25


class TestMonitorHub:
    def test_register_and_lookup(self):
        hub = MonitorHub()
        X = np.random.default_rng(8).normal(size=(100, 1))
        hub.register("M", baseline_from_training(["a"], X))
        assert hub.has_monitor("m")
        assert hub.monitor("M").model_name == "M"
        with pytest.raises(FlockError):
            hub.monitor("ghost")

    def test_on_score_routes_to_monitor(self):
        hub = MonitorHub()
        X = np.random.default_rng(9).normal(size=(100, 1))
        hub.register("m", baseline_from_training(["a"], X))
        hub.on_score(
            "m", {"a": np.zeros(10)}, {"prob": np.full(10, 0.5)}, "prob"
        )
        assert hub.monitor("m").report().observations == 10

    def test_on_score_unknown_model_is_noop(self):
        hub = MonitorHub()
        hub.on_score("ghost", {"a": np.zeros(3)}, {}, None)  # no error


class TestSessionIntegration:
    def test_predict_feeds_monitor_automatically(self):
        from flock.lifecycle import FlockSession
        from flock.ml import LogisticRegression
        from flock.ml.datasets import make_loans

        session = FlockSession()
        session.load_dataset(make_loans(200, random_state=0))
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=100), "loans",
            ["income", "credit_score"], "approved",
        )
        session.sql("SELECT PREDICT(m) FROM loans")
        report = session.drift_report("m")
        assert report.observations == 200
        # Same data as training: no drift.
        assert not report.is_drifted()

    def test_data_shift_detected_through_sql(self):
        from flock.lifecycle import FlockSession
        from flock.ml import LogisticRegression
        from flock.ml.datasets import make_loans

        session = FlockSession()
        session.load_dataset(make_loans(300, random_state=1))
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=100), "loans",
            ["income", "credit_score"], "approved",
        )
        session.sql("UPDATE loans SET income = income * 10")
        session.sql("SELECT PREDICT(m) FROM loans")
        report = session.drift_report("m")
        assert "income" in report.drifted_features()

    def test_monitored_models_not_inlined(self):
        from flock.lifecycle import FlockSession
        from flock.ml import LogisticRegression
        from flock.ml.datasets import make_loans

        session = FlockSession()
        session.load_dataset(make_loans(100, random_state=2))
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=50), "loans",
            ["income", "credit_score"], "approved",
        )
        plan = session.database.explain("SELECT PREDICT(m) FROM loans")
        assert "Predict(" in plan  # kept for observability

    def test_monitoring_off_restores_inlining(self):
        from flock.lifecycle import FlockSession
        from flock.ml import LogisticRegression
        from flock.ml.datasets import make_loans

        session = FlockSession(monitor_models=False)
        session.load_dataset(make_loans(100, random_state=3))
        session.train_and_deploy(
            "m", LogisticRegression(max_iter=50), "loans",
            ["income", "credit_score"], "approved",
        )
        plan = session.database.explain("SELECT PREDICT(m) FROM loans")
        assert "Predict(" not in plan
