"""Integration test: the full Flock story from Figure 1, in one scenario.

A health insurer trains a readmission model in the (simulated) cloud,
deploys it into the DBMS, scores patients in SQL, governs everything with
access control + audit + provenance, and routes predictions through
business policies before acting — the complete EGML lifecycle.
"""

import numpy as np
import pytest

from flock.errors import SecurityError
from flock.lifecycle import FlockSession
from flock.ml import LogisticRegression, Pipeline, StandardScaler
from flock.ml.datasets import make_patients
from flock.policy import CapPolicy, VetoPolicy
from flock.provenance.model import EntityType


FEATURES = [
    "age",
    "prior_admissions",
    "length_of_stay",
    "chronic_conditions",
    "medication_count",
]


@pytest.fixture(scope="module")
def session():
    s = FlockSession()
    s.load_dataset(make_patients(300, random_state=0))
    s.train_and_deploy(
        "readmit_model",
        Pipeline(
            [("s", StandardScaler()), ("m", LogisticRegression(max_iter=200))]
        ),
        "patients",
        FEATURES,
        "readmitted",
        description="readmission risk v1",
    )
    return s


class TestScoringInTheDBMS:
    def test_predict_in_sql(self, session):
        result = session.sql(
            "SELECT patient_id, PREDICT(readmit_model) AS risk "
            "FROM patients WHERE PREDICT(readmit_model) > 0.7 "
            "ORDER BY risk DESC"
        )
        assert result.row_count > 0
        risks = result.column("risk")
        assert all(r > 0.7 for r in risks)
        assert risks == sorted(risks, reverse=True)

    def test_predictions_match_training_environment(self, session):
        """Deployment preserved the data scientist's exact behaviour (§2)."""
        result = session.sql(
            "SELECT patient_id, PREDICT(readmit_model) AS risk FROM patients "
            "ORDER BY patient_id"
        )
        got = np.array(result.column("risk"))
        X, _ = session.table_matrix("patients", FEATURES, "readmitted")
        run = session.training.runs("readmit_model")[0]
        assert run.status == "succeeded"
        # Retrain an identical pipeline to compare.
        pipeline = Pipeline(
            [("s", StandardScaler()), ("m", LogisticRegression(max_iter=200))]
        ).fit(X, session.table_matrix("patients", FEATURES, "readmitted")[1])
        assert np.allclose(got, pipeline.predict_proba(X)[:, 1], atol=1e-9)

    def test_aggregate_risk_by_ward(self, session):
        result = session.sql(
            "SELECT ward, COUNT(*) AS n, AVG(PREDICT(readmit_model)) AS avg_risk "
            "FROM patients GROUP BY ward ORDER BY avg_risk DESC"
        )
        assert result.row_count == 4


class TestGovernance:
    def test_access_control_on_data_and_model(self, session):
        database = session.database
        database.execute("CREATE USER nurse")
        database.execute("GRANT SELECT ON patients TO nurse")
        with pytest.raises(SecurityError):
            database.execute(
                "SELECT PREDICT(readmit_model) FROM patients", user="nurse"
            )
        database.security.grant("PREDICT", "model:readmit_model", "nurse")
        result = database.execute(
            "SELECT PREDICT(readmit_model) AS r FROM patients LIMIT 1",
            user="nurse",
        )
        assert result.row_count == 1

    def test_audit_trail_intact_and_complete(self, session):
        log = session.database.audit.log
        assert log.verify_chain()
        actions = {r.action for r in log}
        assert {"CREATE_TABLE", "INSERT", "SELECT", "PREDICT",
                "DEPLOY_MODEL"} <= actions

    def test_provenance_answers_why(self, session):
        lineage = session.model_lineage("readmit_model")
        names = {e.name for e in lineage}
        assert "patients" in names
        assert "patients.age" in names
        # Hyperparameters are part of the genesis record.
        assert any(
            e.entity_type is EntityType.HYPERPARAMETER for e in lineage
        )

    def test_impact_analysis(self, session):
        affected = session.models_affected_by_column("patients", "age")
        assert "readmit_model:v1" in affected

    def test_model_is_data_in_the_dbms(self, session):
        rows = session.database.execute(
            "SELECT name, version FROM flock_models"
        ).rows()
        assert ("readmit_model", 1) in rows


class TestDecisionsViaPolicies:
    def test_policy_chain_on_model_output(self, session):
        session.policies.add_policy(
            CapPolicy("risk_cap", 0.9, priority=50)
        )
        session.policies.add_policy(
            VetoPolicy(
                "manual_review",
                lambda v, ctx: ctx.get("hospice", False),
                reason="hospice patients reviewed by hand",
                priority=10,
            )
        )
        result = session.sql(
            "SELECT patient_id, PREDICT(readmit_model) AS risk FROM patients "
            "ORDER BY risk DESC LIMIT 3"
        )
        decisions = [
            session.policies.decide(
                "readmit_model", risk, {"patient_id": pid}
            )
            for pid, risk in result.rows()
        ]
        assert all(d.final_value <= 0.9 for d in decisions)
        vetoed = session.policies.decide(
            "readmit_model", 0.5, {"hospice": True}
        )
        assert vetoed.vetoed

    def test_transactional_action_into_dbms(self, session):
        session.database.execute(
            "CREATE TABLE IF NOT EXISTS interventions "
            "(patient_id INT, risk FLOAT)"
        )
        decision = session.policies.decide(
            "readmit_model", 0.85, {"patient_id": 1}
        )
        ok = session.policies.act_in_database(
            decision,
            session.database,
            [f"INSERT INTO interventions VALUES (1, {decision.final_value})"],
        )
        assert ok
        assert session.database.execute(
            "SELECT COUNT(*) FROM interventions"
        ).scalar() == 1

    def test_explainability_end_to_end(self, session):
        decision = session.policies.decide(
            "readmit_model", 0.95, {"patient_id": 2}
        )
        trace = session.policies.state.explain(decision.decision_id)
        assert "raw model output: 0.95" in trace
        assert "risk_cap" in trace


class TestRetrainingFlow:
    def test_version2_and_both_tracked(self, session):
        session.train_and_deploy(
            "readmit_model",
            LogisticRegression(max_iter=100),
            "patients",
            FEATURES,
            "readmitted",
            description="readmission risk v2",
        )
        assert session.registry.latest("readmit_model").version == 2
        rows = session.database.execute(
            "SELECT version FROM flock_models WHERE name = 'readmit_model' "
            "ORDER BY version"
        ).column("version")
        assert rows == [1, 2]
        # Both model versions' provenance exists.
        assert session.provenance.find(
            EntityType.MODEL_VERSION, "readmit_model:v1"
        ) is not None
        assert session.provenance.find(
            EntityType.MODEL_VERSION, "readmit_model:v2"
        ) is not None
