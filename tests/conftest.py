"""Shared fixtures for the flock test suite."""

from __future__ import annotations

import pytest

from flock import create_database
from flock.db import Database


@pytest.fixture
def db() -> Database:
    """A plain database (no model store)."""
    return Database()


@pytest.fixture
def emp_db() -> Database:
    """A database with a small employees table."""
    database = Database()
    database.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, "
        "dept TEXT, salary FLOAT, hired DATE)"
    )
    database.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 'eng', 100.0, '2020-01-05'), "
        "(2, 'bob', 'eng', 90.0, '2021-03-01'), "
        "(3, 'cyd', 'hr', 70.0, '2019-07-20'), "
        "(4, 'dee', 'hr', NULL, '2022-02-02'), "
        "(5, 'eve', 'ops', 85.0, '2021-11-11')"
    )
    return database


@pytest.fixture
def ml_db():
    """(database, registry) wired with scorer + cross-optimizer."""
    return create_database()


@pytest.fixture
def loan_setup(ml_db):
    """Database with the loans table and a deployed logistic model.

    Returns (database, registry, dataset, pipeline).
    """
    from flock.ml import LogisticRegression, Pipeline, StandardScaler
    from flock.ml.datasets import load_dataset_into, make_loans
    from flock.mlgraph import to_graph

    database, registry = ml_db
    dataset = make_loans(200, random_state=0)
    load_dataset_into(database, dataset)
    pipeline = Pipeline(
        [
            ("scale", StandardScaler()),
            ("clf", LogisticRegression(max_iter=200)),
        ]
    ).fit(dataset.feature_matrix(), dataset.target_vector())
    graph = to_graph(pipeline, dataset.feature_names, name="loan_model")
    registry.deploy("loan_model", graph)
    return database, registry, dataset, pipeline
