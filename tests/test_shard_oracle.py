"""Shard oracle: the sharded cluster must be repr-identical to one engine.

Each round drives the *same* seeded random workload — scattered and
single-row inserts, point and broadcast updates/deletes, DDL, model
deploys, concurrent reads, per-shard crash-reopens — through a sharded
cluster AND through a plain single-engine twin, asserting after every
operation that both sides agreed (same result or same error class), and
after every round that the full logical state is identical *in row order*:
the hidden-sequence merge discipline promises bit-identical results, so
rows are compared unsorted. Any divergence means a row was routed,
sequenced, merged or compensated differently than a single engine would
have.

Knobs (environment variables): ``FLOCK_SHARD_ORACLE_ROUNDS`` (default 3),
``FLOCK_SHARD_ORACLE_OPS`` (default 60), ``FLOCK_SHARD_ORACLE_SEED``,
``FLOCK_SHARDS`` (shard count, default 2) and
``FLOCK_SHARD_ORACLE_ARTIFACTS`` — a directory to dump diverged state
into (CI uploads it on failure).
"""

from __future__ import annotations

import json
import os
import random
import threading
from pathlib import Path

import flock
from flock.errors import FlockError
from flock.proc import proc_enabled

ROUNDS = int(os.environ.get("FLOCK_SHARD_ORACLE_ROUNDS", "3"))
OPS = int(os.environ.get("FLOCK_SHARD_ORACLE_OPS", "60"))
SEED = int(os.environ.get("FLOCK_SHARD_ORACLE_SEED", "20260809"))
SHARDS = int(os.environ.get("FLOCK_SHARDS", "2"))

READS = [
    "SELECT * FROM orac",
    "SELECT * FROM orac LIMIT 7",
    "SELECT COUNT(*), MIN(k), MAX(k) FROM orac",
    "SELECT v, COUNT(*) FROM orac GROUP BY v ORDER BY v LIMIT 5",
    "SELECT k FROM orac WHERE k > 10 ORDER BY k DESC LIMIT 6",
    # The lifted constructs must survive scatter-gather untouched: the
    # coordinator re-binds the whole statement over merged snapshots, so
    # CTEs, EXISTS, scalar subqueries and windows ride along for free.
    "WITH c AS (SELECT k, v FROM orac WHERE k > 5) "
    "SELECT x.k, y.v FROM c x JOIN c y ON x.k = y.k ORDER BY x.k",
    "SELECT o.k FROM orac o "
    "WHERE EXISTS (SELECT * FROM side s WHERE s.k = o.k) ORDER BY o.k",
    "SELECT o.k FROM orac o "
    "WHERE NOT EXISTS (SELECT * FROM side s WHERE s.k = o.k) ORDER BY o.k",
    "SELECT o.k, (SELECT COUNT(*) FROM side) FROM orac o ORDER BY o.k LIMIT 9",
    "SELECT o.k FROM orac o "
    "WHERE o.k > (SELECT SUM(s.w) FROM side s WHERE s.k = o.k) ORDER BY o.k",
    # Encoding-sensitive shapes: text equality/IN/LIKE/range predicates,
    # text grouping and text-led top-k take the dictionary late-decode
    # fast paths on each shard when FLOCK_ENCODINGS=1 and the plain paths
    # under FLOCK_ENCODINGS=0; the gathered result must be identical to
    # the single engine in both lanes.
    "SELECT k, v FROM orac WHERE v = 'v3' ORDER BY k",
    "SELECT k FROM orac WHERE v IN ('v1', 'v7', 'zz') ORDER BY k",
    "SELECT k FROM orac WHERE v LIKE 'v1%' ORDER BY k",
    "SELECT k FROM orac WHERE v >= 'v4' ORDER BY k LIMIT 9",
    "SELECT k, v FROM orac ORDER BY v DESC, k LIMIT 8",
    "SELECT k, ROW_NUMBER() OVER (ORDER BY k DESC) FROM orac ORDER BY k",
    "SELECT k, RANK() OVER (ORDER BY v), SUM(k) OVER (ORDER BY k) "
    "FROM orac ORDER BY k",
]


def _tiny_graph():
    from flock.ml import LinearRegression
    from flock.ml.datasets import make_regression
    from flock.mlgraph import to_graph

    X, y, _ = make_regression(30, 2, random_state=11)
    return to_graph(LinearRegression().fit(X, y), ["f0", "f1"])


def logical_state(client) -> dict[str, list]:
    """Every user-visible table as row reprs, *in engine row order*."""
    state: dict[str, list] = {}
    for name in sorted(client.db.catalog.table_names()):
        rows = client.execute(f"SELECT * FROM {name}").rows()
        state[name] = [repr(row) for row in rows]
    return state


def apply_both(sharded, single, sql, params=None):
    """One op on both sides: same rows/count, or the same error class."""
    outcomes = []
    for client in (sharded, single):
        try:
            result = client.execute(sql, params)
            outcomes.append(
                ("ok", result.affected_rows, repr(result.rows()))
            )
        except FlockError as exc:
            outcomes.append(("err", type(exc).__name__, ""))
    assert outcomes[0] == outcomes[1], (sql, outcomes)


def run_round(sharded, single, rng: random.Random, ops: int) -> None:
    graph = _tiny_graph()
    for client in (sharded, single):
        client.execute(
            "CREATE TABLE IF NOT EXISTS orac (k INT PRIMARY KEY, v TEXT)"
        )
        client.execute("CREATE TABLE IF NOT EXISTS side (k INT, w FLOAT)")

    stop = threading.Event()
    reader_errors: list[Exception] = []

    def reader() -> None:
        # Concurrent scattered reads must never error or tear: gathers
        # take the cluster lock's shared side against scatter writes.
        while not stop.is_set():
            try:
                sharded.execute("SELECT COUNT(*) FROM orac")
            except Exception as exc:  # pragma: no cover - failure path
                reader_errors.append(exc)
                return

    thread = threading.Thread(target=reader)
    thread.start()

    live: list[int] = []
    marker = 0
    tables = 0
    deploys = 0
    try:
        for _ in range(ops):
            roll = rng.random()
            if roll < 0.30:
                # Multi-row scatter; occasionally a duplicate key, which
                # must fail (and compensate) identically on both sides.
                batch = []
                for _ in range(rng.randrange(1, 6)):
                    if live and rng.random() < 0.1:
                        key = rng.choice(live)
                    else:
                        marker += 1
                        key = marker
                    batch.append((key, f"v{key}"))
                values = ", ".join(f"({k}, '{v}')" for k, v in batch)
                apply_both(
                    sharded, single, f"INSERT INTO orac VALUES {values}"
                )
                if len({k for k, _ in batch}) == len(batch):
                    live.extend(k for k, _ in batch)
            elif roll < 0.45 and live:
                victim = live.pop(rng.randrange(len(live)))
                apply_both(
                    sharded, single,
                    f"DELETE FROM orac WHERE k = {victim}",
                )
            elif roll < 0.55 and live:
                target = rng.choice(live)
                apply_both(
                    sharded, single,
                    f"UPDATE orac SET v = 'u{target}' WHERE k = {target}",
                )
            elif roll < 0.65 and live:
                bound = rng.choice(live)
                apply_both(
                    sharded, single,
                    f"UPDATE orac SET v = 'lt' WHERE k < {bound}",
                )
            elif roll < 0.72:
                marker += 1
                apply_both(
                    sharded, single,
                    "INSERT INTO side VALUES (?, ?)",
                    [marker, rng.random()],
                )
            elif roll < 0.80:
                tables += 1
                apply_both(
                    sharded, single,
                    f"CREATE TABLE IF NOT EXISTS orac_extra_{tables} "
                    f"(k INT PRIMARY KEY)",
                )
                apply_both(
                    sharded, single,
                    f"INSERT INTO orac_extra_{tables} VALUES (1)",
                )
            elif roll < 0.88:
                deploys += 1
                name = f"orac_m{deploys}"
                if not sharded.registry.has_model(name):
                    sharded.registry.deploy(name, graph)
                    single.registry.deploy(name, graph)
            else:
                # Per-shard crash: close and recover one shard through
                # Database.open mid-workload.
                index = rng.randrange(sharded.cluster.n_shards)
                sharded.cluster.restart_shard(index)

            if rng.random() < 0.4:
                query = rng.choice(READS)
                got = sharded.execute(query).rows()
                want = single.execute(query).rows()
                assert repr(got) == repr(want), query
    finally:
        stop.set()
        thread.join()
    assert not reader_errors, reader_errors


def dump_divergence(sharded, single) -> None:
    artifacts = os.environ.get("FLOCK_SHARD_ORACLE_ARTIFACTS")
    if not artifacts:
        return
    dest = Path(artifacts)
    dest.mkdir(parents=True, exist_ok=True)
    (dest / "single.json").write_text(
        json.dumps(logical_state(single), indent=2, sort_keys=True)
    )
    (dest / "sharded.json").write_text(
        json.dumps(logical_state(sharded), indent=2, sort_keys=True)
    )
    (dest / "status.json").write_text(
        json.dumps(
            sharded.cluster.stats(), indent=2, sort_keys=True, default=repr
        )
    )


def test_shard_oracle(tmp_path):
    rng = random.Random(SEED)
    for round_no in range(ROUNDS):
        sharded = flock.connect(
            tmp_path / f"round{round_no}" / "sharded", shards=SHARDS
        )
        single = flock.connect(tmp_path / f"round{round_no}" / "single")
        try:
            if proc_enabled(None):
                # The CI process lane runs this oracle under FLOCK_PROC=1;
                # assert the backend actually engaged so the lane can
                # never silently regress to threads and keep passing.
                assert sharded.cluster.backend == "process", (
                    "FLOCK_PROC=1 but the sharded cluster stayed on the "
                    "thread backend"
                )
                assert all(
                    s.pid != os.getpid() for s in sharded.cluster.shards
                )
            run_round(sharded, single, rng, OPS)
            # Full-state comparison, order included: the merge discipline
            # promises bit-identical row order, not just equal multisets.
            sharded_state = {
                k: v
                for k, v in logical_state(sharded).items()
                if k != "flock_models"
            }
            single_state = {
                k: v
                for k, v in logical_state(single).items()
                if k != "flock_models"
            }
            if sharded_state != single_state:
                dump_divergence(sharded, single)
            assert sharded_state == single_state, (
                f"round {round_no} ({SHARDS} shards): sharded state "
                f"diverged from the single-engine twin"
            )
            assert sorted(sharded.registry.model_names()) == sorted(
                single.registry.model_names()
            )
        finally:
            sharded.close()
            single.close()
