"""Unit + property tests for versioned columnar storage."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from flock.db.schema import Column, TableSchema
from flock.db.storage import ColumnStats, Table
from flock.db.types import DataType
from flock.db.vector import ColumnVector
from flock.errors import CatalogError, ConstraintError, ExecutionError


def _table(primary_key: bool = False) -> Table:
    return Table(
        TableSchema.of(
            "t",
            [
                Column("id", DataType.INTEGER, nullable=False,
                       primary_key=primary_key),
                Column("name", DataType.TEXT),
                Column("score", DataType.FLOAT),
            ],
        )
    )


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema.of(
                "t",
                [Column("a", DataType.INTEGER), Column("A", DataType.TEXT)],
            )

    def test_index_of_case_insensitive(self):
        schema = _table().schema
        assert schema.index_of("NAME") == 1
        with pytest.raises(CatalogError):
            schema.index_of("missing")

    def test_primary_key_indexes(self):
        assert _table(primary_key=True).schema.primary_key_indexes == [0]


class TestVersioning:
    def test_insert_creates_staged_version_only(self):
        table = _table()
        staged = table.build_insert([(1, "a", 1.0)])
        # Not yet visible.
        assert table.row_count == 0
        table.publish(staged)
        assert table.row_count == 1
        assert table.version_count == 2

    def test_version_history_retained(self):
        table = _table()
        for i in range(3):
            table.publish(table.build_insert([(i, f"n{i}", float(i))]))
        assert table.version_count == 4
        assert table.version(0).row_count == 0
        assert table.version(2).row_count == 2
        assert [v.operation for v in table.versions()] == [
            "CREATE", "INSERT", "INSERT", "INSERT",
        ]

    def test_historical_scan(self):
        table = _table()
        table.publish(table.build_insert([(1, "a", 1.0)]))
        table.publish(table.build_delete(np.array([False])))
        assert table.row_count == 0
        assert table.scan(version_id=1).num_rows == 1

    def test_unknown_version(self):
        with pytest.raises(ExecutionError):
            _table().version(99)


class TestMutations:
    def test_delete_keep_mask(self):
        table = _table()
        table.publish(
            table.build_insert([(1, "a", 1.0), (2, "b", 2.0), (3, "c", 3.0)])
        )
        table.publish(table.build_delete(np.array([True, False, True])))
        assert table.scan().column("id").to_pylist() == [1, 3]

    def test_update_assignments(self):
        table = _table()
        table.publish(table.build_insert([(1, "a", 1.0), (2, "b", 2.0)]))
        mask = np.array([False, True])
        replacement = ColumnVector.from_values(DataType.FLOAT, [99.0])
        table.publish(table.build_update(mask, {2: replacement}))
        assert table.scan().column("score").to_pylist() == [1.0, 99.0]

    def test_truncate(self):
        table = _table()
        table.publish(table.build_insert([(1, "a", 1.0)]))
        table.publish(table.build_truncate())
        assert table.row_count == 0
        assert table.version_count == 3

    def test_wrong_width_rejected(self):
        with pytest.raises(ExecutionError):
            _table().build_insert([(1, "a")])

    def test_not_null_enforced(self):
        with pytest.raises(ConstraintError):
            _table().build_insert([(None, "a", 1.0)])

    def test_primary_key_duplicates_rejected(self):
        table = _table(primary_key=True)
        with pytest.raises(ConstraintError):
            table.build_insert([(1, "a", 1.0), (1, "b", 2.0)])

    def test_primary_key_checked_across_versions(self):
        table = _table(primary_key=True)
        table.publish(table.build_insert([(1, "a", 1.0)]))
        with pytest.raises(ConstraintError):
            table.build_insert([(1, "again", 2.0)])


class TestStats:
    def test_column_stats(self):
        table = _table()
        table.publish(
            table.build_insert(
                [(1, "a", 2.0), (2, "b", None), (3, "a", 8.0)]
            )
        )
        stats = table.stats()
        assert stats.row_count == 3
        score = stats.column("score")
        assert score.null_count == 1
        assert score.min_value == 2.0
        assert score.max_value == 8.0
        name = stats.column("name")
        assert name.distinct_count == 2
        assert name.min_value == "a" and name.max_value == "b"

    def test_stats_cached_per_version(self):
        table = _table()
        table.publish(table.build_insert([(1, "a", 1.0)]))
        version = table.head_version
        assert version.stats() is version.stats()

    def test_empty_column_stats(self):
        stats = ColumnStats.from_vector(
            ColumnVector.from_values(DataType.FLOAT, [None, None])
        )
        assert stats.null_count == 2
        assert stats.distinct_count == 0
        assert stats.min_value is None


@given(
    st.lists(
        st.tuples(
            st.integers(-100, 100),
            st.one_of(st.text(max_size=5), st.none()),
            st.one_of(st.floats(-1e6, 1e6), st.none()),
        ),
        max_size=30,
    )
)
def test_insert_roundtrip_property(rows):
    """Whatever rows go in, the head version scans them back unchanged."""
    table = _table()
    table.publish(table.build_insert(rows))
    scanned = list(table.scan().rows())
    assert scanned == [tuple(r) for r in rows]


@given(st.lists(st.integers(0, 5), min_size=1, max_size=8))
def test_version_count_property(batches):
    """Each publish adds exactly one version; history never shrinks."""
    table = _table()
    for batch_index, n in enumerate(batches):
        rows = [
            (batch_index * 100 + i, "x", 0.5) for i in range(n)
        ]
        table.publish(table.build_insert(rows))
    assert table.version_count == len(batches) + 1
    assert table.row_count == sum(batches)
