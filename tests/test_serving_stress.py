"""Concurrency stress: N client threads × M mixed statements through the
serving layer.

What must hold under concurrency (and what each assertion pins down):

- **Snapshot isolation**: every multi-row INSERT commits atomically, so a
  concurrent reader always sees an even ledger row count — never half a
  statement.
- **Exactly-once effects**: one audit record and one statement's worth of
  rows per INSERT, no duplicated retries.
- **No lost updates**: serialized ``UPDATE n = n + 1`` increments sum to
  exactly the number of statements executed.
- **Correct scatter**: concurrent point predictions coalesced into IN-list
  batches return exactly what direct sequential execution returns.
"""

from __future__ import annotations

import threading

import pytest

from flock.serving import FlockServer

N_THREADS = 8
OPS_PER_THREAD = 24

POINT_QUERY = (
    "SELECT applicant_id, PREDICT(loan_model) AS p "
    "FROM loans WHERE applicant_id = ?"
)


@pytest.fixture
def stress_db(loan_setup):
    database, *_ = loan_setup
    database.execute("CREATE TABLE ledger (batch_id INT, leg INT)")
    database.execute("CREATE TABLE counter_t (id INT, n INT)")
    database.execute("INSERT INTO counter_t VALUES (1, 0)")
    return database


def test_mixed_workload_stress(stress_db):
    database = stress_db
    expected_predictions = {
        key: database.execute(POINT_QUERY, [key]).rows()
        for key in range(1, 41)
    }
    audit_before = len(
        database.audit.log.records(action="INSERT", object_name="ledger")
    )

    errors: list[BaseException] = []
    torn_reads: list[int] = []
    mismatches: list[tuple] = []
    inserts_done = []
    updates_done = []
    guard = threading.Lock()

    with FlockServer(database, workers=6, batch_wait_ms=1.0,
                     max_pending=N_THREADS * OPS_PER_THREAD) as server:
        barrier = threading.Barrier(N_THREADS)

        def client(thread_id: int) -> None:
            barrier.wait()
            try:
                for i in range(OPS_PER_THREAD):
                    op = (thread_id + i) % 4
                    if op == 0:
                        # atomic two-row insert: one statement, one commit
                        batch_id = thread_id * 1000 + i
                        server.execute(
                            "INSERT INTO ledger VALUES "
                            f"({batch_id}, 0), ({batch_id}, 1)"
                        )
                        with guard:
                            inserts_done.append(batch_id)
                    elif op == 1:
                        server.execute(
                            "UPDATE counter_t SET n = n + 1 WHERE id = 1"
                        )
                        with guard:
                            updates_done.append(1)
                    elif op == 2:
                        count = server.execute(
                            "SELECT COUNT(*) FROM ledger"
                        ).scalar()
                        if count % 2 != 0:
                            with guard:
                                torn_reads.append(count)
                    else:
                        key = (thread_id * OPS_PER_THREAD + i) % 40 + 1
                        rows = server.execute(POINT_QUERY, [key]).rows()
                        if rows != expected_predictions[key]:
                            with guard:
                                mismatches.append((key, rows))
            except BaseException as exc:  # noqa: BLE001 - collect, not mask
                with guard:
                    errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(t,)) for t in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.stats()

    assert not errors, errors[:3]
    assert not torn_reads, f"readers saw half-committed inserts: {torn_reads}"
    assert not mismatches, mismatches[:3]

    # exactly-once: every insert landed once, with one audit record each
    assert database.execute("SELECT COUNT(*) FROM ledger").scalar() == (
        2 * len(inserts_done)
    )
    audit_after = len(
        database.audit.log.records(action="INSERT", object_name="ledger")
    )
    assert audit_after - audit_before == len(inserts_done)

    # no lost updates: serialized writers each contributed their increment
    assert database.execute(
        "SELECT n FROM counter_t WHERE id = 1"
    ).scalar() == len(updates_done)

    assert stats["served"] == N_THREADS * OPS_PER_THREAD
    assert stats["rejected"] == 0


def test_drain_under_load(stress_db):
    database = stress_db
    server = FlockServer(database, workers=4, batch_wait_ms=5.0,
                         max_pending=512)
    futures = [
        server.submit(POINT_QUERY, [k % 40 + 1]) for k in range(120)
    ]
    server.shutdown(drain=True)
    resolved = 0
    for future in futures:
        result = future.result()
        assert result.rows() is not None
        resolved += 1
    assert resolved == 120


def test_concurrent_snapshot_reads_overlap(stress_db):
    """Readers genuinely run in parallel under the shared statement lock."""
    import time

    database = stress_db
    peak = {"concurrent": 0}
    active = []
    guard = threading.Lock()
    original = database.run_select_ast

    def tracking_run_select_ast(*args, **kwargs):
        with guard:
            active.append(1)
            peak["concurrent"] = max(peak["concurrent"], len(active))
        time.sleep(0.005)  # widen the window so overlap is observable
        try:
            return original(*args, **kwargs)
        finally:
            with guard:
                active.pop()

    database.run_select_ast = tracking_run_select_ast
    # An aggregate over the key is not batchable, so every request executes
    # its own snapshot read — exactly the concurrency the lock must allow.
    query = "SELECT COUNT(*) FROM loans WHERE applicant_id = ?"
    try:
        with FlockServer(database, workers=6, batch_wait_ms=0.1) as server:
            threads = [
                threading.Thread(
                    target=lambda k=k: server.execute(query, [k])
                )
                for k in range(1, 25)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
    finally:
        database.run_select_ast = original
    assert peak["concurrent"] > 1
