"""Encoded-vector round trips, memory-budgeted spill and the top-k heap.

The property battery pushes every encoding x dtype x null pattern through
encode -> take/filter/slice/concat -> decode and demands bit-identical
physical arrays against the plain vector. Engine tests then hold the same
contract across WAL replay and checkpoint reopen, verify that a query
exceeding ``flock.memory_budget`` completes by spilling (metrics fired,
``spill=`` extras rendered, results unchanged), and pin the bounded-heap
ORDER BY + LIMIT path (``topk=heap``).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import flock
from flock.db import Database
from flock.db.encoding import (
    BitPackedVector,
    DictionaryVector,
    EncodedVector,
    RunLengthVector,
    concat_encoded,
    encode_columns,
    encode_vector,
    encoding_of,
    vector_nbytes,
)
from flock.db.types import DataType
from flock.db.vector import ColumnVector
from flock.errors import FlockError
from flock.observability import metrics


# ----------------------------------------------------------------------
# Property battery: encode -> operate -> decode is bit-identical
# ----------------------------------------------------------------------
N = 96  # above MIN_ENCODE_ROWS, enough for interesting masks


def _text_lowcard(rng):
    return [f"cat_{rng.randrange(5)}" for _ in range(N)]


def _int_runs(rng):
    return [i // 8 for i in range(N)]


def _int_smallrange(rng):
    return [rng.randrange(0, 200) for _ in range(N)]


def _int_offset(rng):
    # Large offset, small span: frame-of-reference must carry the base.
    return [10_000_000 + rng.randrange(0, 50) for _ in range(N)]


def _date_runs(rng):
    return [19_000 + (i // 12) for i in range(N)]  # days since epoch


def _float_runs(rng):
    return [float(i // 16) * 0.5 for i in range(N)]


def _bool_runs(rng):
    return [(i // 10) % 2 == 0 for i in range(N)]


SHAPES = [
    ("text-lowcard", DataType.TEXT, _text_lowcard, DictionaryVector),
    ("int-runs", DataType.INTEGER, _int_runs, RunLengthVector),
    ("int-smallrange", DataType.INTEGER, _int_smallrange, BitPackedVector),
    ("int-offset", DataType.INTEGER, _int_offset, BitPackedVector),
    ("date-runs", DataType.DATE, _date_runs, RunLengthVector),
    ("float-runs", DataType.FLOAT, _float_runs, RunLengthVector),
    ("bool-runs", DataType.BOOLEAN, _bool_runs, RunLengthVector),
]

NULL_PATTERNS = {
    "none": lambda i: False,
    "sparse": lambda i: i % 7 == 0,
    "blocks": lambda i: (i // 16) % 2 == 1,
    "edges": lambda i: i < 3 or i >= N - 3,
    "all": lambda i: True,
}


def _build(shape, null_pattern):
    _, dtype, maker, _ = shape
    rng = random.Random(20260809)
    values = maker(rng)
    is_null = NULL_PATTERNS[null_pattern]
    items = [None if is_null(i) else v for i, v in enumerate(values)]
    return ColumnVector.from_values(dtype, items)


def _assert_identical(left: ColumnVector, right: ColumnVector) -> None:
    """Decoded physical arrays match exactly (values under NULLs too)."""
    assert left.dtype is right.dtype
    assert len(left) == len(right)
    assert np.array_equal(np.asarray(left.nulls), np.asarray(right.nulls))
    lv, rv = np.asarray(left.values), np.asarray(right.values)
    if lv.dtype == np.dtype(object):
        mask = ~np.asarray(left.nulls)
        assert lv[mask].tolist() == rv[mask].tolist()
    else:
        assert np.array_equal(lv, rv), (lv, rv)
    assert left.to_pylist() == right.to_pylist()


@pytest.mark.parametrize("null_pattern", sorted(NULL_PATTERNS))
@pytest.mark.parametrize("shape", SHAPES, ids=[s[0] for s in SHAPES])
def test_encode_roundtrip_operations(shape, null_pattern):
    plain = _build(shape, null_pattern)
    encoded = encode_vector(plain)
    if null_pattern == "none":
        # With no nulls the selection rules must pick the expected class;
        # null patterns may shift the winner (sparse nulls break runs) or
        # leave the vector plain — round-trip identity still holds below.
        assert isinstance(encoded, shape[3]), encoding_of(encoded)
    if not isinstance(encoded, EncodedVector):
        _assert_identical(encoded, plain)
        return
    assert vector_nbytes(encoded) < vector_nbytes(plain)

    _assert_identical(encoded, plain)
    _assert_identical(encoded.materialize(), plain)

    rng = np.random.default_rng(7)
    take = rng.integers(0, N, size=N + 13).astype(np.int64)
    _assert_identical(encoded.take(take), plain.take(take))

    mask = (np.arange(N) % 3 == 0) | (np.arange(N) > N - 10)
    _assert_identical(encoded.filter(mask), plain.filter(mask))

    _assert_identical(encoded.slice(5, N - 7), plain.slice(5, N - 7))
    _assert_identical(encoded.slice(0, 0), plain.slice(0, 0))

    _assert_identical(
        encoded.concat(encoded.slice(0, 11)),
        plain.concat(plain.slice(0, 11)),
    )
    # Mixed encoded/plain concat falls back to decoded arrays.
    _assert_identical(
        encoded.concat(plain.slice(0, 11)),
        plain.concat(plain.slice(0, 11)),
    )

    for i in (0, 1, N // 2, N - 1):
        assert encoded[i] == plain[i]


@pytest.mark.parametrize("shape", SHAPES, ids=[s[0] for s in SHAPES])
def test_concat_encoded_same_payload(shape):
    plain = _build(shape, "none")
    encoded = encode_vector(plain)
    if not isinstance(encoded, (DictionaryVector, BitPackedVector)):
        pytest.skip("one-shot concat covers dictionary/bit-packed only")
    chunks = [encoded.slice(0, 40), encoded.slice(40, 70), encoded.slice(70, N)]
    merged = concat_encoded(chunks)
    assert merged is not None
    assert type(merged) is type(encoded)
    _assert_identical(merged, plain)


def test_encode_columns_kill_switch_decodes():
    plain = _build(SHAPES[0], "sparse")
    encoded = encode_vector(plain)
    assert isinstance(encoded, DictionaryVector)
    out = encode_columns([encoded], enabled=False)
    assert not isinstance(out[0], EncodedVector)
    _assert_identical(out[0], plain)
    again = encode_columns([plain], enabled=True)
    assert isinstance(again[0], DictionaryVector)


def test_short_and_highcard_vectors_stay_plain():
    short = ColumnVector.from_values(DataType.TEXT, ["a", "b"] * 8)
    assert not isinstance(encode_vector(short), EncodedVector)
    unique = ColumnVector.from_values(
        DataType.TEXT, [f"v{i}" for i in range(N)]
    )
    assert not isinstance(encode_vector(unique), EncodedVector)


# ----------------------------------------------------------------------
# Engine round trips: encoded tables through WAL replay and checkpoints
# ----------------------------------------------------------------------
def _fill(db, rows=400):
    db.execute(
        "CREATE TABLE enc (k INT PRIMARY KEY, cat TEXT, qty INT, "
        "price FLOAT, d DATE)"
    )
    db.executemany(
        "INSERT INTO enc VALUES (?, ?, ?, ?, ?)",
        [
            (
                i,
                None if i % 11 == 0 else f"cat_{i % 4}",
                i % 50,
                float(i % 7) * 1.25,
                f"2026-0{1 + i % 9}-1{i % 8}",
            )
            for i in range(rows)
        ],
    )


def _head_encodings(db, table):
    head = db.catalog.table(table).head_version
    return [encoding_of(c) for c in head.columns]


def test_encoded_head_version_and_kill_switch(tmp_path):
    db = Database(encodings=True)
    _fill(db)
    encs = _head_encodings(db, "enc")
    assert encs[1] == "dict" and encs[2] == "bp"
    rows = db.execute("SELECT * FROM enc ORDER BY k").rows()

    plain = Database(encodings=False)
    _fill(plain)
    assert all(e is None for e in _head_encodings(plain, "enc"))
    assert plain.execute("SELECT * FROM enc ORDER BY k").rows() == rows

    # Runtime kill switch: the next staged version decodes everything.
    db.execute("SET flock.encodings = 0")
    db.execute("INSERT INTO enc VALUES (9001, 'cat_1', 1, 0.5, '2026-01-01')")
    assert all(e is None for e in _head_encodings(db, "enc"))
    # Re-enabling re-probes plain columns at the next power-of-two row
    # crossing (amortized O(log n)), so append past the next boundary.
    db.execute("SET flock.encodings = 1")
    db.executemany(
        "INSERT INTO enc VALUES (?, 'cat_2', 2, 0.5, '2026-01-02')",
        [(10_000 + i,) for i in range(200)],
    )
    assert _head_encodings(db, "enc")[1] == "dict"
    db.close()
    plain.close()


def test_encoded_table_survives_wal_replay(tmp_path):
    path = tmp_path / "enc_wal"
    db = Database.open(path, checkpoint_bytes=0, encodings=True)
    _fill(db)
    expected = db.execute("SELECT * FROM enc ORDER BY k").rows()
    # No close(): recovery replays the whole WAL into encoded storage.
    reopened = Database.open(path, checkpoint_bytes=0, encodings=True)
    assert reopened.execute("SELECT * FROM enc ORDER BY k").rows() == expected
    assert _head_encodings(reopened, "enc")[1] == "dict"
    reopened.close()


def test_encoded_table_survives_checkpoint_reopen(tmp_path):
    path = tmp_path / "enc_ckpt"
    db = Database.open(path, encodings=True)
    _fill(db)
    expected = db.execute("SELECT * FROM enc ORDER BY k").rows()
    db.checkpoint()
    db.close()
    reopened = Database.open(path, encodings=True)
    assert reopened.execute("SELECT * FROM enc ORDER BY k").rows() == expected
    # The checkpoint stores plain JSON; the loader re-encodes the head.
    assert _head_encodings(reopened, "enc")[1] == "dict"
    # And a kill-switch reopen of the same files yields plain storage.
    reopened.close()
    off = Database.open(path, encodings=False)
    assert off.execute("SELECT * FROM enc ORDER BY k").rows() == expected
    assert all(e is None for e in _head_encodings(off, "enc"))
    off.close()


# ----------------------------------------------------------------------
# Memory budget: blocking operators spill, results unchanged
# ----------------------------------------------------------------------
def _explain_text(db, sql):
    return "\n".join(
        " ".join(str(v) for v in row)
        for row in db.execute("EXPLAIN ANALYZE " + sql).rows()
    )


def test_aggregate_spills_under_budget():
    db = Database(encodings=True)
    _fill(db, rows=1200)
    sql = (
        "SELECT cat, qty, COUNT(*), SUM(price), MIN(k) FROM enc "
        "GROUP BY cat, qty ORDER BY cat, qty"
    )
    expected = db.execute(sql).rows()
    before = metrics().counter("spill.aggregates").value
    db.execute("SET flock.memory_budget = 4000")
    assert db.execute(sql).rows() == expected
    assert metrics().counter("spill.aggregates").value > before
    assert metrics().counter("spill.bytes_written").value > 0
    assert "spill=agg:" in _explain_text(db, sql)
    db.execute("SET flock.memory_budget = 0")
    assert "spill=agg:" not in _explain_text(db, sql)
    db.close()


def test_join_spills_under_budget():
    db = Database(encodings=True)
    _fill(db, rows=900)
    db.execute("CREATE TABLE dims (qty INT, label TEXT)")
    db.executemany(
        "INSERT INTO dims VALUES (?, ?)",
        [(q, f"label_{q % 6}") for q in range(50)],
    )
    for join in ("JOIN", "LEFT JOIN"):
        sql = (
            f"SELECT e.k, e.cat, d.label FROM enc e {join} dims d "
            "ON e.qty = d.qty ORDER BY e.k"
        )
        expected = db.execute(sql).rows()
        before = metrics().counter("spill.joins").value
        db.execute("SET flock.memory_budget = 4000")
        assert db.execute(sql).rows() == expected
        assert metrics().counter("spill.joins").value > before
        assert "spill=join:" in _explain_text(db, sql)
        db.execute("SET flock.memory_budget = 0")
    db.close()


def test_spill_under_budget_durable_database(tmp_path):
    # The spill directory lives under the database directory when durable.
    path = tmp_path / "spilled"
    db = Database.open(path, encodings=True, memory_budget=4000)
    _fill(db, rows=1200)
    sql = "SELECT cat, COUNT(*), SUM(qty) FROM enc GROUP BY cat, qty"
    rows = db.execute(sql).rows()
    db.execute("SET flock.memory_budget = 0")
    assert db.execute(sql).rows() == rows
    # Spill files are transient: nothing survives the statement.
    spill_dir = path / "spill"
    assert not spill_dir.exists() or not list(spill_dir.iterdir())
    db.close()


def test_tpch_class_query_exceeding_budget_completes():
    """A lineitem-class aggregation far over budget completes via spill."""
    db = Database(encodings=True)
    db.execute(
        "CREATE TABLE lineitem (l_orderkey INT, l_quantity INT, "
        "l_extendedprice FLOAT, l_returnflag TEXT, l_linestatus TEXT)"
    )
    rng = random.Random(42)
    db.executemany(
        "INSERT INTO lineitem VALUES (?, ?, ?, ?, ?)",
        [
            (
                i // 4,
                rng.randrange(1, 51),
                round(rng.uniform(900.0, 100_000.0), 2),
                rng.choice(["A", "N", "R"]),
                rng.choice(["F", "O"]),
            )
            for i in range(3000)
        ],
    )
    sql = (
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
        "SUM(l_extendedprice), COUNT(*) FROM lineitem "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    )
    expected = db.execute(sql).rows()
    before = metrics().counter("spill.aggregates").value
    db.execute("SET flock.memory_budget = 2000")
    assert db.execute(sql).rows() == expected
    assert metrics().counter("spill.aggregates").value > before
    db.close()


# ----------------------------------------------------------------------
# Bounded-memory top-k heap
# ----------------------------------------------------------------------
def test_order_by_limit_uses_heap():
    db = Database(encodings=True)
    _fill(db, rows=1000)
    sql = "SELECT k, cat, qty FROM enc ORDER BY cat, k DESC LIMIT 10"
    text = _explain_text(db, sql)
    assert "topk=heap" in text
    # The heap prefix equals the full-sort prefix, ties and all.
    heap_rows = db.execute(sql).rows()
    all_rows = db.execute(
        "SELECT k, cat, qty FROM enc ORDER BY cat, k DESC"
    ).rows()
    assert heap_rows == all_rows[:10]
    offset = db.execute(sql + " OFFSET 5").rows()
    assert offset == all_rows[5:15]
    db.close()


def test_topk_heap_matches_plain_engine():
    encoded, plain = Database(encodings=True), Database(encodings=False)
    for db in (encoded, plain):
        _fill(db, rows=600)
    for sql in (
        "SELECT cat, qty FROM enc ORDER BY cat LIMIT 7",
        "SELECT k FROM enc ORDER BY price DESC, k LIMIT 25",
        "SELECT cat, COUNT(*) FROM enc GROUP BY cat ORDER BY cat DESC LIMIT 3",
    ):
        assert encoded.execute(sql).rows() == plain.execute(sql).rows(), sql
    encoded.close()
    plain.close()


# ----------------------------------------------------------------------
# Knobs
# ----------------------------------------------------------------------
def test_set_knob_validation():
    db = Database()
    db.execute("SET flock.memory_budget = 65536")
    db.execute("SET flock.encodings = 0")
    db.execute("SET flock.encodings = 1")
    with pytest.raises(FlockError):
        db.execute("SET flock.memory_budget = 'lots'")
    with pytest.raises(FlockError):
        db.execute("SET flock.encodings = 'maybe'")
    db.close()


def test_connect_kwargs_reach_engine(tmp_path):
    with flock.connect(encodings=True, memory_budget=12345) as client:
        assert client.db.encodings_enabled()
        client.execute("CREATE TABLE t (k INT)")
    path = tmp_path / "kw"
    with flock.connect(str(path), encodings=False) as client:
        assert not client.db.encodings_enabled()
