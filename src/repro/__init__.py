"""Compatibility shim: the public import name of this project is ``flock``.

``import repro`` re-exports the :mod:`flock` package so the original
scaffold name keeps working.
"""

import flock
from flock import *  # noqa: F401,F403

__version__ = flock.__version__
