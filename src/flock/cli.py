"""An interactive SQL shell over a Flock deployment.

Run ``python -m flock`` for a REPL, optionally with ``--demo loans`` to
preload a dataset and a deployed model, ``--load <dir>`` to restore a
snapshot, or ``--data-dir <dir>`` to open a durable database (write-ahead
logged, crash-recovered on open). ``python -m flock stats`` runs queries
non-interactively and reports the observability counters and the last
statement's trace. ``python -m flock serve`` runs statements through the
concurrent serving layer (:mod:`flock.serving`) and reports its stats;
``python -m flock bench-serve`` benchmarks served vs sequential
throughput. ``python -m flock recover <dir>`` recovers a durable
directory and reports what the write-ahead log replayed. Inside the
shell, SQL statements execute directly; dot-commands manage the session:

    .help             this text
    .tables           list tables
    .views            list views
    .models           list deployed models
    .user NAME        switch the active user
    .audit [N]        show the last N audit records
    .stats [PREFIX]   show process metrics (optionally name-filtered)
    .trace            show the last statement's span tree
    .log [N]          show the last N query-log entries with timings
    .save DIR         snapshot the database to DIR
    .checkpoint       checkpoint a durable database (truncates its WAL)
    .quit             exit
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from flock.errors import FlockError


@dataclass
class ShellState:
    """Everything the REPL needs between commands."""

    database: object
    registry: object
    user: str = "admin"
    done: bool = False
    connections: dict[str, object] = field(default_factory=dict)

    def connection(self):
        if self.user not in self.connections:
            self.connections[self.user] = self.database.connect(self.user)
        return self.connections[self.user]


def format_result(result) -> str:
    """Render a QueryResult as an aligned text table."""
    if result.batch is None:
        if result.statement_type in ("INSERT", "UPDATE", "DELETE"):
            return f"{result.statement_type}: {result.affected_rows} row(s)"
        return f"{result.statement_type} ok"
    names = result.column_names
    rows = [
        tuple("NULL" if v is None else str(v) for v in row)
        for row in result.rows()
    ]
    widths = [
        max(len(n), *(len(r[i]) for r in rows)) if rows else len(n)
        for i, n in enumerate(names)
    ]
    header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
    separator = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows
    ]
    footer = f"({len(rows)} row{'s' if len(rows) != 1 else ''})"
    return "\n".join([header, separator, *body, footer])


def execute_line(state: ShellState, line: str) -> str:
    """One REPL interaction: a dot-command or a SQL statement."""
    line = line.strip()
    if not line:
        return ""
    if line.startswith("."):
        return _dot_command(state, line)
    try:
        result = state.connection().execute(line)
    except FlockError as exc:
        return f"error: {exc}"
    return format_result(result)


def _dot_command(state: ShellState, line: str) -> str:
    parts = line.split()
    command, args = parts[0], parts[1:]
    if command in (".quit", ".exit"):
        state.done = True
        return "bye"
    if command == ".help":
        return (__doc__ or "").strip()
    if command == ".tables":
        return "\n".join(state.database.catalog.table_names()) or "(none)"
    if command == ".views":
        return "\n".join(state.database.catalog.view_names()) or "(none)"
    if command == ".models":
        names = state.registry.model_names()
        if not names:
            return "(none)"
        lines = []
        for name in names:
            latest = state.registry.latest(name)
            lines.append(
                f"{name} v{latest.version} "
                f"({latest.graph.node_count()} operators)"
            )
        return "\n".join(lines)
    if command == ".user":
        if not args:
            return f"current user: {state.user}"
        try:
            state.database.connect(args[0])
        except FlockError as exc:
            return f"error: {exc}"
        state.user = args[0]
        return f"now acting as {state.user}"
    if command == ".audit":
        limit = int(args[0]) if args else 10
        records = list(state.database.audit.log)[-limit:]
        return "\n".join(
            f"#{r.sequence} {r.user} {r.action} {r.object_name}"
            for r in records
        ) or "(empty)"
    if command == ".stats":
        from flock import observability

        prefix = args[0] if args else ""
        return observability.render_metrics(
            observability.metrics().snapshot(prefix)
        )
    if command == ".trace":
        from flock import observability

        return observability.render_span_tree(state.database.last_trace)
    if command == ".log":
        limit = int(args[0]) if args else 10
        entries = state.database.query_log[-limit:]
        return "\n".join(
            f"{e.statement_type:<12} {e.duration_ms:8.3f}ms "
            f"{'ok' if e.success else 'ERR'}  {e.sql[:60]}"
            for e in entries
        ) or "(empty)"
    if command == ".save":
        if not args:
            return "usage: .save DIR"
        from flock.db.persist import save_database

        save_database(state.database, args[0])
        return f"saved to {args[0]}"
    if command == ".checkpoint":
        if state.database.wal is None:
            return "error: not a durable database (start with --data-dir)"
        try:
            state.database.checkpoint()
        except FlockError as exc:
            return f"error: {exc}"
        return f"checkpointed {state.database.wal.directory}"
    return f"unknown command {command} (try .help)"


def _load_demo(state: ShellState, name: str) -> str:
    from flock.ml import LogisticRegression, Pipeline, StandardScaler
    from flock.ml.datasets import (
        load_dataset_into,
        make_bigdata_jobs,
        make_loans,
        make_patients,
    )
    from flock.mlgraph import to_graph

    makers = {
        "loans": (make_loans, "approved"),
        "patients": (make_patients, "readmitted"),
        "jobs": (make_bigdata_jobs, None),
    }
    if name not in makers:
        raise FlockError(
            f"unknown demo {name!r}; choose from {sorted(makers)}"
        )
    maker, target = makers[name]
    dataset = maker(400)
    load_dataset_into(state.database, dataset)
    message = f"loaded table {dataset.name!r} ({dataset.n_rows} rows)"
    if target is not None:
        pipeline = Pipeline(
            [("s", StandardScaler()),
             ("m", LogisticRegression(max_iter=200))]
        ).fit(dataset.feature_matrix(), dataset.target_vector())
        model_name = f"{dataset.name}_model"
        state.registry.deploy(
            model_name,
            to_graph(pipeline, dataset.feature_names, name=model_name),
        )
        message += f"; deployed model {model_name!r} — try: " \
                   f"SELECT PREDICT({model_name}) FROM {dataset.name} LIMIT 5"
    return message


def make_state(
    load: str | None = None,
    demo: str | None = None,
    data_dir: str | None = None,
) -> ShellState:
    """Build a shell state (used by main() and by tests).

    Routed through :func:`flock.connect`, the unified entry point: a bare
    state is an embedded in-memory client, ``data_dir`` an embedded
    durable one. ``load`` restores a plain snapshot directory (no WAL),
    which stays on the persist loader.
    """
    import flock

    if data_dir:
        client = flock.connect(data_dir)
        database, registry = client.db, client.registry
    elif load:
        from flock.db.persist import load_database
        from flock.inference.predict import DefaultScorer
        from flock.registry import ModelRegistry

        registry = ModelRegistry()
        database = load_database(load, model_store=registry,
                                 scorer=DefaultScorer())
        registry.bind_database(database)
        registry.load_from_database(database)
    else:
        client = flock.connect()
        database, registry = client.db, client.registry
    state = ShellState(database=database, registry=registry)
    if demo:
        print(_load_demo(state, demo))
    return state


def stats_main(argv: list[str]) -> int:
    """``flock stats``: run queries non-interactively, report observability.

    Executes each ``--query`` against a fresh (or restored/demo) database,
    then prints the process metrics snapshot and the last statement's span
    tree — the CI-friendly way to eyeball where SQL×ML time goes.
    """
    from flock import observability

    parser = argparse.ArgumentParser(
        prog="flock stats",
        description="Run queries and report flock observability metrics",
    )
    parser.add_argument("--load", help="restore a database snapshot directory")
    parser.add_argument(
        "--demo", help="preload a demo dataset+model (loans/patients/jobs)"
    )
    parser.add_argument(
        "--query", action="append", default=[],
        help="SQL to execute before reporting (repeatable)",
    )
    parser.add_argument(
        "--prefix", default="",
        help="only report metrics whose name starts with PREFIX",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text tables",
    )
    args = parser.parse_args(argv)

    try:
        state = make_state(load=args.load, demo=args.demo)
        connection = state.connection()
        for sql in args.query:
            connection.execute(sql)
    except FlockError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    snapshot = observability.metrics().snapshot(args.prefix)
    trace = state.database.last_trace
    if args.json:
        import json

        print(json.dumps(
            {
                "metrics": snapshot,
                "last_trace": trace.to_dict() if trace is not None else None,
            },
            indent=2,
            default=str,
        ))
    else:
        print(observability.render_metrics(snapshot))
        if trace is not None:
            print("\nlast statement trace:")
            print(observability.render_span_tree(trace))
    return 0


def serve_main(argv: list[str]) -> int:
    """``flock serve``: a serving shell over a FlockServer.

    SQL statements read from stdin (one per line) execute through the
    concurrent serving layer — plan cache, micro-batching, admission
    control — instead of directly against the engine. ``--query`` runs
    statements non-interactively; exit reports the serving stats. With
    ``--replicas N`` (requires ``--data-dir``) the statements route
    through a :class:`~flock.cluster.FlockCluster`: reads fan out across
    N follower replicas, writes go to the primary. With ``--shards N``
    (also requires ``--data-dir``) they route through a
    :class:`~flock.shard.ShardedCluster` instead: keyed tables
    hash-partitioned across N engines, point statements pinned to one
    shard, everything else scatter-gathered. The two compose —
    ``--shards 4 --replicas 2`` gives every shard its own read tier.
    """
    import flock

    parser = argparse.ArgumentParser(
        prog="flock serve",
        description="Serve SQL/PREDICT statements through flock.serving",
    )
    parser.add_argument("--load", help="restore a database snapshot directory")
    parser.add_argument(
        "--data-dir",
        help="open a durable (WAL + checkpoint) database directory",
    )
    parser.add_argument(
        "--demo", help="preload a demo dataset+model (loans/patients/jobs)"
    )
    parser.add_argument(
        "--query", action="append", default=[],
        help="SQL to execute through the server (repeatable); skips the shell",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--batch-wait-ms", type=float, default=1.0)
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument("--user", default="admin")
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="serve reads from N follower replicas over WAL shipping "
        "(requires --data-dir)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="hash-partition keyed tables across N shard engines "
        "(requires --data-dir; composes with --replicas)",
    )
    parser.add_argument(
        "--max-staleness", type=int, default=None,
        help="max replicated records a follower may lag before the router "
        "skips it (default: unbounded)",
    )
    parser.add_argument(
        "--process", dest="process", action="store_true", default=None,
        help="host each shard engine / follower replica in its own worker "
        "process (flock.proc); default follows FLOCK_PROC",
    )
    parser.add_argument(
        "--no-process", dest="process", action="store_false",
        help="force the in-process thread backend",
    )
    args = parser.parse_args(argv)

    if (args.replicas or args.shards) and not args.data_dir:
        print(
            "error: --replicas/--shards need --data-dir (WAL shipping and "
            "shard partitions both start from durable directories)",
            file=sys.stderr,
        )
        return 1

    clustered = bool(args.replicas or args.shards)
    try:
        if args.shards:
            client = flock.connect(
                args.data_dir,
                shards=args.shards,
                replicas=args.replicas,
                max_staleness=args.max_staleness,
                process=args.process,
                user=args.user,
            )
            if args.demo:
                # Load through the *router*, not the coordinator engine:
                # the scatter path is what actually lands rows on shards.
                state = ShellState(
                    database=client.cluster, registry=client.registry
                )
                print(_load_demo(state, args.demo))
                if args.replicas:
                    client.cluster.wait_for_catchup()
        elif args.replicas:
            client = flock.connect(
                args.data_dir,
                replicas=args.replicas,
                max_staleness=args.max_staleness,
                workers=args.workers,
                max_batch_size=args.max_batch_size,
                batch_wait_ms=args.batch_wait_ms,
                max_pending=args.max_pending,
                process=args.process,
                user=args.user,
            )
            if args.demo:
                # Load through the primary; followers catch up over the
                # replication stream before the first routed read.
                state = ShellState(
                    database=client.db, registry=client.registry
                )
                print(_load_demo(state, args.demo))
                client.cluster.wait_for_catchup()
        else:
            state = make_state(
                load=args.load, demo=args.demo, data_dir=args.data_dir
            )
    except FlockError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if not clustered:
        from flock.serving import FlockServer

        server = FlockServer(
            state.database,
            workers=args.workers,
            max_batch_size=args.max_batch_size,
            batch_wait_ms=args.batch_wait_ms,
            max_pending=args.max_pending,
        )
        execute = server.connect(args.user).execute
    else:
        execute = client.execute

    status = 0
    try:
        if args.query:
            for sql in args.query:
                try:
                    print(format_result(execute(sql)))
                except FlockError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    status = 1
        else:
            if args.shards:
                mode = f"{args.shards} shard(s)"
                if args.replicas:
                    mode += f" x {args.replicas} replica(s)"
            elif args.replicas:
                mode = f"{args.replicas} replica(s)"
            else:
                mode = f"{args.workers} workers"
            print(
                f"flock serving shell — {mode}, SQL per line, ^D to exit"
            )
            while True:
                try:
                    line = input(f"{args.user}(serve)> ")
                except (EOFError, KeyboardInterrupt):
                    print()
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    print(format_result(execute(line)))
                except FlockError as exc:
                    print(f"error: {exc}")
    finally:
        if clustered:
            stats = client.stats()
            client.close()
        else:
            server.shutdown()
            stats = server.stats()

    if args.shards:
        routes = stats["routes"]
        rows = sum(
            sum(shard["rows"].values()) for shard in stats["per_shard"]
        )
        print(
            f"routed {routes['single']} single-shard + "
            f"{routes['scatter']} scattered + {routes['broadcast']} "
            f"broadcast + {routes['ddl']} DDL statement(s) across "
            f"{stats['shards']} shard(s); {rows} shard row(s)"
        )
    elif args.replicas:
        primary = stats["primary"]
        print(
            f"served {primary['served']} primary + "
            f"{stats['follower_served']} follower statement(s) across "
            f"{len(stats['followers'])} replica(s); replication lsn "
            f"{stats['replication_lsn']}, max lag "
            f"{max((f['lag'] for f in stats['followers']), default=0)}"
        )
    else:
        print(
            f"served {stats['served']} statement(s); plan cache hit rate "
            f"{stats['plan_cache_hit_rate'] * 100:.1f}%; "
            f"{stats['batched_requests']} coalesced into "
            f"{stats['batches']} batch(es)"
        )
    return status


def bench_serve_main(argv: list[str]) -> int:
    """``flock bench-serve``: serving-layer throughput benchmarks.

    Default mode compares sequential vs served point-query throughput on a
    single node. ``--replicas 1,2,4`` switches to the replica-scaling
    benchmark: analytic read QPS through the cluster router at each
    follower count (see :mod:`flock.cluster.bench`).
    """
    parser = argparse.ArgumentParser(
        prog="flock bench-serve",
        description="Benchmark flock.serving against sequential execution",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--batch-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--replicas", default=None,
        help="comma-separated follower counts (e.g. 1,2,4): benchmark "
        "read scaling through the replicated tier instead",
    )
    parser.add_argument(
        "--process", dest="process", action="store_true", default=None,
        help="with --replicas: host each follower in its own worker "
        "process (flock.proc); default uses processes where available",
    )
    parser.add_argument(
        "--no-process", dest="process", action="store_false",
        help="with --replicas: force the in-process thread backend",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the benchmark report as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    if args.replicas:
        from flock.cluster.bench import (
            render_replica_benchmark,
            run_replica_scaling_benchmark,
        )

        try:
            counts = [int(c) for c in args.replicas.split(",") if c.strip()]
        except ValueError:
            print(f"error: bad --replicas list: {args.replicas!r}",
                  file=sys.stderr)
            return 1
        if not counts or any(c < 1 for c in counts):
            print("error: --replicas counts must be >= 1", file=sys.stderr)
            return 1
        report = run_replica_scaling_benchmark(
            replica_counts=counts,
            requests=args.requests or 240,
            concurrency=args.concurrency or 8,
            n_rows=args.rows or 40_000,
            process=args.process,
        )
        render = render_replica_benchmark
    else:
        from flock.serving.bench import (
            render_benchmark,
            run_serving_benchmark,
        )

        report = run_serving_benchmark(
            requests=args.requests or 800,
            concurrency=args.concurrency or 16,
            n_rows=args.rows or 5_000,
            workers=args.workers,
            max_batch_size=args.max_batch_size,
            batch_wait_ms=args.batch_wait_ms,
        )
        render = render_benchmark

    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        for line in render(report):
            print(line)
    return 0


def recover_main(argv: list[str]) -> int:
    """``flock recover``: open a durable directory and report the recovery.

    Recovery itself happens inside :func:`flock.open_session` — this
    command exists to run it explicitly (e.g. after a crash, before
    restarting serving) and to inspect what the write-ahead log held:
    commits replayed, audit records restored, and whether a torn or
    corrupt tail was discarded.
    """
    from flock import open_session

    parser = argparse.ArgumentParser(
        prog="flock recover",
        description="Recover a durable flock database directory",
    )
    parser.add_argument("dir", help="the database directory (WAL + checkpoint)")
    parser.add_argument(
        "--checkpoint", action="store_true",
        help="write a fresh checkpoint after recovery (truncates the WAL)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the recovery report as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    try:
        session = open_session(args.dir)
    except FlockError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    database = session.db
    report = database.wal.last_recovery
    if args.checkpoint:
        database.checkpoint()
    if args.json:
        import json

        payload = report.as_dict()
        payload["tables"] = {
            name: database.catalog.table(name).row_count
            for name in database.catalog.table_names()
        }
        payload["checkpointed"] = args.checkpoint
        print(json.dumps(payload, indent=2))
    else:
        print(f"recovered {args.dir}")
        print(
            f"  checkpoint: "
            f"{'loaded' if report.checkpoint_loaded else 'none'} "
            f"(generation {report.generation})"
        )
        print(
            f"  wal: {report.records_scanned} record(s) scanned, "
            f"{report.commits_replayed} commit(s) and "
            f"{report.ddl_replayed} DDL replayed in "
            f"{report.replay_ms:.1f} ms"
        )
        print(
            f"  tail: {report.tail_status}"
            + (
                f" ({report.discarded_bytes} byte(s) discarded)"
                if report.discarded_bytes
                else ""
            )
        )
        print(f"  audit: {report.audit_records_restored} record(s) restored")
        for name in database.catalog.table_names():
            rows = database.catalog.table(name).row_count
            print(f"  table {name}: {rows} row(s)")
        if args.checkpoint:
            print("  checkpointed; WAL truncated")
    database.close()
    return 0


def bench_tpch_main(argv: list[str]) -> int:
    """``flock bench-tpch``: the 22 TPC-H queries on a generated instance.

    ``--scale`` sizes the instance (streamed, seeded generation), and
    ``--faithful`` switches from the pre-decorrelation rewrites to the
    spec-shaped templates (correlated subqueries, EXISTS, CTEs, scalar
    subqueries). ``--check`` runs *both* forms and fails on any row-level
    divergence — the decorrelation oracle from the command line.
    """
    import json
    import time

    import numpy as np

    import flock
    from flock.workloads import (
        TPCH_FAITHFUL,
        TPCH_REWRITTEN,
        create_tpch_schema,
        generate_tpch_data,
        tpch_params,
    )

    parser = argparse.ArgumentParser(
        prog="flock bench-tpch",
        description="Run the TPC-H query set against a generated instance",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002,
        help="TPC-H scale factor (default 0.002, ~12k lineitems)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--queries", default=None,
        help="comma-separated template ids (default: all 22)",
    )
    parser.add_argument(
        "--faithful", action="store_true",
        help="run the spec-shaped templates instead of the rewrites",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run both template forms and fail on any row divergence",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the benchmark report as machine-readable JSON",
    )
    args = parser.parse_args(argv)

    try:
        query_ids = (
            sorted(int(q) for q in args.queries.split(",") if q.strip())
            if args.queries
            else list(range(1, 23))
        )
    except ValueError:
        print(f"error: bad --queries list: {args.queries!r}", file=sys.stderr)
        return 2

    client = flock.connect()
    try:
        create_tpch_schema(client)
        t0 = time.perf_counter()
        counts = generate_tpch_data(client, scale=args.scale, seed=args.seed)
        load_ms = (time.perf_counter() - t0) * 1000.0
        templates = TPCH_FAITHFUL if args.faithful else TPCH_REWRITTEN
        others = TPCH_REWRITTEN if args.faithful else TPCH_FAITHFUL
        report: list[dict] = []
        status = 0
        for qid in query_ids:
            params = tpch_params(np.random.default_rng(args.seed + qid))
            if qid in (11, 22):
                # The rewritten forms take these data-dependent scalars as
                # literal parameters; deriving them from the instance keeps
                # the two template forms on the same predicate.
                threshold = client.execute(
                    "SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.0001"
                    " FROM partsupp ps2"
                    " JOIN supplier s2 ON ps2.ps_suppkey = s2.s_suppkey"
                    " JOIN nation n2 ON s2.s_nationkey = n2.n_nationkey"
                    f" WHERE n2.n_name = '{params['nation1']}'"
                ).scalar()
                params["threshold"] = (
                    repr(threshold) if threshold is not None else "0.0"
                )
                codes = ", ".join(
                    f"'{params[f'cc{i}']}'" for i in range(1, 8)
                )
                balance = client.execute(
                    "SELECT AVG(c2.c_acctbal) FROM customer c2"
                    " WHERE c2.c_acctbal > 0.00"
                    f" AND SUBSTR(c2.c_phone, 1, 2) IN ({codes})"
                ).scalar()
                params["balance"] = (
                    repr(balance) if balance is not None else "0.0"
                )
            sql = templates[qid].format(**params).strip()
            t0 = time.perf_counter()
            try:
                rows = client.execute(sql).rows()
            except FlockError as exc:
                report.append({"query": qid, "error": str(exc)})
                status = 1
                continue
            entry = {
                "query": qid,
                "rows": len(rows),
                "ms": round((time.perf_counter() - t0) * 1000.0, 2),
            }
            if args.check:
                other = others[qid].format(**params).strip()
                entry["check"] = (
                    "ok"
                    if repr(client.execute(other).rows()) == repr(rows)
                    else "DIVERGED"
                )
                if entry["check"] != "ok":
                    status = 1
            report.append(entry)
    finally:
        client.close()

    if args.json:
        print(json.dumps(
            {
                "scale": args.scale,
                "seed": args.seed,
                "faithful": args.faithful,
                "load_ms": round(load_ms, 1),
                "tables": counts,
                "queries": report,
            },
            indent=2,
        ))
        return status

    form = "faithful" if args.faithful else "rewritten"
    print(
        f"TPC-H scale {args.scale} ({counts['lineitem']} lineitems, "
        f"loaded in {load_ms:.0f} ms), {form} templates"
    )
    for entry in report:
        if "error" in entry:
            print(f"  Q{entry['query']:>2}: ERROR {entry['error']}")
            continue
        check = f"  check={entry['check']}" if "check" in entry else ""
        print(
            f"  Q{entry['query']:>2}: {entry['rows']:>5} row(s) "
            f"in {entry['ms']:>8.2f} ms{check}"
        )
    return status


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "bench-serve":
        return bench_serve_main(argv[1:])
    if argv and argv[0] == "bench-tpch":
        return bench_tpch_main(argv[1:])
    if argv and argv[0] == "recover":
        return recover_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="flock", description="Flock interactive SQL shell"
    )
    parser.add_argument("--load", help="restore a database snapshot directory")
    parser.add_argument(
        "--data-dir",
        help="open a durable (WAL + checkpoint) database directory",
    )
    parser.add_argument(
        "--demo", help="preload a demo dataset+model (loans/patients/jobs)"
    )
    args = parser.parse_args(argv)

    try:
        state = make_state(
            load=args.load, demo=args.demo, data_dir=args.data_dir
        )
    except FlockError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print("flock shell — .help for commands, .quit to exit")
    while not state.done:
        try:
            line = input(f"{state.user}> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = execute_line(state, line)
        if output:
            print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
