"""Deterministic fault-point injection.

Production code sprinkles ``faultpoints.reach("wal.pre_fsync")`` calls at the
moments where a crash is interesting; they are no-ops unless a test arms the
point. Armed points either raise :class:`~flock.errors.FaultInjected`
(``action="error"``) or kill the process without any Python-level cleanup
(``action="crash"``, via ``os._exit``) — the latter is the honest simulation
of a power loss or SIGKILL: whatever already reached the OS survives,
everything buffered in the process dies with it.

Points can be armed programmatically (:func:`set_fault`) or from the
environment, which is how the crash-recovery stress test controls its child
process::

    FLOCK_FAULTPOINTS="wal.pre_fsync=crash:3,checkpoint.mid_write=error"

arms ``wal.pre_fsync`` to crash on its 3rd hit and ``checkpoint.mid_write``
to raise on its 1st.

A third action, ``sleep``, delays instead of failing — the tool concurrency
stress tests use it to stretch race windows (e.g. holding a parallel query
inside its morsel fan-out while writers commit). The optional third field of
the env form is the delay in milliseconds:
``parallel.pre_morsel=sleep:1:5`` sleeps 5 ms from the 1st hit onward.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from flock.errors import FaultInjected

#: Exit status used by ``action="crash"`` — 128+9, the shell's encoding of
#: SIGKILL, so parents cannot tell an injected crash from a real kill -9.
CRASH_EXIT_CODE = 137

#: Every point the engine currently calls :func:`reach` on, for discoverability
#: and for tests that want to iterate "crash at each point in turn".
KNOWN_POINTS = (
    "wal.pre_fsync",
    "wal.mid_record",
    "wal.post_fsync_pre_apply",
    "wal.pre_ack",
    "checkpoint.mid_write",
    "checkpoint.pre_swap",
    "checkpoint.post_swap",
    "parallel.pre_morsel",
    "parallel.post_morsel",
    "index.pre_rebuild",
    "index.post_rebuild",
    "index.pre_advance",
)

_ENV_VAR = "FLOCK_FAULTPOINTS"


@dataclass
class _Fault:
    action: str  # "error" | "crash" | "sleep"
    after: int  # fire on the Nth hit (1 = first)
    hits: int = 0
    delay_ms: float = 1.0  # "sleep" only


_lock = threading.Lock()
_faults: dict[str, _Fault] = {}
_env_loaded = False


def _parse_env(spec: str) -> dict[str, _Fault]:
    faults: dict[str, _Fault] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, rhs = part.partition("=")
        action, _, rest = rhs.partition(":")
        after, _, delay = rest.partition(":")
        action = action or "error"
        if action not in ("error", "crash", "sleep"):
            raise ValueError(f"unknown fault action {action!r} in {part!r}")
        faults[name.strip()] = _Fault(
            action=action,
            after=int(after or 1),
            delay_ms=float(delay or 1.0),
        )
    return faults


def _ensure_env_loaded() -> None:
    global _env_loaded
    if _env_loaded:
        return
    _env_loaded = True
    spec = os.environ.get(_ENV_VAR, "")
    if spec:
        _faults.update(_parse_env(spec))


def set_fault(
    name: str,
    action: str = "error",
    after: int = 1,
    delay_ms: float = 1.0,
) -> None:
    """Arm *name* to fire (raise, crash or sleep) from its *after*-th hit."""
    if action not in ("error", "crash", "sleep"):
        raise ValueError(f"unknown fault action {action!r}")
    if after < 1:
        raise ValueError("after must be >= 1")
    with _lock:
        _ensure_env_loaded()
        _faults[name] = _Fault(action=action, after=after, delay_ms=delay_ms)


def clear(name: str | None = None) -> None:
    """Disarm one point, or every point (and forget the env spec) if None."""
    global _env_loaded
    with _lock:
        if name is None:
            _faults.clear()
            _env_loaded = True  # don't silently re-arm from the environment
        else:
            _faults.pop(name, None)


def armed(name: str) -> bool:
    """True iff *name* is armed and its next hit will fire."""
    with _lock:
        _ensure_env_loaded()
        fault = _faults.get(name)
        return fault is not None and fault.hits + 1 >= fault.after


def hit_count(name: str) -> int:
    with _lock:
        fault = _faults.get(name)
        return fault.hits if fault else 0


def reach(name: str) -> None:
    """Mark that execution reached *name*; fire if a test armed it.

    A no-op (one dict lookup) when the point is not armed, so production
    paths call this unconditionally.
    """
    with _lock:
        _ensure_env_loaded()
        fault = _faults.get(name)
        if fault is None:
            return
        fault.hits += 1
        if fault.hits < fault.after:
            return
        action = fault.action
        delay_ms = fault.delay_ms
    if action == "crash":
        # os._exit skips atexit handlers, finally blocks and buffered-file
        # flushes — the process dies as abruptly as under SIGKILL, which is
        # exactly what crash-recovery tests must simulate.
        os._exit(CRASH_EXIT_CODE)
    if action == "sleep":
        # Outside the lock: a delay must widen *caller* race windows, not
        # serialize every other faultpoint check behind it.
        import time

        time.sleep(delay_ms / 1000.0)
        return
    raise FaultInjected(name)
