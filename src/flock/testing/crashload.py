"""Randomized durable workload driver for crash-recovery stress tests.

Run as a child process (``python -m flock.testing.crashload``) against a
database directory while :mod:`flock.testing.faultpoints` — armed through
the ``FLOCK_FAULTPOINTS`` environment variable — kills it at a random WAL
or checkpoint fault point. Before attempting each operation the child
appends a ``try <op> <id>`` line to an *acknowledgement file* (fsynced), and
after the commit is acknowledged an ``ok <op> <id>`` line, so the parent
can state the durability contract precisely:

- every ``ok`` operation must be recovered (acknowledged ⇒ durable);
- every recovered operation must have a ``try`` line (nothing invented);
- operations with ``try`` but no ``ok`` may land either way (the crash hit
  between execution and acknowledgement — "presumed commit" is allowed).

The workload mixes paired-table transactions (atomicity witnesses), single
inserts/deletes, DDL, model deployments and explicit checkpoints.
"""

from __future__ import annotations

import argparse
import os
import random
import sys


class AckFile:
    """Append-only, fsync-per-line journal the crash cannot rewind."""

    def __init__(self, path: str):
        self._fh = open(path, "a", encoding="utf-8")

    def line(self, text: str) -> None:
        self._fh.write(text + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())


def _tiny_graph():
    from flock.ml import LinearRegression
    from flock.ml.datasets import make_regression
    from flock.mlgraph import to_graph

    X, y, _ = make_regression(30, 2, random_state=7)
    return to_graph(LinearRegression().fit(X, y), ["f0", "f1"])


def run(directory: str, seed: int, ops: int, ack_path: str,
        sync_mode: str = "commit", replicas: int = 0,
        shards: int = 0, process: bool | None = None) -> None:
    import flock

    rng = random.Random(seed)
    ack = AckFile(ack_path)
    graph = _tiny_graph()  # built before any WAL traffic

    if shards:
        # Sharded mode: every statement routes through the ShardedCluster
        # — scatter inserts, DDL broadcasts, model-deploy broadcasts —
        # while the fault points arm whichever shard's WAL or checkpoint
        # the routed statement lands on. Acknowledged still means durable,
        # now across N write-ahead logs; the reopen-time reconciliation
        # must absorb broadcasts the crash cut short mid-fleet.
        client = flock.connect(
            directory, shards=shards, replicas=replicas,
            sync_mode=sync_mode, group_window_ms=0.2, process=process,
        )
        run_sharded(client, rng, ops, ack, graph)
        client.close()
        return
    if replicas:
        # Cluster mode (failover tests): writes commit on the primary and
        # ship over the replication stream; routed reads exercise the
        # followers while the fault points arm the primary's WAL. The
        # ack-file contract is unchanged — acknowledged means the
        # *primary* committed durably, which is exactly what promotion
        # must preserve.
        client = flock.connect(
            directory, replicas=replicas, sync_mode=sync_mode,
            group_window_ms=0.2, process=process,
        )
        session = client.session
        db = client.db
    else:
        client = None
        session = flock.open_session(
            directory, sync_mode=sync_mode, group_window_ms=0.2
        )
        db = session.db
    db.execute("CREATE TABLE IF NOT EXISTS pair_a (m INT PRIMARY KEY)")
    db.execute("CREATE TABLE IF NOT EXISTS pair_b (m INT PRIMARY KEY)")
    db.execute(
        "CREATE TABLE IF NOT EXISTS singles "
        "(m INT PRIMARY KEY, payload TEXT)"
    )

    marker = 0
    ok_singles: list[int] = []
    tables = 0
    deploys = 0

    for _ in range(ops):
        roll = rng.random()
        if roll < 0.30:
            marker += 1
            ack.line(f"try pair {marker}")
            conn = db.connect()
            conn.execute("BEGIN")
            conn.execute(f"INSERT INTO pair_a VALUES ({marker})")
            conn.execute(f"INSERT INTO pair_b VALUES ({marker})")
            conn.execute("COMMIT")
            ack.line(f"ok pair {marker}")
        elif roll < 0.62:
            marker += 1
            ack.line(f"try single {marker}")
            db.execute(
                "INSERT INTO singles VALUES (?, ?)",
                [marker, f"payload-{marker}"],
            )
            ack.line(f"ok single {marker}")
            ok_singles.append(marker)
        elif roll < 0.76 and ok_singles:
            victim = ok_singles.pop(rng.randrange(len(ok_singles)))
            ack.line(f"try delete {victim}")
            db.execute(f"DELETE FROM singles WHERE m = {victim}")
            ack.line(f"ok delete {victim}")
        elif roll < 0.86:
            tables += 1
            ack.line(f"try table {tables}")
            db.execute(f"CREATE TABLE extra_{tables} (k INT)")
            db.execute(f"INSERT INTO extra_{tables} VALUES ({tables})")
            ack.line(f"ok table {tables}")
        elif roll < 0.93:
            deploys += 1
            ack.line(f"try deploy {deploys}")
            session.registry.deploy(f"stress_m{deploys}", graph)
            ack.line(f"ok deploy {deploys}")
        else:
            ack.line("try checkpoint 0")
            db.checkpoint()
            ack.line("ok checkpoint 0")
        if client is not None and ok_singles and rng.random() < 0.4:
            # Routed follower read between writes — keeps the replication
            # apply loops hot so the crash lands mid-stream, not idle.
            client.execute("SELECT COUNT(*) FROM singles")

    if client is not None:
        client.close()
        return
    db.close()


def run_sharded(client, rng: random.Random, ops: int, ack: AckFile,
                graph) -> None:
    """The sharded workload: same ack contract, router-shaped operations.

    The router rejects BEGIN/COMMIT, so the "pair" witness becomes two
    routed single-row inserts (each atomic on its shard): an ``ok pair``
    still means both rows committed durably, while a crash between the
    two leaves ``try`` without ``ok`` — a pair the parent must allow to
    be partial, the honest contract for a tier without cross-shard
    transactions. Single-row inserts route to exactly one shard, so
    their acknowledgements stay all-or-nothing.
    """
    cluster = client.cluster
    client.execute(
        "CREATE TABLE IF NOT EXISTS pair_a (m INT PRIMARY KEY)"
    )
    client.execute(
        "CREATE TABLE IF NOT EXISTS pair_b (m INT PRIMARY KEY)"
    )
    client.execute(
        "CREATE TABLE IF NOT EXISTS singles "
        "(m INT PRIMARY KEY, payload TEXT)"
    )

    marker = 0
    ok_singles: list[int] = []
    tables = 0
    deploys = 0

    for _ in range(ops):
        roll = rng.random()
        if roll < 0.30:
            marker += 1
            ack.line(f"try pair {marker}")
            client.execute(f"INSERT INTO pair_a VALUES ({marker})")
            client.execute(f"INSERT INTO pair_b VALUES ({marker})")
            ack.line(f"ok pair {marker}")
        elif roll < 0.62:
            marker += 1
            ack.line(f"try single {marker}")
            client.execute(
                "INSERT INTO singles VALUES (?, ?)",
                [marker, f"payload-{marker}"],
            )
            ack.line(f"ok single {marker}")
            ok_singles.append(marker)
        elif roll < 0.76 and ok_singles:
            victim = ok_singles.pop(rng.randrange(len(ok_singles)))
            ack.line(f"try delete {victim}")
            client.execute(f"DELETE FROM singles WHERE m = {victim}")
            ack.line(f"ok delete {victim}")
        elif roll < 0.86:
            tables += 1
            ack.line(f"try table {tables}")
            client.execute(
                f"CREATE TABLE extra_{tables} (k INT PRIMARY KEY)"
            )
            client.execute(f"INSERT INTO extra_{tables} VALUES ({tables})")
            ack.line(f"ok table {tables}")
        elif roll < 0.93:
            deploys += 1
            ack.line(f"try deploy {deploys}")
            client.registry.deploy(f"stress_m{deploys}", graph)
            ack.line(f"ok deploy {deploys}")
        else:
            # Checkpoint every shard primary in order — the checkpoint
            # fault points then fire on whichever shard accumulates hits.
            ack.line("try checkpoint 0")
            for shard in cluster.shards:
                shard.database.checkpoint()
            ack.line("ok checkpoint 0")
        if rng.random() < 0.4:
            # Scattered read between writes keeps the gather/merge path
            # hot, so crashes land mid-traffic rather than idle.
            client.execute("SELECT COUNT(*) FROM singles")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="crash-recovery stress workload (child process)"
    )
    parser.add_argument("--dir", required=True)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--ops", type=int, default=60)
    parser.add_argument("--ack-file", required=True)
    parser.add_argument("--sync-mode", default="commit")
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="drive the workload through a FlockCluster with N followers",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="drive the workload through a ShardedCluster with N shards "
        "(composes with --replicas)",
    )
    parser.add_argument(
        "--process", dest="process", action="store_true", default=None,
        help="process-backed shards/replicas (flock.proc); default "
        "follows FLOCK_PROC",
    )
    parser.add_argument(
        "--no-process", dest="process", action="store_false",
        help="force the in-process thread backend",
    )
    args = parser.parse_args(argv)
    try:
        run(args.dir, args.seed, args.ops, args.ack_file, args.sync_mode,
            replicas=args.replicas, shards=args.shards,
            process=args.process)
    except Exception as exc:
        from flock.errors import WorkerCrashError
        from flock.testing.faultpoints import CRASH_EXIT_CODE

        if isinstance(exc, WorkerCrashError) or isinstance(
            getattr(exc, "__cause__", None), WorkerCrashError
        ):
            # A faultpoint (or the parent test) killed one of *our* shard
            # or replica workers mid-operation. To the durability
            # contract that is this driver crashing: the dead worker's
            # WAL holds every acknowledged commit, the in-flight op has
            # its `try` line and no `ok`. Exit with the crash code the
            # parent already treats as "killed at a fault point".
            os._exit(CRASH_EXIT_CODE)
        raise
    return 0


if __name__ == "__main__":
    sys.exit(main())
