"""Test-support machinery that ships with the engine.

The durability work is *proven* rather than assumed: the WAL and checkpoint
paths call :func:`flock.testing.faultpoints.reach` at named points, and the
crash-recovery suite arms those points to kill or fail the process exactly
there. The framework is generic — any future subsystem can register points.
"""

from flock.testing import faultpoints

__all__ = ["faultpoints"]
