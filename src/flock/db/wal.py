"""Write-ahead logging, checkpointing and crash recovery.

The paper folds ML state into the DBMS precisely to inherit its enterprise
guarantees — "security, fault-tolerance, auditing". This module supplies the
fault-tolerance half: every commit (DML, DDL, model deployment) is logged
before it is acknowledged, so a database directory survives process death
and recovers to exactly the committed prefix.

Log format
----------
``wal.log`` starts with a fixed header::

    magic "FLKWAL1\\x00" | u32 format version | u64 generation

followed by CRC32-framed records::

    u32 payload length | u32 crc32(payload) | payload (compact JSON, UTF-8)

Two record types: ``commit`` (ordered logical per-table deltas of one
transaction, captured at ``Table.build_*`` time) and ``ddl`` (catalog and
security mutations). Both piggyback the audit records and query-log entries
accumulated since the previous record, so the hash-chained audit trail is
exactly-once durable without a second log.

Durability modes
----------------
``sync_mode="commit"`` (default) appends *and* fsyncs before the commit
publishes — classic WAL. ``"group"`` appends under the commit lock but
batches fsyncs across concurrent committers (a short leader-elected window);
the publish happens before the fsync, which is safe because acknowledgement
still waits for it and fsync durability is prefix-closed. ``"off"`` trades
durability of the tail for speed (the log is still written, never synced).

Any append/fsync failure *poisons* the log: the failed transaction rolls
back and every later commit raises :class:`DurabilityError` until the
database is reopened — an unloggable commit is never acknowledged.

Checkpoints
-----------
A checkpoint freezes the engine (statement write lock + commit lock),
snapshots it with :func:`flock.db.persist.save_database` into
``checkpoint.new`` (fsynced), atomically swaps it in, then resets the log
under a new generation stamped into the snapshot manifest. A log whose
generation does not match the checkpoint's is entirely contained in the
checkpoint and is discarded at recovery.

Recovery
--------
:func:`open_database` repairs interrupted checkpoint swaps, loads the
newest checkpoint, replays the committed WAL suffix record by record
(re-entering the same constraint checks the original execution ran), stops
at the first torn or corrupt frame — truncating the tail and *reporting* it
rather than raising — and attaches a live log for new writes.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import threading
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from flock.db.audit import AuditRecord
from flock.db.engine import Database, QueryLogEntry
from flock.db.persist import (
    _dump_audit_record,
    _fsync_dir,
    dump_values,
    load_database,
    load_values,
    save_database,
)
from flock.db.schema import Column, TableSchema
from flock.db.storage import Table, TableVersion
from flock.db.types import DataType
from flock.db.vector import ColumnVector
from flock.errors import DurabilityError, RecoveryError
from flock.testing import faultpoints

WAL_MAGIC = b"FLKWAL1\x00"
WAL_FORMAT_VERSION = 1
_HEADER = struct.Struct("<8sIQ")  # magic, format version, generation
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: Default auto-checkpoint threshold: log payload bytes since last checkpoint.
DEFAULT_CHECKPOINT_BYTES = 64 * 1024 * 1024


@dataclass
class RecoveryReport:
    """What :func:`open_database` found and did — never an exception for
    expected crash damage (torn tails are the *normal* post-crash state)."""

    directory: str
    checkpoint_loaded: bool = False
    generation: int = 1
    records_scanned: int = 0
    commits_replayed: int = 0
    ddl_replayed: int = 0
    audit_records_restored: int = 0
    discarded_bytes: int = 0
    tail_status: str = "missing"  # missing|clean|torn|corrupt|stale_generation
    replay_ms: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)


class WriteAheadLog:
    """The live log attached to a durable :class:`Database`.

    Created by :func:`open_database` after recovery; not meant to be
    constructed against a database with unlogged committed state.
    """

    def __init__(
        self,
        directory: str | Path,
        database: Database,
        *,
        sync_mode: str = "commit",
        group_window_ms: float = 1.0,
        checkpoint_bytes: int | None = DEFAULT_CHECKPOINT_BYTES,
        generation: int = 1,
    ):
        if sync_mode not in ("commit", "group", "off"):
            raise DurabilityError(f"unknown WAL sync mode {sync_mode!r}")
        self.directory = Path(directory)
        self.database = database
        self.sync_mode = sync_mode
        self.group_window_ms = group_window_ms
        self.checkpoint_bytes = checkpoint_bytes
        self.path = self.directory / "wal.log"
        self.last_recovery: RecoveryReport | None = None

        self._append_lock = threading.Lock()
        self._poisoned: BaseException | None = None
        # Group-commit state: LSNs are per-process append ordinals; the
        # leader fsyncs everything appended so far and advances _durable_lsn.
        self._group_cond = threading.Condition()
        self._fsync_leader = False
        self._next_lsn = 1
        self._durable_lsn = 0
        # Watermarks for piggybacked durability of the audit/query logs.
        self._audit_seq = 0
        self._qlog_pos = 0

        if self.path.exists() and self.path.stat().st_size >= _HEADER.size:
            self._file = open(self.path, "r+b")
            magic, version, generation = _read_header(self._file)
            self.generation = generation
            self._file.seek(0, os.SEEK_END)
            self._size = self._file.tell()
        else:
            self._file = open(self.path, "w+b")
            self.generation = generation
            self._file.write(
                _HEADER.pack(WAL_MAGIC, WAL_FORMAT_VERSION, generation)
            )
            self._file.flush()
            os.fsync(self._file.fileno())
            self._size = _HEADER.size

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def log_commit(self, txn) -> tuple[int, dict]:
        """Log one transaction's effects; called under the commit lock,
        *before* any staged version is published.

        Returns ``(lsn, payload)``: the append ordinal and the exact record
        written (including piggybacked audit/query-log entries), so the
        commit path can ship the same record to follower replicas once the
        staged versions publish (see :mod:`flock.cluster`)."""
        payload = encode_commit_record(txn)
        lsn = self._append(payload)
        self._metric("wal.commit_records")
        if self.sync_mode == "commit":
            self._fsync()
            faultpoints.reach("wal.post_fsync_pre_apply")
        return lsn, payload

    def log_ddl(self, op: dict) -> None:
        """Log a catalog/security mutation (applied by the caller)."""
        self._append({"t": "ddl", "op": op})
        self._metric("wal.ddl_records")
        # DDL is rare: sync it immediately even in group mode (which also
        # hardens any commit records appended before it).
        if self.sync_mode != "off":
            self._fsync()

    def wait_durable(self, lsn: int) -> None:
        """Block until *lsn* is fsynced — the acknowledgement barrier."""
        if self.sync_mode == "group":
            self._group_fsync(lsn)
        faultpoints.reach("wal.pre_ack")

    def _append(self, payload: dict) -> int:
        with self._append_lock:
            self._check_poison()
            # Audit records and query-log entries accumulated since the
            # previous record ride along; captured under the append lock so
            # every entry lands in exactly one record, in log order.
            audit = self.database.audit.log.records_after(self._audit_seq)
            qlog = self.database.query_log[self._qlog_pos :]
            if audit:
                payload["audit"] = [_dump_audit_record(r) for r in audit]
            if qlog:
                payload["qlog"] = [_dump_qlog_entry(e) for e in qlog]
            data = json.dumps(payload, separators=(",", ":")).encode()
            frame = _FRAME.pack(len(data), zlib.crc32(data)) + data
            try:
                if faultpoints.armed("wal.mid_record"):
                    # Flush the first half before firing, so a crash leaves
                    # a genuinely torn frame on disk for recovery to face.
                    half = len(frame) // 2
                    self._file.write(frame[:half])
                    self._file.flush()
                    faultpoints.reach("wal.mid_record")
                    self._file.write(frame[half:])
                else:
                    self._file.write(frame)
                self._file.flush()
            except BaseException as exc:
                self._poison(exc)
                raise
            if audit:
                self._audit_seq = audit[-1].sequence
            self._qlog_pos += len(qlog)
            self._size += len(frame)
            lsn = self._next_lsn
            self._next_lsn += 1
        registry = self._metrics()
        registry.counter("wal.appends").inc()
        registry.counter("wal.bytes_written").inc(len(frame))
        return lsn

    def _fsync(self) -> None:
        start_ns = time.perf_counter_ns()
        try:
            faultpoints.reach("wal.pre_fsync")
            os.fsync(self._file.fileno())
        except BaseException as exc:
            # The record may already be on disk (or half of it in the page
            # cache): memory and log can no longer be proven to agree, so no
            # further commit may be acknowledged against this log.
            self._poison(exc)
            raise
        registry = self._metrics()
        registry.counter("wal.fsyncs").inc()
        registry.histogram("wal.fsync_ms").observe(
            (time.perf_counter_ns() - start_ns) / 1e6
        )

    def _group_fsync(self, lsn: int) -> None:
        while True:
            with self._group_cond:
                while True:
                    if self._durable_lsn >= lsn:
                        return
                    self._check_poison()
                    if not self._fsync_leader:
                        self._fsync_leader = True
                        break
                    self._group_cond.wait(timeout=0.1)
            # We are the leader: give concurrent committers a short window
            # to append, then fsync once for everyone.
            try:
                if self.group_window_ms > 0:
                    time.sleep(self.group_window_ms / 1000.0)
                with self._append_lock:
                    self._check_poison()
                    target = self._next_lsn - 1
                    self._fsync()
                with self._group_cond:
                    self._durable_lsn = max(self._durable_lsn, target)
            finally:
                with self._group_cond:
                    self._fsync_leader = False
                    self._group_cond.notify_all()

    def _poison(self, exc: BaseException) -> None:
        if self._poisoned is None:
            self._poisoned = exc
            self._metric("wal.poisoned")

    def _check_poison(self) -> None:
        if self._poisoned is not None:
            raise DurabilityError(
                f"write-ahead log at {self.path} is poisoned by an earlier "
                f"failure ({self._poisoned!r}); reopen the database to "
                f"recover"
            )

    @property
    def poisoned(self) -> bool:
        return self._poisoned is not None

    @property
    def lsn(self) -> int:
        """Append ordinal of the last record written (0 = none yet).

        LSNs are per-process monotonic — checkpoints truncate the log file
        but never rewind the counter — which makes them usable as
        replication positions: a follower's ``applied_lsn`` compares
        directly against the primary's ``lsn`` for lag."""
        return self._next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        """Highest LSN known fsynced (only tracked in ``group`` mode;
        ``commit`` mode fsyncs inline so every appended LSN is durable)."""
        if self.sync_mode == "commit":
            return self.lsn
        return self._durable_lsn

    @property
    def log_bytes(self) -> int:
        """Bytes of record data in the current log (excluding the header)."""
        return self._size - _HEADER.size

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot the database and truncate the log under a new generation.

        Freezes the engine: the statement write lock keeps statements (and
        their audit records) out, the commit lock keeps registry
        deployments — which commit without taking the statement lock — out.
        """
        database = self.database
        start_ns = time.perf_counter_ns()
        with database.statement_lock.write_locked():
            with database.transactions._commit_lock:
                self._check_poison()
                new_generation = self.generation + 1
                staging = self.directory / "checkpoint.new"
                current = self.directory / "checkpoint"
                old = self.directory / "checkpoint.old"
                if staging.exists():
                    shutil.rmtree(staging)
                save_database(
                    database,
                    staging,
                    wal_generation=new_generation,
                    durable=True,
                )
                faultpoints.reach("checkpoint.pre_swap")
                # Swap: from here on the new snapshot is the recovery base.
                if old.exists():
                    shutil.rmtree(old)
                if current.exists():
                    current.rename(old)
                staging.rename(current)
                _fsync_dir(self.directory)
                try:
                    faultpoints.reach("checkpoint.post_swap")
                    self._reset_log(new_generation)
                except BaseException as exc:
                    # The snapshot expects generation N+1 but the log still
                    # carries N: one more acknowledged commit would land in
                    # a log recovery is obliged to discard. Refuse them all.
                    self._poison(exc)
                    raise
                if old.exists():
                    shutil.rmtree(old)
        registry = self._metrics()
        registry.counter("checkpoint.count").inc()
        registry.histogram("checkpoint.ms").observe(
            (time.perf_counter_ns() - start_ns) / 1e6
        )

    def _reset_log(self, new_generation: int) -> None:
        with self._append_lock:
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(
                _HEADER.pack(WAL_MAGIC, WAL_FORMAT_VERSION, new_generation)
            )
            self._file.flush()
            os.fsync(self._file.fileno())
            self._size = _HEADER.size
            self.generation = new_generation
            # The snapshot holds the full audit trail and query log.
            self._audit_seq = self.database.audit.log.last_sequence
            self._qlog_pos = len(self.database.query_log)

    def maybe_checkpoint(self) -> bool:
        """Checkpoint iff the log outgrew ``checkpoint_bytes``; called by
        the engine after statement-level commits (never from the registry
        deploy path, whose lock ordering must stay checkpoint-free)."""
        if not self.checkpoint_bytes or self._poisoned is not None:
            return False
        if self.log_bytes < self.checkpoint_bytes:
            return False
        self.checkpoint()
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._poisoned is None and not self._file.closed:
            # Read-only statements leave audit records that nothing
            # piggybacks until the next write; a clean close preserves them
            # with an effect-free flush record. (A crash can still lose
            # trailing *read* audits — never a write or its audit.)
            try:
                if (
                    self.database.audit.log.last_sequence > self._audit_seq
                    or len(self.database.query_log) > self._qlog_pos
                ):
                    self._append({"t": "flush"})
                    self._fsync()
            except Exception:
                pass
        with self._append_lock:
            if self._file.closed:
                return
            if self._poisoned is None:
                try:
                    self._file.flush()
                    os.fsync(self._file.fileno())
                except OSError:
                    pass
            self._file.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _metrics():
        from flock import observability as obs

        return obs.metrics()

    def _metric(self, name: str) -> None:
        self._metrics().counter(name).inc()


# ----------------------------------------------------------------------
# Effect encoding (live) / decoding (replay)
# ----------------------------------------------------------------------
def encode_commit_record(txn) -> dict:
    """One transaction's effects as a WAL ``commit`` record payload.

    This is the unit of WAL shipping: the same dict is CRC-framed into the
    durable log *and* streamed to follower replicas, which apply it through
    :func:`apply_record` — the identical code path crash recovery replays.
    """
    effects = [
        [key, *(_encode_effect(version))]
        for key, version in txn._effects
    ]
    payload: dict[str, Any] = {
        "t": "commit",
        "txn": txn.txn_id,
        "user": txn.user,
        "effects": effects,
    }
    return payload


def _encode_effect(version: TableVersion) -> tuple[str, dict]:
    delta = version.delta
    if delta is None:
        # Version built outside the normal write path: log it whole.
        return "REPLACE", {
            "op": version.operation,
            "cols": [dump_values(c) for c in version.columns],
        }
    kind = delta[0]
    if kind == "INSERT":
        return "INSERT", {"cols": [dump_values(v) for v in delta[1]]}
    if kind == "DELETE":
        keep_mask = delta[1]
        return "DELETE", {
            "n": int(len(keep_mask)),
            "drop": np.nonzero(~keep_mask)[0].tolist(),
        }
    if kind == "UPDATE":
        row_mask, assignments = delta[1], delta[2]
        return "UPDATE", {
            "n": int(len(row_mask)),
            "rows": np.nonzero(row_mask)[0].tolist(),
            "cols": {
                str(i): dump_values(vec) for i, vec in assignments.items()
            },
        }
    if kind == "TRUNCATE":
        return "TRUNCATE", {}
    raise DurabilityError(f"unloggable table delta {kind!r}")


def _replay_effect(
    table: Table, base: TableVersion, kind: str, data: dict
) -> TableVersion:
    schema = table.schema
    if kind == "INSERT":
        fresh = [
            ColumnVector.from_values(col.dtype, load_values(values))
            for col, values in zip(schema.columns, data["cols"])
        ]
        return table.build_append(fresh, base=base)
    if kind == "DELETE":
        keep = np.ones(data["n"], dtype=bool)
        keep[data["drop"]] = False
        return table.build_delete(keep, base=base)
    if kind == "UPDATE":
        mask = np.zeros(data["n"], dtype=bool)
        mask[data["rows"]] = True
        assignments = {
            int(i): ColumnVector.from_values(
                schema.columns[int(i)].dtype, load_values(values)
            )
            for i, values in data["cols"].items()
        }
        return table.build_update(mask, assignments, base=base)
    if kind == "TRUNCATE":
        return table.build_truncate(base=base)
    if kind == "REPLACE":
        columns = [
            ColumnVector.from_values(col.dtype, load_values(values))
            for col, values in zip(schema.columns, data["cols"])
        ]
        return table._staged(columns, data["op"], base)
    raise RecoveryError(f"unknown WAL effect kind {kind!r}")


def _dump_qlog_entry(entry: QueryLogEntry) -> dict:
    return {
        "sql": entry.sql,
        "user": entry.user,
        "timestamp": entry.timestamp,
        "statement_type": entry.statement_type,
        "success": entry.success,
        "duration_ms": entry.duration_ms,
    }


# ----------------------------------------------------------------------
# Log scanning
# ----------------------------------------------------------------------
def _read_header(fh) -> tuple[bytes, int, int]:
    fh.seek(0)
    raw = fh.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise DurabilityError("WAL file too short for its header")
    magic, version, generation = _HEADER.unpack(raw)
    if magic != WAL_MAGIC:
        raise DurabilityError(f"not a flock WAL file (magic {magic!r})")
    if version != WAL_FORMAT_VERSION:
        raise DurabilityError(f"unsupported WAL format version {version}")
    return magic, version, generation


def _scan_log(path: Path) -> tuple[int, list[dict], int, str, int]:
    """Scan ``wal.log`` → (generation, records, valid_end, tail, discarded).

    Stops at the first incomplete or CRC-failed frame; everything after the
    last valid record is the discarded tail. A header that cannot be parsed
    classifies the whole file as corrupt (zero records survive).
    """
    data = path.read_bytes()
    size = len(data)
    if size < _HEADER.size:
        return 0, [], 0, "corrupt", size
    magic, version, generation = _HEADER.unpack(data[: _HEADER.size])
    if magic != WAL_MAGIC or version != WAL_FORMAT_VERSION:
        return 0, [], 0, "corrupt", size
    records: list[dict] = []
    offset = _HEADER.size
    tail = "clean"
    while True:
        if offset == size:
            break
        if offset + _FRAME.size > size:
            tail = "torn"
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > size:
            tail = "torn"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            tail = "corrupt"
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            tail = "corrupt"
            break
        records.append(record)
        offset = end
    return generation, records, offset, tail, size - offset


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def open_database(
    path: str | Path,
    *,
    model_store=None,
    scorer=None,
    optimizer=None,
    sync_mode: str = "commit",
    group_window_ms: float = 1.0,
    checkpoint_bytes: int | None = DEFAULT_CHECKPOINT_BYTES,
    encodings: bool | None = None,
    memory_budget: int | None = None,
) -> Database:
    """Open (or create) a durable database directory and recover it.

    Loads the newest checkpoint, replays the committed WAL suffix, truncates
    any torn/corrupt tail, attaches a live :class:`WriteAheadLog`, and hangs
    the :class:`RecoveryReport` on ``database.wal.last_recovery``.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    report = RecoveryReport(directory=str(root))
    start_ns = time.perf_counter_ns()

    _repair_checkpoint_dirs(root)

    # ---- recovery base: newest checkpoint, else a legacy flat snapshot,
    # ---- else a fresh database.
    checkpoint_dir = root / "checkpoint"
    generation = 1
    if (checkpoint_dir / "manifest.json").exists():
        database = load_database(
            checkpoint_dir,
            model_store=model_store,
            scorer=scorer,
            optimizer=optimizer,
            encodings=encodings,
            memory_budget=memory_budget,
        )
        manifest = json.loads((checkpoint_dir / "manifest.json").read_text())
        generation = int(manifest.get("wal_generation", 1))
        report.checkpoint_loaded = True
    elif (root / "manifest.json").exists():
        # A directory written by persist.save_database (e.g. the shell's
        # ``.save``) opens as the seed of a durable database.
        database = load_database(
            root,
            model_store=model_store,
            scorer=scorer,
            optimizer=optimizer,
            encodings=encodings,
            memory_budget=memory_budget,
        )
        report.checkpoint_loaded = True
    else:
        database = Database(
            model_store=model_store,
            scorer=scorer,
            optimizer=optimizer,
            encodings=encodings,
            memory_budget=memory_budget,
        )
    report.generation = generation

    # The registry's system table is created by bind_database outside any
    # logged statement, so it must exist before deploy commits replay.
    if model_store is not None and hasattr(model_store, "bind_database"):
        model_store.bind_database(database)

    # ---- replay the committed suffix.
    wal_path = root / "wal.log"
    if wal_path.exists():
        log_generation, records, valid_end, tail, discarded = _scan_log(
            wal_path
        )
        if log_generation == 0:
            # The header itself is unreadable: nothing in the file can be
            # trusted, so the whole log is discarded as corrupt.
            report.tail_status = "corrupt"
            report.discarded_bytes = discarded
            wal_path.unlink()
        elif log_generation != generation:
            # An interrupted checkpoint swapped the snapshot in but died
            # before resetting the log: every record predates the snapshot.
            report.tail_status = "stale_generation"
            report.discarded_bytes = wal_path.stat().st_size - _HEADER.size
            wal_path.unlink()
        else:
            report.tail_status = tail
            report.discarded_bytes = discarded
            report.records_scanned = len(records)
            audit_before = database.audit.log.last_sequence
            for index, record in enumerate(records):
                try:
                    apply_record(database, record)
                except RecoveryError:
                    raise
                except Exception as exc:
                    raise RecoveryError(
                        f"WAL record {index + 1} of {len(records)} failed "
                        f"to replay: {exc}"
                    ) from exc
                if record.get("t") == "commit":
                    report.commits_replayed += 1
                elif record.get("t") == "ddl":
                    report.ddl_replayed += 1
            report.audit_records_restored = (
                database.audit.log.last_sequence - audit_before
            )
            if discarded:
                with open(wal_path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())

    if model_store is not None and hasattr(model_store, "load_from_database"):
        model_store.load_from_database(database)

    report.replay_ms = (time.perf_counter_ns() - start_ns) / 1e6

    wal = WriteAheadLog(
        root,
        database,
        sync_mode=sync_mode,
        group_window_ms=group_window_ms,
        checkpoint_bytes=checkpoint_bytes,
        generation=generation,
    )
    wal._audit_seq = database.audit.log.last_sequence
    wal._qlog_pos = len(database.query_log)
    wal.last_recovery = report
    database.wal = wal
    database.transactions.wal = wal
    database.bump_invalidation_epoch()

    registry = WriteAheadLog._metrics()
    registry.counter("wal.recoveries").inc()
    registry.counter("wal.replay_records").inc(report.records_scanned)
    return database


def _repair_checkpoint_dirs(root: Path) -> None:
    """Undo whatever an interrupted checkpoint left behind.

    ``checkpoint.new`` is always garbage (the swap renames it away before
    anything else depends on it). ``checkpoint.old`` is the previous
    snapshot: restore it only if the swap died after moving the current one
    aside — once a ``checkpoint`` directory exists, old is deletable.
    """
    staging = root / "checkpoint.new"
    if staging.exists():
        shutil.rmtree(staging)
    old = root / "checkpoint.old"
    if old.exists():
        if (root / "checkpoint").exists():
            shutil.rmtree(old)
        else:
            old.rename(root / "checkpoint")


def apply_record(database: Database, record: dict) -> None:
    """Apply one WAL record to *database* — the single replay entry point.

    Used by crash recovery (:func:`open_database`) and by follower replicas
    (:mod:`flock.cluster`), so a streamed record takes exactly the path a
    recovered one would: same constraint checks, same commit machinery.
    """
    kind = record.get("t")
    if kind == "commit":
        txn = database.transactions.begin(record.get("user", "admin"))
        for name, effect_kind, data in record["effects"]:
            table = database.catalog.table(name)
            base = txn.visible_version(name)
            txn.stage(name, _replay_effect(table, base, effect_kind, data))
        database.transactions.commit(txn)
    elif kind == "ddl":
        _apply_ddl(database, record["op"])
    elif kind == "flush":
        pass  # effect-free carrier for piggybacked audit/qlog entries
    else:
        raise RecoveryError(f"unknown WAL record type {kind!r}")
    if record.get("audit"):
        database.audit.log.restore(
            [AuditRecord(**r) for r in record["audit"]]
        )
    if record.get("qlog"):
        database.query_log.extend(
            QueryLogEntry(**e) for e in record["qlog"]
        )


def _apply_ddl(database: Database, op: dict) -> None:
    kind = op["kind"]
    if kind == "create_table":
        schema = TableSchema.of(
            op["name"],
            [
                Column(
                    c["name"],
                    DataType(c["dtype"]),
                    nullable=c["nullable"],
                    primary_key=c["primary_key"],
                    hidden=c.get("hidden", False),
                )
                for c in op["columns"]
            ],
        )
        database.catalog.create_table(schema)
        if op.get("owner"):
            database.security.grant("ALL", op["name"], op["owner"])
    elif kind == "drop_table":
        database.catalog.drop_table(op["name"], if_exists=True)
    elif kind == "create_view":
        from flock.db.sql.parser import parse_statement

        database.catalog.create_view(op["name"], parse_statement(op["sql"]))
        if op.get("owner"):
            database.security.grant("ALL", op["name"], op["owner"])
    elif kind == "drop_view":
        database.catalog.drop_view(op["name"], if_exists=True)
    elif kind == "create_index":
        # Idempotent: a checkpoint taken after the CREATE INDEX already
        # restored the definition; replaying the record is then a no-op.
        database.catalog.create_index(
            op["name"], op["table"], op["column"], if_not_exists=True
        )
    elif kind == "drop_index":
        database.catalog.drop_index(op["name"], if_exists=True)
    elif kind == "create_user":
        database.security.create_user(op["name"])
    elif kind == "create_role":
        database.security.create_role(op["name"])
    elif kind == "grant":
        database.security.grant(
            op["privilege"], op.get("object"), op["principal"]
        )
    elif kind == "revoke":
        database.security.revoke(
            op["privilege"], op.get("object"), op["principal"]
        )
    else:
        raise RecoveryError(f"unknown WAL DDL kind {kind!r}")
