"""Table schemas: columns, constraints and name resolution helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from flock.db.types import DataType
from flock.errors import CatalogError


@dataclass(frozen=True)
class Column:
    """A named, typed column with optional constraints."""

    name: str
    dtype: DataType
    nullable: bool = True
    primary_key: bool = False

    def __str__(self) -> str:  # pragma: no cover - trivial
        extra = "" if self.nullable else " NOT NULL"
        pk = " PRIMARY KEY" if self.primary_key else ""
        return f"{self.name} {self.dtype}{extra}{pk}"


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns, with unique case-insensitive names."""

    name: str
    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            key = col.name.lower()
            if key in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(key)

    @classmethod
    def of(cls, name: str, columns: Iterable[Column]) -> "TableSchema":
        return cls(name, tuple(columns))

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def dtypes(self) -> list[DataType]:
        return [c.dtype for c in self.columns]

    @property
    def primary_key_indexes(self) -> list[int]:
        return [i for i, c in enumerate(self.columns) if c.primary_key]

    def __len__(self) -> int:
        return len(self.columns)

    def index_of(self, column_name: str) -> int:
        """Position of *column_name* (case-insensitive)."""
        lowered = column_name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return i
        raise CatalogError(
            f"table {self.name!r} has no column named {column_name!r}"
        )

    def column_named(self, column_name: str) -> Column:
        return self.columns[self.index_of(column_name)]

    def has_column(self, column_name: str) -> bool:
        lowered = column_name.lower()
        return any(c.name.lower() == lowered for c in self.columns)
