"""Table schemas: columns, constraints and name resolution helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from flock.db.types import DataType
from flock.errors import CatalogError


@dataclass(frozen=True)
class Column:
    """A named, typed column with optional constraints.

    ``hidden`` columns are physical storage columns invisible to queries:
    the binder excludes them from scans (``SELECT *`` never shows one and
    they cannot be referenced in a SELECT), while schema-addressed paths —
    explicit INSERT column lists, UPDATE/DELETE predicates — can still
    reach them. The sharding tier uses one (``_flock_seq``) to record
    global insert order. Hidden columns must come after every visible
    column so visible positions match physical positions.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    primary_key: bool = False
    hidden: bool = False

    def __str__(self) -> str:  # pragma: no cover - trivial
        extra = "" if self.nullable else " NOT NULL"
        pk = " PRIMARY KEY" if self.primary_key else ""
        hid = " HIDDEN" if self.hidden else ""
        return f"{self.name} {self.dtype}{extra}{pk}{hid}"


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of columns, with unique case-insensitive names."""

    name: str
    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            key = col.name.lower()
            if key in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(key)

    @classmethod
    def of(cls, name: str, columns: Iterable[Column]) -> "TableSchema":
        schema = cls(name, tuple(columns))
        seen_hidden = False
        for col in schema.columns:
            if col.hidden:
                seen_hidden = True
            elif seen_hidden:
                raise CatalogError(
                    f"table {name!r}: hidden columns must come last"
                )
        return schema

    @property
    def visible_columns(self) -> tuple[Column, ...]:
        return tuple(c for c in self.columns if not c.hidden)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def dtypes(self) -> list[DataType]:
        return [c.dtype for c in self.columns]

    @property
    def primary_key_indexes(self) -> list[int]:
        return [i for i, c in enumerate(self.columns) if c.primary_key]

    def __len__(self) -> int:
        return len(self.columns)

    def index_of(self, column_name: str) -> int:
        """Position of *column_name* (case-insensitive)."""
        lowered = column_name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return i
        raise CatalogError(
            f"table {self.name!r} has no column named {column_name!r}"
        )

    def column_named(self, column_name: str) -> Column:
        return self.columns[self.index_of(column_name)]

    def has_column(self, column_name: str) -> bool:
        lowered = column_name.lower()
        return any(c.name.lower() == lowered for c in self.columns)
