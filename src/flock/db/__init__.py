"""flock.db — an in-memory relational engine with governance built in.

The DBMS substrate of the Flock architecture: SQL front-end, logical
optimizer, vectorized executor, versioned columnar storage, transactions,
access control and audit logging. ML inference plugs in as the
:class:`~flock.db.plan.PredictNode` relational operator.
"""

from flock.db.catalog import Catalog
from flock.db.engine import Connection, Database
from flock.db.persist import load_database, save_database
from flock.db.result import QueryResult
from flock.db.schema import Column, TableSchema
from flock.db.storage import ColumnStats, Table, TableStats, TableVersion
from flock.db.types import DataType
from flock.db.vector import Batch, ColumnVector

__all__ = [
    "Batch",
    "Catalog",
    "Column",
    "ColumnStats",
    "ColumnVector",
    "Connection",
    "Database",
    "DataType",
    "QueryResult",
    "Table",
    "TableSchema",
    "TableStats",
    "TableVersion",
    "load_database",
    "save_database",
]
