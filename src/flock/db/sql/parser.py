"""Recursive-descent SQL parser.

Grammar subset: SELECT (joins, GROUP BY/HAVING, ORDER BY, LIMIT/OFFSET,
DISTINCT, subqueries in FROM), INSERT (VALUES and INSERT..SELECT), UPDATE,
DELETE, CREATE/DROP TABLE, transaction control, and the security statements
(CREATE USER/ROLE, GRANT, REVOKE). Expressions support the usual operators
plus CASE, CAST, LIKE, IN, BETWEEN, IS NULL, EXTRACT, DATE/INTERVAL literals
and the paper's ``PREDICT(model, args...)`` inference expression.
"""

from __future__ import annotations

from flock.db.sql import ast_nodes as ast
from flock.db.sql.lexer import Token, TokenType, tokenize
from flock.errors import ParseError

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_ADDITIVE_OPS = {"+", "-", "||"}
_MULTIPLICATIVE_OPS = {"*", "/", "%"}
_PRIVILEGES = {"SELECT", "INSERT", "UPDATE", "DELETE", "ALL", "PREDICT"}

# Keywords that can never start an expression. Most keywords double as
# identifiers (a column named "date" is fine), but these mark clause
# boundaries: treating them as column names turns "SELECT FROM t" into
# a nonsense statement that only fails much later, in the binder.
RESERVED_IN_EXPR = {
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
    "AND", "OR", "AS", "BY", "ON", "JOIN", "INNER", "OUTER", "CROSS",
    "UNION", "EXCEPT", "INTERSECT", "THEN", "ELSE", "END", "INTO",
    "VALUES", "SELECT",
}


class Parser:
    """Parses a token stream into statement AST nodes."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0
        # Number of '?' placeholders seen; each becomes ast.Parameter(index).
        self.parameter_count = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self.current.matches(token_type, value)

    def _check_keyword(self, *keywords: str) -> bool:
        return self.current.type is TokenType.KEYWORD and self.current.value in keywords

    def _accept(self, token_type: TokenType, value: str | None = None) -> bool:
        if self._check(token_type, value):
            self._advance()
            return True
        return False

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if self._check(token_type, value):
            return self._advance()
        want = value or token_type.value
        raise ParseError(
            f"expected {want!r}, found {self.current.value!r} "
            f"at position {self.current.position}",
            self.current,
        )

    def _expect_identifier(self) -> str:
        # Unreserved keywords may appear where identifiers are expected
        # (e.g. a column named "date" parses as the DATE keyword).
        if self.current.type in (TokenType.IDENT, TokenType.KEYWORD):
            return self._advance().value
        raise ParseError(
            f"expected identifier, found {self.current.value!r} "
            f"at position {self.current.position}",
            self.current,
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def parse(self) -> ast.Statement:
        """Parse exactly one statement (trailing ';' allowed)."""
        stmt = self._statement()
        self._accept(TokenType.PUNCT, ";")
        if self.current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input {self.current.value!r} "
                f"at position {self.current.position}",
                self.current,
            )
        return stmt

    def parse_script(self) -> list[ast.Statement]:
        """Parse a ';'-separated sequence of statements."""
        statements: list[ast.Statement] = []
        while self.current.type is not TokenType.EOF:
            statements.append(self._statement())
            while self._accept(TokenType.PUNCT, ";"):
                pass
        return statements

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _statement(self) -> ast.Statement:
        if self._check_keyword("SELECT", "WITH"):
            return self._query_expression()
        if self._accept(TokenType.KEYWORD, "EXPLAIN"):
            analyze = bool(self._accept(TokenType.KEYWORD, "ANALYZE"))
            return ast.Explain(self._query_expression(), analyze=analyze)
        if self._check_keyword("INSERT"):
            return self._insert()
        if self._check_keyword("UPDATE"):
            return self._update()
        if self._check_keyword("DELETE"):
            return self._delete()
        if self._check_keyword("CREATE"):
            return self._create()
        if self._check_keyword("DROP"):
            return self._drop()
        if self._check_keyword("BEGIN"):
            self._advance()
            self._accept(TokenType.KEYWORD, "TRANSACTION")
            return ast.Begin()
        if self._check_keyword("COMMIT"):
            self._advance()
            return ast.Commit()
        if self._check_keyword("ROLLBACK"):
            self._advance()
            return ast.Rollback()
        if self._check_keyword("GRANT"):
            return self._grant_or_revoke(is_grant=True)
        if self._check_keyword("REVOKE"):
            return self._grant_or_revoke(is_grant=False)
        if self._check_keyword("SET"):
            return self._set_option()
        raise ParseError(
            f"unexpected statement start {self.current.value!r} "
            f"at position {self.current.position}",
            self.current,
        )

    def _query_expression(self) -> ast.Statement:
        """A [WITH ...] SELECT possibly chained with UNION/EXCEPT/INTERSECT."""
        ctes: list[ast.CTE] = []
        if self._accept(TokenType.KEYWORD, "WITH"):
            ctes.append(self._cte())
            while self._accept(TokenType.PUNCT, ","):
                ctes.append(self._cte())
        left: ast.Statement = self._select()
        if not self._check_keyword("UNION", "EXCEPT", "INTERSECT"):
            left.ctes = ctes
            return left
        while self._check_keyword("UNION", "EXCEPT", "INTERSECT"):
            if isinstance(left, ast.Select) and (
                left.order_by or left.limit is not None
            ):
                raise ParseError(
                    "ORDER BY/LIMIT must follow the whole set operation",
                    self.current,
                )
            op = self._advance().value
            is_all = bool(self._accept(TokenType.KEYWORD, "ALL"))
            right = self._select()
            left = ast.SetOperation(op, is_all, left, right)
        # Trailing ORDER BY / LIMIT / OFFSET of the final branch belong to
        # the whole expression.
        assert isinstance(left, ast.SetOperation)
        final = left.right
        if isinstance(final, ast.Select):
            left.order_by = final.order_by
            left.limit = final.limit
            left.offset = final.offset
            final.order_by = []
            final.limit = None
            final.offset = None
        left.ctes = ctes
        return left

    def _cte(self) -> ast.CTE:
        name = self._expect_identifier()
        self._expect(TokenType.KEYWORD, "AS")
        self._expect(TokenType.PUNCT, "(")
        query = self._query_expression()
        self._expect(TokenType.PUNCT, ")")
        return ast.CTE(name, query)

    def _select(self) -> ast.Select:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = False
        if self._accept(TokenType.KEYWORD, "DISTINCT"):
            distinct = True
        else:
            self._accept(TokenType.KEYWORD, "ALL")

        items = [self._select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._select_item())

        from_clause = None
        if self._accept(TokenType.KEYWORD, "FROM"):
            from_clause = self._table_expr()

        where = self._expr() if self._accept(TokenType.KEYWORD, "WHERE") else None

        group_by: list[ast.Expr] = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self._expr())
            while self._accept(TokenType.PUNCT, ","):
                group_by.append(self._expr())

        having = self._expr() if self._accept(TokenType.KEYWORD, "HAVING") else None

        order_by: list[ast.OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(TokenType.PUNCT, ","):
                order_by.append(self._order_item())

        limit = offset = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            limit = int(self._expect(TokenType.NUMBER).value)
        if self._accept(TokenType.KEYWORD, "OFFSET"):
            offset = int(self._expect(TokenType.NUMBER).value)

        return ast.Select(
            items=items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect_identifier()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        ascending = True
        if self._accept(TokenType.KEYWORD, "DESC"):
            ascending = False
        else:
            self._accept(TokenType.KEYWORD, "ASC")
        return ast.OrderItem(expr, ascending)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _table_expr(self) -> ast.TableExpr:
        left = self._table_primary()
        while True:
            if self._accept(TokenType.PUNCT, ","):
                right = self._table_primary()
                left = ast.Join("CROSS", left, right)
                continue
            join_type = self._join_type()
            if join_type is None:
                return left
            right = self._table_primary()
            condition = None
            if join_type != "CROSS":
                self._expect(TokenType.KEYWORD, "ON")
                condition = self._expr()
            left = ast.Join(join_type, left, right, condition)

    def _join_type(self) -> str | None:
        if self._accept(TokenType.KEYWORD, "CROSS"):
            self._expect(TokenType.KEYWORD, "JOIN")
            return "CROSS"
        if self._accept(TokenType.KEYWORD, "INNER"):
            self._expect(TokenType.KEYWORD, "JOIN")
            return "INNER"
        if self._accept(TokenType.KEYWORD, "LEFT"):
            self._accept(TokenType.KEYWORD, "OUTER")
            self._expect(TokenType.KEYWORD, "JOIN")
            return "LEFT"
        if self._accept(TokenType.KEYWORD, "JOIN"):
            return "INNER"
        return None

    def _table_primary(self) -> ast.TableExpr:
        if self._accept(TokenType.PUNCT, "("):
            query = self._query_expression()
            self._expect(TokenType.PUNCT, ")")
            self._accept(TokenType.KEYWORD, "AS")
            alias = self._expect_identifier()
            return ast.SubqueryRef(query, alias)
        name = self._expect_identifier()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect_identifier()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    # ------------------------------------------------------------------
    # DML / DDL
    # ------------------------------------------------------------------
    def _insert(self) -> ast.Insert:
        self._expect(TokenType.KEYWORD, "INSERT")
        self._expect(TokenType.KEYWORD, "INTO")
        table = self._expect_identifier()
        columns: list[str] = []
        if self._accept(TokenType.PUNCT, "("):
            columns.append(self._expect_identifier())
            while self._accept(TokenType.PUNCT, ","):
                columns.append(self._expect_identifier())
            self._expect(TokenType.PUNCT, ")")
        if self._check_keyword("SELECT", "WITH"):
            return ast.Insert(table, columns, select=self._query_expression())
        self._expect(TokenType.KEYWORD, "VALUES")
        rows = [self._value_row()]
        while self._accept(TokenType.PUNCT, ","):
            rows.append(self._value_row())
        return ast.Insert(table, columns, rows=rows)

    def _value_row(self) -> list[ast.Expr]:
        self._expect(TokenType.PUNCT, "(")
        row = [self._expr()]
        while self._accept(TokenType.PUNCT, ","):
            row.append(self._expr())
        self._expect(TokenType.PUNCT, ")")
        return row

    def _update(self) -> ast.Update:
        self._expect(TokenType.KEYWORD, "UPDATE")
        table = self._expect_identifier()
        self._expect(TokenType.KEYWORD, "SET")
        assignments = [self._assignment()]
        while self._accept(TokenType.PUNCT, ","):
            assignments.append(self._assignment())
        where = self._expr() if self._accept(TokenType.KEYWORD, "WHERE") else None
        return ast.Update(table, assignments, where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_identifier()
        self._expect(TokenType.OPERATOR, "=")
        return column, self._expr()

    def _set_option(self) -> ast.SetOption:
        """``SET flock.workers = 4`` — engine settings, integers only.

        A bare ``SET`` can only open this statement: ``UPDATE ... SET``
        consumes its SET inside :meth:`_update`.
        """
        self._expect(TokenType.KEYWORD, "SET")
        parts = [self._expect_identifier()]
        while self._accept(TokenType.PUNCT, "."):
            parts.append(self._expect_identifier())
        self._expect(TokenType.OPERATOR, "=")
        negative = bool(self._accept(TokenType.OPERATOR, "-"))
        token = self._expect(TokenType.NUMBER)
        try:
            value = int(token.value)
        except ValueError:
            raise ParseError(
                f"SET expects an integer value, found {token.value!r}",
                token,
            ) from None
        return ast.SetOption(".".join(parts), -value if negative else value)

    def _delete(self) -> ast.Delete:
        self._expect(TokenType.KEYWORD, "DELETE")
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._expect_identifier()
        where = self._expr() if self._accept(TokenType.KEYWORD, "WHERE") else None
        return ast.Delete(table, where)

    def _create(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "CREATE")
        if self._accept(TokenType.KEYWORD, "USER"):
            return ast.CreateUser(self._expect_identifier())
        if self._accept(TokenType.KEYWORD, "ROLE"):
            return ast.CreateRole(self._expect_identifier())
        if self._accept(TokenType.KEYWORD, "VIEW"):
            name = self._expect_identifier()
            self._expect(TokenType.KEYWORD, "AS")
            return ast.CreateView(name, self._query_expression())
        if self._accept(TokenType.KEYWORD, "INDEX"):
            name = self._expect_identifier()
            self._expect(TokenType.KEYWORD, "ON")
            table = self._expect_identifier()
            self._expect(TokenType.PUNCT, "(")
            column = self._expect_identifier()
            self._expect(TokenType.PUNCT, ")")
            return ast.CreateIndex(name, table, column)
        self._expect(TokenType.KEYWORD, "TABLE")
        if_not_exists = False
        if self._accept(TokenType.KEYWORD, "IF"):
            self._expect(TokenType.KEYWORD, "NOT")
            self._expect(TokenType.KEYWORD, "EXISTS")
            if_not_exists = True
        name = self._expect_identifier()
        self._expect(TokenType.PUNCT, "(")
        columns = [self._column_def()]
        while self._accept(TokenType.PUNCT, ","):
            columns.append(self._column_def())
        self._expect(TokenType.PUNCT, ")")
        return ast.CreateTable(name, columns, if_not_exists)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        type_name = self._expect_identifier().upper()
        # Swallow parenthesized type parameters, e.g. VARCHAR(25), DECIMAL(15,2)
        if self._accept(TokenType.PUNCT, "("):
            self._expect(TokenType.NUMBER)
            if self._accept(TokenType.PUNCT, ","):
                self._expect(TokenType.NUMBER)
            self._expect(TokenType.PUNCT, ")")
        nullable = True
        primary_key = False
        hidden = False
        while True:
            if self._accept(TokenType.KEYWORD, "NOT"):
                self._expect(TokenType.KEYWORD, "NULL")
                nullable = False
            elif self._accept(TokenType.KEYWORD, "PRIMARY"):
                self._expect(TokenType.KEYWORD, "KEY")
                primary_key = True
                nullable = False
            elif self._accept(TokenType.KEYWORD, "NULL"):
                nullable = True
            elif self._accept(TokenType.IDENT, "HIDDEN"):
                # Internal storage columns (e.g. the shard tier's global
                # sequence); invisible to SELECT, must come last.
                hidden = True
            else:
                break
        return ast.ColumnDef(name, type_name, nullable, primary_key, hidden)

    def _drop(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "DROP")
        is_view = False
        if self._accept(TokenType.KEYWORD, "INDEX"):
            if_exists = False
            if self._accept(TokenType.KEYWORD, "IF"):
                self._expect(TokenType.KEYWORD, "EXISTS")
                if_exists = True
            return ast.DropIndex(self._expect_identifier(), if_exists)
        if self._accept(TokenType.KEYWORD, "VIEW"):
            is_view = True
        else:
            self._expect(TokenType.KEYWORD, "TABLE")
        if_exists = False
        if self._accept(TokenType.KEYWORD, "IF"):
            self._expect(TokenType.KEYWORD, "EXISTS")
            if_exists = True
        name = self._expect_identifier()
        if is_view:
            return ast.DropView(name, if_exists)
        return ast.DropTable(name, if_exists)

    def _grant_or_revoke(self, is_grant: bool) -> ast.Statement:
        self._advance()  # GRANT or REVOKE
        privilege = self._expect_identifier().upper()
        object_name = None
        if self._accept(TokenType.KEYWORD, "ON"):
            object_name = self._expect_identifier()
        if is_grant:
            self._expect(TokenType.KEYWORD, "TO")
            principal = self._expect_identifier()
            return ast.Grant(privilege, object_name, principal)
        self._expect(TokenType.KEYWORD, "FROM")
        principal = self._expect_identifier()
        return ast.Revoke(privilege, object_name, principal)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept(TokenType.KEYWORD, "OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept(TokenType.KEYWORD, "AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept(TokenType.KEYWORD, "NOT"):
            inner = self._not_expr()
            if isinstance(inner, ast.Exists):
                return ast.Exists(inner.query, not inner.negated)
            return ast.UnaryOp("NOT", inner)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        while True:
            if (
                self.current.type is TokenType.OPERATOR
                and self.current.value in _COMPARISON_OPS
            ):
                op = self._advance().value
                if op == "!=":
                    op = "<>"
                left = ast.BinaryOp(op, left, self._additive())
                continue
            negated = False
            if self._check_keyword("NOT"):
                nxt = self.tokens[self.pos + 1]
                if nxt.type is TokenType.KEYWORD and nxt.value in (
                    "IN",
                    "LIKE",
                    "BETWEEN",
                ):
                    self._advance()
                    negated = True
                else:
                    return left
            if self._accept(TokenType.KEYWORD, "IS"):
                neg = self._accept(TokenType.KEYWORD, "NOT")
                self._expect(TokenType.KEYWORD, "NULL")
                left = ast.IsNull(left, negated=neg)
                continue
            if self._accept(TokenType.KEYWORD, "IN"):
                self._expect(TokenType.PUNCT, "(")
                if self._check_keyword("SELECT", "WITH"):
                    subquery = self._query_expression()
                    self._expect(TokenType.PUNCT, ")")
                    left = ast.InQuery(left, subquery, negated)
                    continue
                items = [self._expr()]
                while self._accept(TokenType.PUNCT, ","):
                    items.append(self._expr())
                self._expect(TokenType.PUNCT, ")")
                left = ast.InList(left, items, negated)
                continue
            if self._accept(TokenType.KEYWORD, "LIKE"):
                left = ast.Like(left, self._additive(), negated)
                continue
            if self._accept(TokenType.KEYWORD, "BETWEEN"):
                low = self._additive()
                self._expect(TokenType.KEYWORD, "AND")
                high = self._additive()
                left = ast.Between(left, low, high, negated)
                continue
            return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in _ADDITIVE_OPS
        ):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in _MULTIPLICATIVE_OPS
        ):
            op = self._advance().value
            left = ast.BinaryOp(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expr:
        if self._check(TokenType.OPERATOR, "-"):
            self._advance()
            return ast.UnaryOp("-", self._unary())
        if self._check(TokenType.OPERATOR, "+"):
            self._advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if self._accept(TokenType.KEYWORD, "NULL"):
            return ast.Literal(None)
        if self._accept(TokenType.KEYWORD, "TRUE"):
            return ast.Literal(True)
        if self._accept(TokenType.KEYWORD, "FALSE"):
            return ast.Literal(False)
        if self._accept(TokenType.KEYWORD, "CASE"):
            return self._case()
        if self._accept(TokenType.KEYWORD, "CAST"):
            self._expect(TokenType.PUNCT, "(")
            operand = self._expr()
            self._expect(TokenType.KEYWORD, "AS")
            type_name = self._expect_identifier().upper()
            self._expect(TokenType.PUNCT, ")")
            return ast.Cast(operand, type_name)
        if self._accept(TokenType.KEYWORD, "EXTRACT"):
            self._expect(TokenType.PUNCT, "(")
            unit = self._expect_identifier().upper()
            self._expect(TokenType.KEYWORD, "FROM")
            operand = self._expr()
            self._expect(TokenType.PUNCT, ")")
            return ast.FunctionCall("EXTRACT", [ast.Literal(unit), operand])
        if self._check_keyword("DATE") and self.tokens[self.pos + 1].type is (
            TokenType.STRING
        ):
            self._advance()
            literal = self._advance()
            return ast.FunctionCall("DATE", [ast.Literal(literal.value)])
        if self._accept(TokenType.KEYWORD, "INTERVAL"):
            amount = self._expect(TokenType.STRING).value
            unit = self._expect_identifier().upper()
            return ast.FunctionCall(
                "INTERVAL", [ast.Literal(amount), ast.Literal(unit)]
            )
        if self._accept(TokenType.KEYWORD, "PREDICT"):
            return self._predict()
        if self._accept(TokenType.KEYWORD, "EXISTS"):
            self._expect(TokenType.PUNCT, "(")
            query = self._query_expression()
            self._expect(TokenType.PUNCT, ")")
            return ast.Exists(query)
        if self._accept(TokenType.PUNCT, "?"):
            param = ast.Parameter(self.parameter_count)
            self.parameter_count += 1
            return param
        if self._check(TokenType.OPERATOR, "*"):
            self._advance()
            return ast.Star()
        if self._accept(TokenType.PUNCT, "("):
            if self._check_keyword("SELECT", "WITH"):
                query = self._query_expression()
                self._expect(TokenType.PUNCT, ")")
                return ast.ScalarSubquery(query)
            inner = self._expr()
            self._expect(TokenType.PUNCT, ")")
            return inner
        if token.type is TokenType.KEYWORD and token.value in RESERVED_IN_EXPR:
            raise ParseError(
                f"unexpected keyword {token.value!r} at position "
                f"{token.position}",
                token,
            )
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            return self._identifier_expr()
        raise ParseError(
            f"unexpected token {token.value!r} at position {token.position}", token
        )

    def _case(self) -> ast.Expr:
        branches: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept(TokenType.KEYWORD, "WHEN"):
            cond = self._expr()
            self._expect(TokenType.KEYWORD, "THEN")
            branches.append((cond, self._expr()))
        default = self._expr() if self._accept(TokenType.KEYWORD, "ELSE") else None
        self._expect(TokenType.KEYWORD, "END")
        return ast.CaseWhen(branches, default)

    def _predict(self) -> ast.Expr:
        self._expect(TokenType.PUNCT, "(")
        if self.current.type is TokenType.STRING:
            model_name = self._advance().value
        else:
            model_name = self._dotted_name()
        args: list[ast.Expr] = []
        while self._accept(TokenType.PUNCT, ","):
            args.append(self._expr())
        self._expect(TokenType.PUNCT, ")")
        output = None
        if self._accept(TokenType.KEYWORD, "WITH"):
            output = self._expect_identifier()
        return ast.Predict(model_name, args, output)

    def _dotted_name(self) -> str:
        parts = [self._expect_identifier()]
        while self._check(TokenType.PUNCT, ".") and self.tokens[
            self.pos + 1
        ].type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            parts.append(self._expect_identifier())
        return ".".join(parts)

    def _identifier_expr(self) -> ast.Expr:
        name = self._expect_identifier()
        if self._accept(TokenType.PUNCT, "("):
            return self._function_call(name)
        if self._accept(TokenType.PUNCT, "."):
            if self._check(TokenType.OPERATOR, "*"):
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier()
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _function_call(self, name: str) -> ast.Expr:
        distinct = False
        args: list[ast.Expr] = []
        if not self._check(TokenType.PUNCT, ")"):
            if self._accept(TokenType.KEYWORD, "DISTINCT"):
                distinct = True
                if self._check(TokenType.OPERATOR, "*"):
                    raise ParseError(
                        f"DISTINCT * is not valid in {name.upper()}() "
                        f"at position {self.current.position}",
                        self.current,
                    )
            args.append(self._expr())
            while self._accept(TokenType.PUNCT, ","):
                args.append(self._expr())
        self._expect(TokenType.PUNCT, ")")
        if self._check_keyword("OVER"):
            if distinct:
                raise ParseError(
                    "DISTINCT is not supported in window functions "
                    f"at position {self.current.position}",
                    self.current,
                )
            self._advance()
            return self._over_clause(name, args)
        return ast.FunctionCall(name.upper(), args, distinct)

    def _over_clause(self, name: str, args: list[ast.Expr]) -> ast.Expr:
        self._expect(TokenType.PUNCT, "(")
        partition_by: list[ast.Expr] = []
        order_by: list[ast.OrderItem] = []
        if self._accept(TokenType.KEYWORD, "PARTITION"):
            self._expect(TokenType.KEYWORD, "BY")
            partition_by.append(self._expr())
            while self._accept(TokenType.PUNCT, ","):
                partition_by.append(self._expr())
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(TokenType.PUNCT, ","):
                order_by.append(self._order_item())
        self._expect(TokenType.PUNCT, ")")
        return ast.WindowFunction(name.upper(), args, partition_by, order_by)


def split_statements(text: str) -> list[str]:
    """Split a script into statement strings on top-level semicolons.

    Uses the lexer, so semicolons inside string literals and comments are
    handled correctly. Each returned string parses as one statement.
    """
    tokens = tokenize(text)
    statements: list[str] = []
    start: int | None = None
    for i, token in enumerate(tokens):
        if token.type is TokenType.EOF:
            if start is not None:
                statements.append(text[start : token.position].strip())
            break
        if token.type is TokenType.PUNCT and token.value == ";":
            if start is not None:
                statements.append(text[start : token.position].strip())
                start = None
            continue
        if start is None:
            start = token.position
    return [s for s in statements if s]


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(text).parse()


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ';'-separated sequence of SQL statements."""
    return Parser(text).parse_script()
