"""SQL tokenizer.

Produces a flat list of :class:`Token` for the recursive-descent parser.
Handles quoted strings with doubled-quote escapes, numeric literals,
``--`` line comments, ``/* */`` block comments, and multi-character
operators (``<=``, ``>=``, ``<>``, ``!=``, ``||``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from flock.errors import LexerError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON
    JOIN INNER LEFT RIGHT FULL OUTER CROSS USING
    AND OR NOT IN IS NULL LIKE BETWEEN EXISTS
    CASE WHEN THEN ELSE END CAST
    ASC DESC DISTINCT ALL
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE DROP IF PRIMARY KEY UNIQUE VIEW INDEX
    BEGIN COMMIT ROLLBACK TRANSACTION
    GRANT REVOKE TO USER ROLE
    TRUE FALSE
    UNION EXCEPT INTERSECT EXPLAIN ANALYZE
    PREDICT MODEL WITH
    EXTRACT INTERVAL DATE
    OVER PARTITION
    """.split()
)


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        if value is None:
            return True
        if token_type in (TokenType.KEYWORD, TokenType.IDENT):
            return self.value.upper() == value.upper()
        return self.value == value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.type.value}({self.value!r}@{self.position})"


_OPERATORS_2 = ("<=", ">=", "<>", "!=", "||")
_OPERATORS_1 = "+-*/%<>="
_PUNCT = "(),.;?"


class Lexer:
    """Converts a SQL string into tokens."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                out.append(Token(TokenType.EOF, "", self.pos))
                return out
            out.append(self._next_token())

    # ------------------------------------------------------------------
    def _skip_whitespace_and_comments(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif text.startswith("--", self.pos):
                end = text.find("\n", self.pos)
                self.pos = len(text) if end == -1 else end + 1
            elif text.startswith("/*", self.pos):
                end = text.find("*/", self.pos + 2)
                if end == -1:
                    raise LexerError("unterminated block comment", self.pos)
                self.pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        text, start = self.text, self.pos
        ch = text[start]
        if ch == "'":
            return self._string(start)
        if ch == '"':
            return self._quoted_identifier(start)
        if ch.isdigit() or (
            ch == "." and start + 1 < len(text) and text[start + 1].isdigit()
        ):
            return self._number(start)
        if ch.isalpha() or ch == "_":
            return self._word(start)
        for op in _OPERATORS_2:
            if text.startswith(op, start):
                self.pos = start + 2
                return Token(TokenType.OPERATOR, op, start)
        if ch in _OPERATORS_1:
            self.pos = start + 1
            return Token(TokenType.OPERATOR, ch, start)
        if ch in _PUNCT:
            self.pos = start + 1
            return Token(TokenType.PUNCT, ch, start)
        raise LexerError(f"unexpected character {ch!r}", start)

    def _string(self, start: int) -> Token:
        text = self.text
        i = start + 1
        parts: list[str] = []
        while i < len(text):
            if text[i] == "'":
                if i + 1 < len(text) and text[i + 1] == "'":
                    parts.append("'")
                    i += 2
                    continue
                self.pos = i + 1
                return Token(TokenType.STRING, "".join(parts), start)
            parts.append(text[i])
            i += 1
        raise LexerError("unterminated string literal", start)

    def _quoted_identifier(self, start: int) -> Token:
        end = self.text.find('"', start + 1)
        if end == -1:
            raise LexerError("unterminated quoted identifier", start)
        self.pos = end + 1
        return Token(TokenType.IDENT, self.text[start + 1 : end], start)

    def _number(self, start: int) -> Token:
        text = self.text
        i = start
        seen_dot = False
        seen_exp = False
        while i < len(text):
            ch = text[i]
            if ch.isdigit():
                i += 1
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                i += 1
            elif ch in "eE" and not seen_exp and i > start:
                nxt = text[i + 1] if i + 1 < len(text) else ""
                if nxt.isdigit() or (
                    nxt in "+-" and i + 2 < len(text) and text[i + 2].isdigit()
                ):
                    seen_exp = True
                    i += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        self.pos = i
        return Token(TokenType.NUMBER, text[start:i], start)

    def _word(self, start: int) -> Token:
        text = self.text
        i = start
        while i < len(text) and (text[i].isalnum() or text[i] == "_"):
            i += 1
        self.pos = i
        word = text[start:i]
        if word.upper() in KEYWORDS:
            return Token(TokenType.KEYWORD, word.upper(), start)
        return Token(TokenType.IDENT, word, start)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, returning a list ending with an EOF token."""
    return Lexer(text).tokens()
