"""SQL abstract syntax tree.

Plain dataclasses, produced by :mod:`flock.db.sql.parser` and consumed by the
binder (:mod:`flock.db.binder`) and the SQL provenance module
(:mod:`flock.provenance.sql_capture`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expression AST nodes."""

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> list["Expr"]:
        return []


@dataclass
class Literal(Expr):
    value: Any  # int | float | str | bool | None

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass
class Parameter(Expr):
    """``?`` placeholder bound positionally from ``execute(sql, params)``."""

    index: int  # zero-based position among the statement's placeholders

    def __str__(self) -> str:
        return "?"


@dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass
class UnaryOp(Expr):
    op: str  # '-', '+', 'NOT'
    operand: Expr

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass
class BinaryOp(Expr):
    op: str  # arithmetic, comparison, AND/OR, '||'
    left: Expr
    right: Expr

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class FunctionCall(Expr):
    name: str
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False

    def children(self) -> list[Expr]:
        return list(self.args)

    def __str__(self) -> str:
        # Special syntactic forms must render back to parseable SQL.
        if self.name == "EXTRACT" and len(self.args) == 2:
            return f"EXTRACT({self.args[0].value} FROM {self.args[1]})"
        if self.name == "DATE" and len(self.args) == 1 and isinstance(
            self.args[0], Literal
        ):
            return f"DATE {self.args[0]}"
        if self.name == "INTERVAL" and len(self.args) == 2:
            return f"INTERVAL '{self.args[0].value}' {self.args[1].value}"
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {op})"


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand, self.low, self.high]

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}BETWEEN {self.low} AND {self.high})"


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr] = field(default_factory=list)
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand] + list(self.items)

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        inner = ", ".join(str(i) for i in self.items)
        return f"({self.operand} {neg}IN ({inner}))"


@dataclass
class InQuery(Expr):
    """``x IN (SELECT ...)`` — uncorrelated subquery membership."""

    operand: Expr
    query: "Select"
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}IN ({self.query}))"


@dataclass
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)`` — possibly correlated to the outer query.

    The binder decorrelates it into a SEMI/ANTI join (the subquery is not
    walked as an expression child, mirroring :class:`InQuery`).
    """

    query: "Statement"
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({neg}EXISTS ({self.query}))"


@dataclass
class ScalarSubquery(Expr):
    """``(SELECT ...)`` used as a scalar expression.

    Must produce one column and at most one row (the binder enforces an
    aggregate-without-GROUP-BY or LIMIT 1 shape, or equality-correlated
    aggregates which it decorrelates into a grouped LEFT join).
    """

    query: "Statement"

    def __str__(self) -> str:
        return f"({self.query})"


@dataclass
class WindowFunction(Expr):
    """``fn(args) OVER (PARTITION BY ... ORDER BY ...)``."""

    name: str
    args: list[Expr] = field(default_factory=list)
    partition_by: list[Expr] = field(default_factory=list)
    order_by: list["OrderItem"] = field(default_factory=list)

    def children(self) -> list[Expr]:
        return (
            list(self.args)
            + list(self.partition_by)
            + [o.expr for o in self.order_by]
        )

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        over: list[str] = []
        if self.partition_by:
            over.append(
                "PARTITION BY " + ", ".join(str(p) for p in self.partition_by)
            )
        if self.order_by:
            over.append(
                "ORDER BY "
                + ", ".join(
                    f"{o.expr} {'ASC' if o.ascending else 'DESC'}"
                    for o in self.order_by
                )
            )
        return f"{self.name}({inner}) OVER ({' '.join(over)})"


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False

    def children(self) -> list[Expr]:
        return [self.operand, self.pattern]

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.operand} {neg}LIKE {self.pattern})"


@dataclass
class CaseWhen(Expr):
    """``CASE WHEN c1 THEN v1 ... ELSE default END`` (searched form)."""

    branches: list[tuple[Expr, Expr]] = field(default_factory=list)
    default: Optional[Expr] = None

    def children(self) -> list[Expr]:
        out: list[Expr] = []
        for cond, value in self.branches:
            out.append(cond)
            out.append(value)
        if self.default is not None:
            out.append(self.default)
        return out

    def __str__(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond} THEN {value}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


@dataclass
class Cast(Expr):
    operand: Expr
    type_name: str

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.type_name})"


@dataclass
class Predict(Expr):
    """``PREDICT(model_name, arg...)`` — ML inference as an expression (§4.1).

    The binder lifts this into a :class:`flock.db.plan.PredictNode` so the
    optimizer can move relational operators across the model boundary.
    """

    model_name: str
    args: list[Expr] = field(default_factory=list)
    output: Optional[str] = None  # which model output to project (default 1st)

    def children(self) -> list[Expr]:
        return list(self.args)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        out = f" WITH {self.output}" if self.output else ""
        return f"PREDICT({self.model_name}, {inner}{out})"


# ----------------------------------------------------------------------
# Table references
# ----------------------------------------------------------------------
class TableExpr:
    """Base class for FROM-clause items."""


@dataclass
class TableRef(TableExpr):
    name: str
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass
class SubqueryRef(TableExpr):
    query: "Select"
    alias: str

    def __str__(self) -> str:
        return f"(...) AS {self.alias}"


@dataclass
class Join(TableExpr):
    join_type: str  # 'INNER' | 'LEFT' | 'CROSS'
    left: TableExpr
    right: TableExpr
    condition: Optional[Expr] = None

    def __str__(self) -> str:
        cond = f" ON {self.condition}" if self.condition else ""
        return f"({self.left} {self.join_type} JOIN {self.right}{cond})"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Statement:
    """Base class for statement AST nodes."""


@dataclass
class CTE:
    """One ``name AS (query)`` entry of a WITH clause."""

    name: str
    query: "Statement"

    def __str__(self) -> str:
        return f"{self.name} AS ({self.query})"


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass
class Select(Statement):
    items: list[SelectItem] = field(default_factory=list)
    from_clause: Optional[TableExpr] = None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    ctes: list[CTE] = field(default_factory=list)

    def __str__(self) -> str:
        """Render back to parseable SQL (used to persist view definitions)."""
        parts = []
        if self.ctes:
            parts.append("WITH " + ", ".join(str(c) for c in self.ctes))
        parts.append("SELECT")
        if self.distinct:
            parts.append("DISTINCT")
        rendered_items = []
        for item in self.items:
            text = str(item.expr)
            if item.alias:
                text += f" AS {item.alias}"
            rendered_items.append(text)
        parts.append(", ".join(rendered_items))
        if self.from_clause is not None:
            parts.append(f"FROM {_table_expr_sql(self.from_clause)}")
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append(
                "GROUP BY " + ", ".join(str(g) for g in self.group_by)
            )
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append(
                "ORDER BY "
                + ", ".join(
                    f"{o.expr} {'ASC' if o.ascending else 'DESC'}"
                    for o in self.order_by
                )
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


def _table_expr_sql(item: "TableExpr") -> str:
    if isinstance(item, TableRef):
        return f"{item.name} AS {item.alias}" if item.alias else item.name
    if isinstance(item, SubqueryRef):
        return f"({item.query}) AS {item.alias}"
    if isinstance(item, Join):
        left = _table_expr_sql(item.left)
        right = _table_expr_sql(item.right)
        if item.join_type == "CROSS" and item.condition is None:
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if item.join_type == "LEFT" else "JOIN"
        condition = f" ON {item.condition}" if item.condition else ""
        return f"{left} {keyword} {right}{condition}"
    return "<table>"


@dataclass
class SetOperation(Statement):
    """``left UNION [ALL] | EXCEPT | INTERSECT right`` query expressions.

    ORDER BY / LIMIT / OFFSET apply to the combined result. ``left`` and
    ``right`` may themselves be SetOperations (left-associative chains).
    """

    op: str  # 'UNION' | 'EXCEPT' | 'INTERSECT'
    all: bool
    left: Statement = None  # type: ignore[assignment]  # Select | SetOperation
    right: Statement = None  # type: ignore[assignment]
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    ctes: list[CTE] = field(default_factory=list)

    def __str__(self) -> str:
        parts = []
        if self.ctes:
            parts.append("WITH " + ", ".join(str(c) for c in self.ctes))
        op = f"{self.op} ALL" if self.all else self.op
        parts.append(f"{self.left} {op} {self.right}")
        if self.order_by:
            parts.append(
                "ORDER BY "
                + ", ".join(
                    f"{o.expr} {'ASC' if o.ascending else 'DESC'}"
                    for o in self.order_by
                )
            )
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)


@dataclass
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <select>`` — returns the optimized plan as text
    rows; with ANALYZE the plan is also executed and each node is annotated
    with actual row counts and wall time."""

    query: Statement = None  # type: ignore[assignment]
    analyze: bool = False


@dataclass
class ColumnDef:
    name: str
    type_name: str
    nullable: bool = True
    primary_key: bool = False
    hidden: bool = False

    def __str__(self) -> str:
        pk = " PRIMARY KEY" if self.primary_key else ""
        nn = " NOT NULL" if not self.nullable and not self.primary_key else ""
        hid = " HIDDEN" if self.hidden else ""
        return f"{self.name} {self.type_name}{nn}{pk}{hid}"


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    if_not_exists: bool = False

    def __str__(self) -> str:
        ine = "IF NOT EXISTS " if self.if_not_exists else ""
        cols = ", ".join(str(c) for c in self.columns)
        return f"CREATE TABLE {ine}{self.name} ({cols})"


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass
class CreateView(Statement):
    """``CREATE VIEW name AS SELECT ...`` — views are both a reuse and an
    access-control mechanism (grants on the view, not its base tables)."""

    name: str
    query: "Select" = None  # type: ignore[assignment]


@dataclass
class DropView(Statement):
    name: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    """``CREATE INDEX name ON table (column)`` — a secondary hash index."""

    name: str
    table: str
    column: str


@dataclass
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass
class Insert(Statement):
    table: str
    columns: list[str] = field(default_factory=list)  # empty = all, in order
    rows: list[list[Expr]] = field(default_factory=list)
    select: Optional[Select] = None


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None

    def __str__(self) -> str:
        sets = ", ".join(f"{c} = {e}" for c, e in self.assignments)
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{where}"


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expr] = None

    def __str__(self) -> str:
        where = f" WHERE {self.where}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{where}"


@dataclass
class Begin(Statement):
    pass


@dataclass
class Commit(Statement):
    pass


@dataclass
class Rollback(Statement):
    pass


@dataclass
class CreateUser(Statement):
    name: str


@dataclass
class CreateRole(Statement):
    name: str


@dataclass
class Grant(Statement):
    """``GRANT priv ON object TO principal`` or ``GRANT role TO principal``."""

    privilege: str  # SELECT/INSERT/UPDATE/DELETE/ALL or a role name
    object_name: Optional[str]  # None for role grants
    principal: str


@dataclass
class Revoke(Statement):
    privilege: str
    object_name: Optional[str]
    principal: str


@dataclass
class SetOption(Statement):
    """``SET <dotted.name> = <int>`` — an engine-wide setting change.

    The settings today drive morsel-parallel execution (``flock.workers``,
    ``flock.morsel_rows``, ``flock.parallel_min_rows``) and access-path
    selection (``flock.indexes``, 0/1), so values are plain integers rather
    than general expressions.
    """

    name: str
    value: int


SelectLike = Union[Select]
