"""SQL front-end: lexer, AST and recursive-descent parser.

The parser is shared by the engine and by the SQL provenance module (which
mirrors the role Apache Calcite plays in the paper: one parser serving
multiple consumers).
"""

from flock.db.sql.lexer import Lexer, Token, TokenType, tokenize
from flock.db.sql.parser import Parser, parse_script, parse_statement

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse_statement",
    "parse_script",
]
