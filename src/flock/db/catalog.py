"""The database catalog: named tables and their schemas."""

from __future__ import annotations

import threading

from flock.db.schema import TableSchema
from flock.db.storage import Table
from flock.errors import CatalogError


class Catalog:
    """Thread-safe registry of tables and views."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, object] = {}  # name → view definition
        self._lock = threading.RLock()

    def create_table(
        self, schema: TableSchema, if_not_exists: bool = False
    ) -> Table:
        key = schema.name.lower()
        with self._lock:
            if key in self._views:
                raise CatalogError(
                    f"a view named {schema.name!r} already exists"
                )
            if key in self._tables:
                if if_not_exists:
                    return self._tables[key]
                raise CatalogError(f"table {schema.name!r} already exists")
            table = Table(schema)
            self._tables[key] = table
            return table

    # -- views --------------------------------------------------------
    def create_view(self, name: str, definition: object) -> None:
        key = name.lower()
        with self._lock:
            if key in self._tables:
                raise CatalogError(f"a table named {name!r} already exists")
            if key in self._views:
                raise CatalogError(f"view {name!r} already exists")
            self._views[key] = definition

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._views:
                if if_exists:
                    return False
                raise CatalogError(f"view {name!r} does not exist")
            del self._views[key]
            return True

    def has_view(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._views

    def view(self, name: str) -> object:
        with self._lock:
            try:
                return self._views[name.lower()]
            except KeyError:
                raise CatalogError(f"view {name!r} does not exist") from None

    def view_names(self) -> list[str]:
        with self._lock:
            return sorted(self._views)

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                if if_exists:
                    return False
                raise CatalogError(f"table {name!r} does not exist")
            del self._tables[key]
            return True

    def table(self, name: str) -> Table:
        key = name.lower()
        with self._lock:
            try:
                return self._tables[key]
            except KeyError:
                raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(t.name for t in self._tables.values())

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema
