"""The database catalog: named tables, views and secondary indexes."""

from __future__ import annotations

import threading

from flock.db.encoding import EncodingSettings
from flock.db.index import IndexDef
from flock.db.schema import TableSchema
from flock.db.storage import Table
from flock.errors import CatalogError


class Catalog:
    """Thread-safe registry of tables, views and secondary indexes."""

    def __init__(self, settings: EncodingSettings | None = None) -> None:
        # One encodings switch shared by every table in this catalog; the
        # owning Database mutates it on SET flock.encodings.
        self.settings = settings if settings is not None else EncodingSettings()
        self._tables: dict[str, Table] = {}
        self._views: dict[str, object] = {}  # name → view definition
        # CREATE INDEX namespace (database-wide, like table names). The
        # automatic primary-key indexes live on their Table only and are
        # not registered here.
        self._indexes: dict[str, IndexDef] = {}
        self._lock = threading.RLock()

    def create_table(
        self, schema: TableSchema, if_not_exists: bool = False
    ) -> Table:
        key = schema.name.lower()
        with self._lock:
            if key in self._views:
                raise CatalogError(
                    f"a view named {schema.name!r} already exists"
                )
            if key in self._tables:
                if if_not_exists:
                    return self._tables[key]
                raise CatalogError(f"table {schema.name!r} already exists")
            table = Table(schema, settings=self.settings)
            self._tables[key] = table
            return table

    # -- views --------------------------------------------------------
    def create_view(self, name: str, definition: object) -> None:
        key = name.lower()
        with self._lock:
            if key in self._tables:
                raise CatalogError(f"a table named {name!r} already exists")
            if key in self._views:
                raise CatalogError(f"view {name!r} already exists")
            self._views[key] = definition

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._views:
                if if_exists:
                    return False
                raise CatalogError(f"view {name!r} does not exist")
            del self._views[key]
            return True

    def has_view(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._views

    def view(self, name: str) -> object:
        with self._lock:
            try:
                return self._views[name.lower()]
            except KeyError:
                raise CatalogError(f"view {name!r} does not exist") from None

    def view_names(self) -> list[str]:
        with self._lock:
            return sorted(self._views)

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                if if_exists:
                    return False
                raise CatalogError(f"table {name!r} does not exist")
            del self._tables[key]
            # Indexes follow their table's lifetime.
            self._indexes = {
                k: d for k, d in self._indexes.items() if d.table != key
            }
            return True

    # -- secondary indexes ---------------------------------------------
    def create_index(
        self,
        name: str,
        table_name: str,
        column: str,
        if_not_exists: bool = False,
    ) -> IndexDef:
        """Register and attach a hash index over ``table_name(column)``.

        Validates the table and column exist (the Table raises CatalogError
        for unknown columns) and that the name is free database-wide.
        """
        key = name.lower()
        with self._lock:
            table = self.table(table_name)
            if key in self._indexes:
                if if_not_exists:
                    return self._indexes[key]
                raise CatalogError(f"index {name!r} already exists")
            defn = IndexDef(
                name=key, table=table.name.lower(), column=column
            )
            table.create_index(defn)
            self._indexes[key] = defn
            return defn

    def drop_index(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            defn = self._indexes.get(key)
            if defn is None:
                if if_exists:
                    return False
                raise CatalogError(f"index {name!r} does not exist")
            del self._indexes[key]
            if defn.table in self._tables:
                self._tables[defn.table].drop_index(key)
            return True

    def has_index(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._indexes

    def index_defs(self) -> list[IndexDef]:
        """Registered secondary-index definitions, sorted by name."""
        with self._lock:
            return [self._indexes[k] for k in sorted(self._indexes)]

    def table(self, name: str) -> Table:
        key = name.lower()
        with self._lock:
            try:
                return self._tables[key]
            except KeyError:
                raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(t.name for t in self._tables.values())

    def schema(self, name: str) -> TableSchema:
        return self.table(name).schema
