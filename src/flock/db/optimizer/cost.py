"""A coarse cost model over logical plans.

Cardinality estimation uses table statistics (row counts, distinct counts)
with textbook default selectivities. The estimates drive join-side selection
and the inference layer's physical operator selection ("physical operator
selection based on statistics", §4.1).
"""

from __future__ import annotations

from typing import Callable

from flock.db.expr import (
    BoundBinary,
    BoundColumn,
    BoundExpr,
    BoundInList,
    BoundLike,
)
from flock.db.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PredictNode,
    ProjectNode,
    ScanNode,
    SortNode,
)

DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.3
DEFAULT_LIKE_SELECTIVITY = 0.25
DEFAULT_SELECTIVITY = 0.5

#: Hash-index access-path thresholds: below INDEX_MIN_ROWS a full scan is a
#: handful of vector ops and the probe machinery is pure overhead; above it,
#: the index wins whenever the estimated matching fraction stays below
#: INDEX_MAX_SELECTIVITY (gathering that many rows beats rescanning).
INDEX_MIN_ROWS = 64
INDEX_MAX_SELECTIVITY = 0.2

#: Parallel execution defaults: below the floor the fan-out/merge overhead
#: (task dispatch, context copies, result concatenation) beats any thread
#: win, so plans stay serial. PREDICT pipelines amortize much earlier
#: because model scoring dominates per-row cost.
DEFAULT_MORSEL_ROWS = 8192
PARALLEL_MIN_ROWS = 16384
PREDICT_PARALLEL_MIN_ROWS = 2048


def choose_morsel_rows(
    rows: int,
    *,
    has_predict: bool,
    workers: int,
    morsel_rows: int | None = None,
    min_parallel_rows: int | None = None,
) -> int:
    """The morsel size to split *rows* with, or 0 to stay serial.

    This is the cost model's serial-vs-parallel decision, made on *actual*
    scan cardinality (the executor knows it before fanning out, so there is
    no reason to guess from statistics). The target morsel shrinks — never
    below a cache-friendly floor — until the batch spreads across every
    worker, so a batch marginally above the threshold still splits evenly
    instead of landing on one thread.
    """
    if workers <= 1 or rows <= 1:
        return 0
    floor = min_parallel_rows
    if floor is None:
        floor = PREDICT_PARALLEL_MIN_ROWS if has_predict else PARALLEL_MIN_ROWS
    if rows < max(floor, 2):
        return 0
    target = morsel_rows or DEFAULT_MORSEL_ROWS
    per_worker = -(-rows // workers)  # ceil division
    chunk_floor = 256 if has_predict else 1024
    target = min(target, max(chunk_floor, per_worker))
    if -(-rows // target) < 2:
        return 0
    return target


def index_lookup_selectivity(
    row_count: int, distinct_count: int, probe_count: int
) -> float:
    """Estimated matching fraction of a *probe_count*-key index lookup.

    With per-version distinct counts available the estimate is uniform
    (each key matches row_count/distinct rows); without them it falls back
    to the textbook equality selectivity per key.
    """
    if row_count <= 0:
        return 0.0
    if distinct_count > 0:
        per_key = 1.0 / distinct_count
    else:
        per_key = DEFAULT_EQUALITY_SELECTIVITY
    return min(1.0, max(probe_count, 0) * per_key)


def should_use_index(
    row_count: int, distinct_count: int, probe_count: int
) -> bool:
    """The index-lookup vs full-scan access-path decision."""
    if probe_count < 1 or row_count < INDEX_MIN_ROWS:
        return False
    selectivity = index_lookup_selectivity(
        row_count, distinct_count, probe_count
    )
    return selectivity <= INDEX_MAX_SELECTIVITY


def predicate_selectivity(
    predicate: BoundExpr,
    distinct_of: Callable[[int], int] | None = None,
) -> float:
    """Estimated fraction of rows satisfying *predicate*.

    ``distinct_of`` (column index → distinct count, 0 when unknown) refines
    equality and IN selectivities to ``1/distinct`` — the uniform estimate
    column statistics support; without it the textbook defaults apply.
    """
    if isinstance(predicate, BoundBinary):
        if predicate.op == "AND":
            return predicate_selectivity(
                predicate.left, distinct_of
            ) * predicate_selectivity(predicate.right, distinct_of)
        if predicate.op == "OR":
            left = predicate_selectivity(predicate.left, distinct_of)
            right = predicate_selectivity(predicate.right, distinct_of)
            return min(1.0, left + right - left * right)
        if predicate.op == "=":
            return _equality_selectivity(predicate, distinct_of)
        if predicate.op in ("<", "<=", ">", ">="):
            return DEFAULT_RANGE_SELECTIVITY
        if predicate.op == "<>":
            return 1.0 - _equality_selectivity(predicate, distinct_of)
    if isinstance(predicate, BoundInList):
        per_key = _equality_selectivity(predicate, distinct_of)
        return min(1.0, per_key * max(len(predicate.items), 1))
    if isinstance(predicate, BoundLike):
        return DEFAULT_LIKE_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _equality_selectivity(
    predicate: BoundExpr, distinct_of: Callable[[int], int] | None
) -> float:
    """``1/distinct`` for a bare-column comparison when stats are known."""
    if distinct_of is not None:
        for side in (
            getattr(predicate, "left", None),
            getattr(predicate, "right", None),
            getattr(predicate, "operand", None),
        ):
            if isinstance(side, BoundColumn):
                distinct = distinct_of(side.index)
                if distinct and distinct > 0:
                    return min(1.0, 1.0 / distinct)
    return DEFAULT_EQUALITY_SELECTIVITY


def estimate_rows(
    plan: PlanNode,
    table_rows: Callable[[str], int],
    table_stats: Callable[[str], object] | None = None,
) -> float:
    """Estimated output cardinality of *plan*.

    ``table_stats`` (table name → ``TableStats`` or None) lets filters
    directly over scans use per-column distinct counts for equality
    selectivity instead of the 10% default.
    """
    if isinstance(plan, ScanNode):
        return float(table_rows(plan.table_name))
    if isinstance(plan, FilterNode):
        return estimate_rows(
            plan.child, table_rows, table_stats
        ) * predicate_selectivity(
            plan.predicate, _scan_distinct_of(plan.child, table_stats)
        )
    if isinstance(plan, (ProjectNode, SortNode, PredictNode)):
        return estimate_rows(plan.children()[0], table_rows, table_stats)
    if isinstance(plan, LimitNode):
        child = estimate_rows(plan.child, table_rows, table_stats)
        return child if plan.limit is None else min(child, float(plan.limit))
    if isinstance(plan, DistinctNode):
        return estimate_rows(plan.child, table_rows, table_stats) * 0.5
    if isinstance(plan, AggregateNode):
        child = estimate_rows(plan.child, table_rows, table_stats)
        if not plan.group_exprs:
            return 1.0
        return max(1.0, child * 0.1)
    from flock.db.plan import SetOpNode

    if isinstance(plan, SetOpNode):
        left = estimate_rows(plan.left, table_rows, table_stats)
        right = estimate_rows(plan.right, table_rows, table_stats)
        if plan.op == "UNION":
            return left + right
        if plan.op == "EXCEPT":
            return left
        return min(left, right)  # INTERSECT
    from flock.db.plan import WindowNode

    if isinstance(plan, WindowNode):
        return estimate_rows(plan.child, table_rows, table_stats)
    if isinstance(plan, JoinNode):
        left = estimate_rows(plan.left, table_rows, table_stats)
        right = estimate_rows(plan.right, table_rows, table_stats)
        if plan.join_type in ("SEMI", "ANTI"):
            # Each left row survives or not; a coin-flip default.
            return max(1.0, left * 0.5)
        if plan.join_type == "CROSS" and plan.condition is None:
            return left * right
        if plan.condition is None:
            return left * right
        return max(
            1.0, left * right * predicate_selectivity(plan.condition)
        )
    return 1000.0


def _scan_distinct_of(
    child: PlanNode, table_stats: Callable[[str], object] | None
) -> Callable[[int], int] | None:
    """Column-index → distinct-count mapping for a filter over a scan."""
    if table_stats is None or not isinstance(child, ScanNode):
        return None
    stats = table_stats(child.table_name)
    if stats is None:
        return None
    fields = child.fields

    def distinct_of(index: int) -> int:
        if 0 <= index < len(fields):
            column_stats = stats.column(fields[index].name)
            if column_stats is not None:
                return column_stats.distinct_count
        return 0

    return distinct_of


class CostModel:
    """Row-count driven cost estimates bound to a table-size source."""

    def __init__(
        self,
        table_rows: Callable[[str], int],
        table_stats: Callable[[str], object] | None = None,
    ):
        self._table_rows = table_rows
        self._table_stats = table_stats

    def rows(self, plan: PlanNode) -> float:
        return estimate_rows(plan, self._table_rows, self._table_stats)

    def cost(self, plan: PlanNode) -> float:
        """A rough total-work figure: sum of intermediate cardinalities."""
        total = self.rows(plan)
        for child in plan.children():
            total += self.cost(child)
        return total

    def parallel_morsel_rows(
        self,
        plan: PlanNode,
        *,
        workers: int,
        morsel_rows: int | None = None,
        min_parallel_rows: int | None = None,
    ) -> int:
        """Plan-time advisory form of :func:`choose_morsel_rows`.

        Uses estimated source cardinality; the executor re-decides with the
        actual snapshot size before fanning out, so this is for EXPLAIN-time
        introspection and tests rather than the execution hot path.
        """
        source_rows = 0.0
        has_predict = False
        for node in plan.walk():
            if isinstance(node, ScanNode):
                source_rows = max(
                    source_rows, float(self._table_rows(node.table_name))
                )
            elif isinstance(node, PredictNode):
                has_predict = True
        return choose_morsel_rows(
            int(source_rows),
            has_predict=has_predict,
            workers=workers,
            morsel_rows=morsel_rows,
            min_parallel_rows=min_parallel_rows,
        )
