"""Logical plan optimizer: rule passes + a simple cost model."""

from flock.db.optimizer.cost import CostModel, estimate_rows
from flock.db.optimizer.rules import Optimizer, OptimizerContext

__all__ = ["Optimizer", "OptimizerContext", "CostModel", "estimate_rows"]
