"""Rule-based plan rewrites.

Passes, in order:

1. constant folding (column-free subexpressions become literals);
2. join formation (filters over cross joins become join conditions);
3. predicate pushdown (filters move through projections, Predict operators
   and join sides toward scans — the relational half of the paper's
   "predicate push-up/down between SQL queries and ML models");
4. join-side selection (the smaller estimated side builds the hash table);
5. projection pruning (scans read only the columns anything above needs —
   combined with the inference layer's sparsity analysis this realizes
   "automatic pruning of unused input feature-columns");
6. extra rules registered by other layers (flock.inference contributes model
   pruning/compression/inlining and physical strategy selection).

Rules never mutate shared expression state: expressions are deep-copied when
they move across a node boundary.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Protocol

from flock.db.binder import fold_constants
from flock.db.expr import (
    BoundBinary,
    BoundColumn,
    BoundExpr,
    BoundInList,
    BoundLiteral,
)
from flock.db.optimizer.cost import CostModel, should_use_index
from flock.db.plan import (
    AggregateNode,
    DistinctNode,
    Field,
    FilterNode,
    IndexLookupNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PredictNode,
    ProjectNode,
    ScanNode,
    SetOpNode,
    SortNode,
)
from flock.db.types import DataType

#: Column dtypes zone maps can summarize (totally ordered, fixed width).
_ZONE_DTYPES = (DataType.INTEGER, DataType.FLOAT, DataType.DATE)


class OptimizerContext(Protocol):
    """Services optimizer rules may use.

    The access-path pass additionally probes (via ``getattr``, so minimal
    contexts in tests keep working) for:

    - ``indexes_enabled() -> bool``
    - ``index_for(table_name, column_position) -> str | None``
    - ``table_stats(table_name) -> TableStats | None``
    """

    def table_row_count(self, table_name: str) -> int: ...


ExtraRule = Callable[[PlanNode, "OptimizerContext"], PlanNode]


@dataclass
class Optimizer:
    """Applies rewrite passes to a logical plan."""

    enable_predicate_pushdown: bool = True
    enable_projection_pruning: bool = True
    enable_join_rules: bool = True
    extra_rules: list[ExtraRule] = field(default_factory=list)

    def optimize(self, plan: PlanNode, context: OptimizerContext) -> PlanNode:
        plan = _fold_all(plan)
        if self.enable_join_rules:
            plan = _form_joins(plan)
        if self.enable_predicate_pushdown:
            plan = _pushdown(plan)
        if self.enable_join_rules:
            plan = _choose_join_sides(
                plan,
                CostModel(
                    context.table_row_count,
                    getattr(context, "table_stats", None),
                ),
            )
        # Extra rules (the inference cross-optimizer) run before projection
        # pruning so that model-driven input pruning can shrink the scans.
        for rule in self.extra_rules:
            plan = rule(plan, context)
        if self.enable_projection_pruning:
            plan, _ = _prune(plan, set(range(len(plan.fields))))
        # Access-path selection runs last: _prune rebuilds ScanNodes, so any
        # earlier IndexLookupNode/zone annotation would be thrown away.
        plan = _select_access_paths(plan, context)
        return plan


def apply_pushdown(plan: PlanNode) -> PlanNode:
    """Public entry point for re-running predicate pushdown.

    The inference cross-optimizer calls this after UDF inlining turns a
    PredictNode into a projection, so predicates over the (now inline)
    prediction expression can keep moving toward the scans.
    """
    return _pushdown(plan)


# ----------------------------------------------------------------------
# Pass 1: constant folding
# ----------------------------------------------------------------------
def _fold_all(plan: PlanNode) -> PlanNode:
    for node in plan.walk():
        if isinstance(node, FilterNode):
            node.predicate = fold_constants(node.predicate)
        elif isinstance(node, ProjectNode):
            node.exprs = [fold_constants(e) for e in node.exprs]
        elif isinstance(node, JoinNode) and node.condition is not None:
            node.condition = fold_constants(node.condition)
        elif isinstance(node, SortNode):
            node.keys = [(fold_constants(e), asc) for e, asc in node.keys]
        elif isinstance(node, AggregateNode):
            node.group_exprs = [fold_constants(e) for e in node.group_exprs]
            for spec in node.aggregates:
                if spec.arg is not None:
                    spec.arg = fold_constants(spec.arg)
    return _drop_trivial_filters(plan)


def _drop_trivial_filters(plan: PlanNode) -> PlanNode:
    plan = _rewrite_children(plan, _drop_trivial_filters)
    if isinstance(plan, FilterNode) and isinstance(plan.predicate, BoundLiteral):
        if plan.predicate.value is True:
            return plan.child
    return plan


def _rewrite_children(
    plan: PlanNode, fn: Callable[[PlanNode], PlanNode]
) -> PlanNode:
    if isinstance(plan, (JoinNode, SetOpNode)):
        plan.left = fn(plan.left)
        plan.right = fn(plan.right)
    elif plan.children():
        child = fn(plan.children()[0])
        plan.child = child  # type: ignore[attr-defined]
    return plan


# ----------------------------------------------------------------------
# Pass 2: join formation (Filter over CROSS join → INNER join)
# ----------------------------------------------------------------------
def _form_joins(plan: PlanNode) -> PlanNode:
    plan = _rewrite_children(plan, _form_joins)
    if not isinstance(plan, FilterNode):
        return plan
    child = plan.child
    if not isinstance(child, JoinNode) or child.join_type not in ("CROSS", "INNER"):
        return plan
    left_width = len(child.left.fields)
    total = len(child.fields)
    moved: list[BoundExpr] = []
    kept: list[BoundExpr] = []
    for conjunct in _conjuncts(plan.predicate):
        refs = conjunct.referenced_columns()
        spans_both = refs and min(refs) < left_width and max(refs) >= left_width
        if spans_both and max(refs) < total:
            moved.append(conjunct)
        else:
            kept.append(conjunct)
    if not moved:
        return plan
    all_conjuncts = ([child.condition] if child.condition is not None else []) + moved
    child.condition = _conjoin(all_conjuncts)
    child.join_type = "INNER"
    if kept:
        plan.predicate = _conjoin(kept)
        return plan
    return child


def _conjuncts(expr: BoundExpr) -> list[BoundExpr]:
    if isinstance(expr, BoundBinary) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(conjuncts: list[BoundExpr]) -> BoundExpr | None:
    result: BoundExpr | None = None
    for conjunct in conjuncts:
        result = (
            conjunct
            if result is None
            else BoundBinary("AND", result, conjunct, DataType.BOOLEAN)
        )
    return result


# ----------------------------------------------------------------------
# Pass 3: predicate pushdown
# ----------------------------------------------------------------------
def _pushdown(plan: PlanNode) -> PlanNode:
    plan = _rewrite_children(plan, _pushdown)
    if not isinstance(plan, FilterNode):
        return plan

    child = plan.child
    conjuncts = _conjuncts(plan.predicate)

    if isinstance(child, FilterNode):
        merged = _conjoin(conjuncts + _conjuncts(child.predicate))
        assert merged is not None
        return _pushdown(FilterNode(child.child, merged))

    if isinstance(child, ProjectNode):
        pushable: list[BoundExpr] = []
        kept: list[BoundExpr] = []
        for conjunct in conjuncts:
            substituted = _substitute_through_project(conjunct, child)
            if substituted is not None:
                pushable.append(substituted)
            else:
                kept.append(conjunct)
        if pushable:
            inner = _conjoin(pushable)
            assert inner is not None
            child.child = _pushdown(FilterNode(child.child, inner))
            if kept:
                remaining = _conjoin(kept)
                assert remaining is not None
                return FilterNode(child, remaining)
            return child
        return plan

    if isinstance(child, PredictNode):
        child_width = len(child.child.fields)
        pushable = [
            c for c in conjuncts if c.referenced_columns()
            and max(c.referenced_columns()) < child_width
        ]
        kept = [c for c in conjuncts if c not in pushable]
        if pushable:
            inner = _conjoin(pushable)
            assert inner is not None
            child.child = _pushdown(FilterNode(child.child, inner))
            if kept:
                remaining = _conjoin(kept)
                assert remaining is not None
                return FilterNode(child, remaining)
            return child
        return plan

    if isinstance(child, JoinNode):
        left_width = len(child.left.fields)
        right_mapping = {
            left_width + i: i for i in range(len(child.right.fields))
        }
        to_left: list[BoundExpr] = []
        to_right: list[BoundExpr] = []
        kept = []
        for conjunct in conjuncts:
            refs = conjunct.referenced_columns()
            if refs and max(refs) < left_width:
                to_left.append(copy.deepcopy(conjunct))
            elif refs and min(refs) >= left_width and child.join_type != "LEFT":
                to_right.append(conjunct.rewrite_columns(right_mapping))
            else:
                kept.append(conjunct)
        if to_left:
            inner = _conjoin(to_left)
            assert inner is not None
            child.left = _pushdown(FilterNode(child.left, inner))
        if to_right:
            inner = _conjoin(to_right)
            assert inner is not None
            child.right = _pushdown(FilterNode(child.right, inner))
        if kept:
            remaining = _conjoin(kept)
            assert remaining is not None
            return FilterNode(child, remaining)
        return child

    if isinstance(child, (SortNode, LimitNode)):
        # Filters commute with sort but NOT with limit.
        if isinstance(child, SortNode):
            child.child = _pushdown(FilterNode(child.child, plan.predicate))
            return child
        return plan

    return plan


def _substitute_through_project(
    predicate: BoundExpr, project: ProjectNode
) -> BoundExpr | None:
    """Rewrite a predicate over project outputs into child-space, or None.

    Substitution duplicates the projected expression at each reference site,
    and the projection still computes it for surviving rows — so pushing a
    *computed* expression through would evaluate it twice per row. Only
    plain column references and literals move; everything else filters
    above the projection (which already evaluates the expression exactly
    once).
    """
    refs = list(predicate.referenced_columns())
    for r in refs:
        if not isinstance(project.exprs[r], (BoundColumn, BoundLiteral)):
            return None
    clone = copy.deepcopy(predicate)
    return _replace_columns(
        clone, {r: copy.deepcopy(project.exprs[r]) for r in refs}
    )


def _replace_columns(
    expr: BoundExpr, mapping: dict[int, BoundExpr]
) -> BoundExpr:
    if isinstance(expr, BoundColumn):
        return mapping[expr.index]
    for attr in ("operand", "left", "right"):
        if hasattr(expr, attr):
            setattr(expr, attr, _replace_columns(getattr(expr, attr), mapping))
    if hasattr(expr, "args"):
        expr.args = [_replace_columns(a, mapping) for a in expr.args]
    if hasattr(expr, "branches"):
        expr.branches = [
            (_replace_columns(c, mapping), _replace_columns(v, mapping))
            for c, v in expr.branches
        ]
        if expr.default is not None:
            expr.default = _replace_columns(expr.default, mapping)
    return expr


# ----------------------------------------------------------------------
# Pass 4: join-side selection (build hash table on the smaller side)
# ----------------------------------------------------------------------
def _choose_join_sides(plan: PlanNode, cost: CostModel) -> PlanNode:
    if isinstance(plan, SetOpNode):
        plan.left = _choose_join_sides(plan.left, cost)
        plan.right = _choose_join_sides(plan.right, cost)
    elif isinstance(plan, JoinNode):
        plan.left = _choose_join_sides(plan.left, cost)
        plan.right = _choose_join_sides(plan.right, cost)
        if plan.join_type == "INNER" and plan.condition is not None:
            left_rows = cost.rows(plan.left)
            right_rows = cost.rows(plan.right)
            if right_rows > left_rows * 2:
                plan = _swap_join(plan)
    elif plan.children():
        child = _choose_join_sides(plan.children()[0], cost)
        plan.child = child  # type: ignore[attr-defined]
    return plan


def _swap_join(join: JoinNode) -> JoinNode:
    left_width = len(join.left.fields)
    right_width = len(join.right.fields)
    mapping = {i: right_width + i for i in range(left_width)}
    mapping.update({left_width + i: i for i in range(right_width)})
    condition = (
        join.condition.rewrite_columns(mapping)
        if join.condition is not None
        else None
    )
    swapped = JoinNode(join.right, join.left, join.join_type, condition)
    # Restore the original output column order with a projection.
    exprs = []
    names = []
    for i, f in enumerate(join.fields):
        exprs.append(BoundColumn(mapping[i], f.dtype, f.name))
        names.append(f.name)
    return ProjectNode(swapped, exprs, names)  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Pass 5: projection pruning
# ----------------------------------------------------------------------
def _prune(
    plan: PlanNode, required: set[int]
) -> tuple[PlanNode, dict[int, int]]:
    """Prune unused columns bottom-up.

    Returns the new plan and a mapping from old output positions to new ones
    (defined at least for every position in *required*).
    """
    if isinstance(plan, ScanNode):
        keep = sorted(required) if required else [0] if plan.fields else []
        if not keep and plan.fields:
            keep = [0]  # keep one column so row counts survive
        mapping = {old: new for new, old in enumerate(keep)}
        node = ScanNode(
            plan.table_name,
            [plan.fields[i] for i in keep],
            [plan.column_indexes[i] for i in keep],
            alias=plan.alias,
            via_view=plan.via_view,
        )
        return node, mapping

    if isinstance(plan, FilterNode):
        child_required = set(required) | plan.predicate.referenced_columns()
        child, mapping = _prune(plan.child, child_required)
        predicate = plan.predicate.rewrite_columns(mapping)
        return FilterNode(child, predicate), mapping

    if isinstance(plan, ProjectNode):
        keep = sorted(required) if required else ([0] if plan.exprs else [])
        child_required: set[int] = set()
        for i in keep:
            child_required |= plan.exprs[i].referenced_columns()
        child, child_mapping = _prune(plan.child, child_required)
        exprs = [plan.exprs[i].rewrite_columns(child_mapping) for i in keep]
        names = [plan.fields[i].name for i in keep]
        mapping = {old: new for new, old in enumerate(keep)}
        return ProjectNode(child, exprs, names), mapping

    if isinstance(plan, PredictNode):
        child_width = len(plan.child.fields)
        needed_outputs = [r for r in required if r >= child_width]
        if not needed_outputs:
            # Dead inference: nothing above reads the predictions.
            return _prune(plan.child, {r for r in required if r < child_width})
        child_required = {r for r in required if r < child_width} | set(
            plan.input_indexes
        )
        child, child_mapping = _prune(plan.child, child_required)
        node = PredictNode(
            child,
            plan.model_name,
            [child_mapping[i] for i in plan.input_indexes],
            plan.output_fields,
            strategy=plan.strategy,
        )
        node.compiled = plan.compiled
        mapping = dict(child_mapping)
        new_child_width = len(child.fields)
        for k in range(len(plan.output_fields)):
            mapping[child_width + k] = new_child_width + k
        return node, mapping

    if isinstance(plan, JoinNode) and plan.join_type in ("SEMI", "ANTI"):
        # Output is the left schema only; the condition still sees
        # left-then-right positions, so the right side keeps exactly the
        # columns the condition probes.
        left_width = len(plan.left.fields)
        refs = (
            plan.condition.referenced_columns()
            if plan.condition is not None
            else set()
        )
        left_required = set(required) | {r for r in refs if r < left_width}
        right_required = {r - left_width for r in refs if r >= left_width}
        left, left_mapping = _prune(plan.left, left_required)
        right, right_mapping = _prune(plan.right, right_required)
        new_left_width = len(left.fields)
        cond_mapping = dict(left_mapping)
        for old, new in right_mapping.items():
            cond_mapping[left_width + old] = new_left_width + new
        condition = (
            plan.condition.rewrite_columns(cond_mapping)
            if plan.condition is not None
            else None
        )
        node = JoinNode(left, right, plan.join_type, condition)
        return node, left_mapping

    if isinstance(plan, JoinNode):
        left_width = len(plan.left.fields)
        refs = (
            plan.condition.referenced_columns()
            if plan.condition is not None
            else set()
        )
        all_needed = set(required) | refs
        left_required = {r for r in all_needed if r < left_width}
        right_required = {r - left_width for r in all_needed if r >= left_width}
        left, left_mapping = _prune(plan.left, left_required)
        right, right_mapping = _prune(plan.right, right_required)
        new_left_width = len(left.fields)
        mapping = {old: new for old, new in left_mapping.items()}
        for old, new in right_mapping.items():
            mapping[left_width + old] = new_left_width + new
        condition = (
            plan.condition.rewrite_columns(mapping)
            if plan.condition is not None
            else None
        )
        return JoinNode(left, right, plan.join_type, condition), mapping

    if isinstance(plan, AggregateNode):
        group_count = len(plan.group_exprs)
        keep_aggs = [
            i
            for i in range(len(plan.aggregates))
            if (group_count + i) in required
        ] or ([0] if plan.aggregates else [])
        child_required: set[int] = set()
        for e in plan.group_exprs:
            child_required |= e.referenced_columns()
        for i in keep_aggs:
            arg = plan.aggregates[i].arg
            if arg is not None:
                child_required |= arg.referenced_columns()
        child, child_mapping = _prune(plan.child, child_required)
        group_exprs = [e.rewrite_columns(child_mapping) for e in plan.group_exprs]
        specs = []
        for i in keep_aggs:
            spec = copy.deepcopy(plan.aggregates[i])
            if spec.arg is not None:
                spec.arg = spec.arg.rewrite_columns(child_mapping)
            specs.append(spec)
        group_names = [f.name for f in plan.fields[:group_count]]
        node = AggregateNode(child, group_exprs, group_names, specs)
        mapping = {i: i for i in range(group_count)}
        for new, old in enumerate(keep_aggs):
            mapping[group_count + old] = group_count + new
        return node, mapping

    if isinstance(plan, SortNode):
        child_required = set(required)
        for key, _ in plan.keys:
            child_required |= key.referenced_columns()
        child, mapping = _prune(plan.child, child_required)
        keys = [(k.rewrite_columns(mapping), asc) for k, asc in plan.keys]
        return SortNode(child, keys), mapping

    if isinstance(plan, LimitNode):
        child, mapping = _prune(plan.child, required)
        return LimitNode(child, plan.limit, plan.offset), mapping

    if isinstance(plan, DistinctNode):
        # DISTINCT semantics depend on every column: require them all.
        child, mapping = _prune(
            plan.child, set(range(len(plan.child.fields)))
        )
        return DistinctNode(child), mapping

    if isinstance(plan, SetOpNode):
        # Set semantics compare whole rows: every column stays, both sides.
        left, _ = _prune(plan.left, set(range(len(plan.left.fields))))
        right, _ = _prune(plan.right, set(range(len(plan.right.fields))))
        node = SetOpNode(left, right, plan.op, plan.all)
        return node, {i: i for i in range(len(node.fields))}

    return plan, {i: i for i in range(len(plan.fields))}


# ----------------------------------------------------------------------
# Pass 7: access-path selection (hash index lookup / zone-map pruning)
# ----------------------------------------------------------------------
def _select_access_paths(
    plan: PlanNode, context: "OptimizerContext"
) -> PlanNode:
    """Turn Filter-over-Scan into an index lookup or a zone-pruned scan.

    Both rewrites keep the original filter in place, so they only ever have
    to produce a *superset* of the matching rows in base-table order —
    results stay bit-identical to the plain scan path, and any runtime
    fallback (stale index, staged snapshot) is silently correct.
    """
    enabled = getattr(context, "indexes_enabled", None)
    if enabled is None or not enabled():
        return plan
    return _access_paths(plan, context)


def _access_paths(plan: PlanNode, context: "OptimizerContext") -> PlanNode:
    if isinstance(plan, (JoinNode, SetOpNode)):
        plan.left = _access_paths(plan.left, context)
        plan.right = _access_paths(plan.right, context)
        return plan
    if plan.children():
        child = _access_paths(plan.children()[0], context)
        plan.child = child  # type: ignore[attr-defined]
    if not isinstance(plan, FilterNode):
        return plan
    scan = plan.child
    if type(scan) is not ScanNode:
        return plan
    conjuncts = _conjuncts(plan.predicate)

    chosen = _choose_index(scan, conjuncts, context)
    if chosen is not None:
        index_name, key_column, values = chosen
        plan.child = IndexLookupNode(
            scan.table_name,
            scan.fields,
            scan.column_indexes,
            alias=scan.alias,
            via_view=scan.via_view,
            index_name=index_name,
            key_column=key_column,
            key_values=values,
        )
        return plan

    zone_predicates = []
    for conjunct in conjuncts:
        candidate = _zone_candidate(conjunct)
        if candidate is None:
            continue
        local, op, value = candidate
        if scan.fields[local].dtype not in _ZONE_DTYPES:
            continue
        zone_predicates.append((scan.column_indexes[local], op, value))
    if zone_predicates:
        scan.zone_predicates = zone_predicates
    return plan


def _choose_index(
    scan: ScanNode, conjuncts: list[BoundExpr], context: "OptimizerContext"
) -> tuple[str, str, list] | None:
    """The cheapest applicable (index_name, key_column, probe_values)."""
    index_for = getattr(context, "index_for", None)
    if index_for is None:
        return None
    row_count = context.table_row_count(scan.table_name)
    stats_fn = getattr(context, "table_stats", None)
    stats = stats_fn(scan.table_name) if stats_fn is not None else None
    best: tuple[int, str, str, list] | None = None
    for conjunct in conjuncts:
        candidate = _equality_candidate(conjunct)
        if candidate is None:
            continue
        local, values = candidate
        name = index_for(scan.table_name, scan.column_indexes[local])
        if name is None:
            continue
        column = scan.fields[local].name
        distinct = 0
        if stats is not None:
            column_stats = stats.column(column)
            if column_stats is not None:
                distinct = column_stats.distinct_count
        if not should_use_index(row_count, distinct, len(values)):
            continue
        if best is None or len(values) < best[0]:
            best = (len(values), name, column, values)
    if best is None:
        return None
    return best[1], best[2], best[3]


def _equality_candidate(conjunct: BoundExpr) -> tuple[int, list] | None:
    """(local_column, probe_values) for ``col = lit`` / ``col IN (lits)``."""
    if isinstance(conjunct, BoundBinary) and conjunct.op == "=":
        left, right = conjunct.left, conjunct.right
        if isinstance(left, BoundColumn) and isinstance(right, BoundLiteral):
            return left.index, [right.value]
        if isinstance(right, BoundColumn) and isinstance(left, BoundLiteral):
            return right.index, [left.value]
        return None
    if (
        isinstance(conjunct, BoundInList)
        and not conjunct.negated
        and isinstance(conjunct.operand, BoundColumn)
    ):
        return conjunct.operand.index, list(conjunct.items)
    return None


_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def _zone_candidate(conjunct: BoundExpr) -> tuple[int, str, object] | None:
    """(local_column, op, physical_value) for a zone-prunable comparison."""
    if isinstance(conjunct, BoundBinary) and conjunct.op in _FLIPPED_OPS:
        left, right = conjunct.left, conjunct.right
        if isinstance(left, BoundColumn) and isinstance(right, BoundLiteral):
            return left.index, conjunct.op, right.value
        if isinstance(right, BoundColumn) and isinstance(left, BoundLiteral):
            return right.index, _FLIPPED_OPS[conjunct.op], left.value
        return None
    if (
        isinstance(conjunct, BoundInList)
        and not conjunct.negated
        and isinstance(conjunct.operand, BoundColumn)
    ):
        return conjunct.operand.index, "in", list(conjunct.items)
    return None
