"""Built-in scalar and aggregate functions.

Scalar functions are registered in :data:`SCALAR_FUNCTIONS` with a return
type rule and a vectorized implementation over
:class:`~flock.db.vector.ColumnVector` arguments. Aggregates are described by
:data:`AGGREGATE_FUNCTIONS`; the executor computes them per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from flock.db.types import DataType, date_to_days
from flock.db.vector import ColumnVector
from flock.errors import BindError, ExecutionError

# ----------------------------------------------------------------------
# Scalar functions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarFunction:
    """A scalar function: return-type rule + vectorized implementation."""

    name: str
    arity: tuple[int, int]  # (min_args, max_args); max=-1 means unbounded
    return_type: Callable[[list[DataType]], DataType]
    impl: Callable[[list[ColumnVector], int], ColumnVector]

    def check_arity(self, count: int) -> None:
        low, high = self.arity
        if count < low or (high != -1 and count > high):
            raise BindError(
                f"function {self.name} expects between {low} and "
                f"{'unbounded' if high == -1 else high} arguments, got {count}"
            )


def _numeric_passthrough(arg_types: list[DataType]) -> DataType:
    if not arg_types[0].is_numeric:
        raise BindError(f"expected a numeric argument, got {arg_types[0]}")
    return arg_types[0]


def _always(dtype: DataType) -> Callable[[list[DataType]], DataType]:
    return lambda arg_types: dtype


def _unary_numpy(fn: Callable[[np.ndarray], np.ndarray], dtype: DataType | None):
    def impl(args: list[ColumnVector], length: int) -> ColumnVector:
        inner = args[0]
        out_dtype = dtype or inner.dtype
        values = fn(inner.values.astype(np.float64))
        if out_dtype is DataType.INTEGER:
            values = values.astype(np.int64)
        return ColumnVector(out_dtype, values, inner.nulls.copy())

    return impl


def _abs_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    inner = args[0]
    return ColumnVector(inner.dtype, np.abs(inner.values), inner.nulls.copy())


def _round_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    inner = args[0]
    digits = 0
    if len(args) > 1:
        digits = int(args[1].values[0]) if len(args[1]) else 0
    values = np.round(inner.values.astype(np.float64), digits)
    return ColumnVector(DataType.FLOAT, values, inner.nulls.copy())


def _power_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    base, exponent = args
    values = np.power(
        base.values.astype(np.float64), exponent.values.astype(np.float64)
    )
    return ColumnVector(DataType.FLOAT, values, base.nulls | exponent.nulls)


def _text_map(fn: Callable[[str], Any], out_dtype: DataType):
    def impl(args: list[ColumnVector], length: int) -> ColumnVector:
        inner = args[0]
        out = np.empty(len(inner), dtype=out_dtype.numpy_dtype)
        if out_dtype.numpy_dtype != np.dtype(object):
            out[:] = 0
        for i, v in enumerate(inner.values):
            if not inner.nulls[i]:
                out[i] = fn(v)
        return ColumnVector(out_dtype, out, inner.nulls.copy())

    return impl


def _substr_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    text, start = args[0], args[1]
    out = np.empty(len(text), dtype=object)
    nulls = text.nulls.copy()
    for i in range(len(text)):
        if nulls[i]:
            continue
        begin = max(int(start.values[i]) - 1, 0)  # SQL SUBSTR is 1-based
        if len(args) > 2:
            out[i] = text.values[i][begin : begin + int(args[2].values[i])]
        else:
            out[i] = text.values[i][begin:]
    return ColumnVector(DataType.TEXT, out, nulls)


def _coalesce_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    first = args[0]
    values = first.values.copy()
    nulls = first.nulls.copy()
    for candidate in args[1:]:
        fill = nulls & ~candidate.nulls
        values[fill] = candidate.values[fill]
        nulls[fill] = False
    return ColumnVector(first.dtype, values, nulls)


def _extract_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    unit_vec, date_vec = args
    unit = unit_vec.values[0] if len(unit_vec) else "YEAR"
    days = date_vec.values.astype("datetime64[D]")
    if unit == "YEAR":
        out = days.astype("datetime64[Y]").astype(np.int64) + 1970
    elif unit == "MONTH":
        months = days.astype("datetime64[M]").astype(np.int64)
        out = months % 12 + 1
    elif unit == "DAY":
        month_start = days.astype("datetime64[M]").astype("datetime64[D]")
        out = (days - month_start).astype(np.int64) + 1
    else:
        raise ExecutionError(f"EXTRACT does not support unit {unit!r}")
    return ColumnVector(DataType.INTEGER, out, date_vec.nulls.copy())


def _date_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    inner = args[0]
    out = np.zeros(len(inner), dtype=np.int64)
    for i, v in enumerate(inner.values):
        if not inner.nulls[i]:
            out[i] = date_to_days(v)
    return ColumnVector(DataType.DATE, out, inner.nulls.copy())


_INTERVAL_DAYS = {"DAY": 1, "WEEK": 7, "MONTH": 30, "YEAR": 365}


def interval_days(amount: str, unit: str) -> int:
    """Days represented by ``INTERVAL 'amount' unit``.

    MONTH and YEAR use 30/365-day approximations; documented in DESIGN.md.
    """
    try:
        scale = _INTERVAL_DAYS[unit.upper()]
    except KeyError:
        raise BindError(f"INTERVAL does not support unit {unit!r}") from None
    return int(amount) * scale


def _interval_impl(args: list[ColumnVector], length: int) -> ColumnVector:
    amount, unit = args[0].values[0], args[1].values[0]
    return ColumnVector.constant(
        DataType.INTEGER, interval_days(amount, unit), length
    )


SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {}


def _register(
    name: str,
    arity: tuple[int, int],
    return_type: Callable[[list[DataType]], DataType],
    impl: Callable[[list[ColumnVector], int], ColumnVector],
) -> None:
    SCALAR_FUNCTIONS[name] = ScalarFunction(name, arity, return_type, impl)


_register("ABS", (1, 1), _numeric_passthrough, _abs_impl)
_register("ROUND", (1, 2), _always(DataType.FLOAT), _round_impl)
_register(
    "FLOOR", (1, 1), _always(DataType.INTEGER), _unary_numpy(np.floor, DataType.INTEGER)
)
_register(
    "CEIL", (1, 1), _always(DataType.INTEGER), _unary_numpy(np.ceil, DataType.INTEGER)
)
_register(
    "SQRT", (1, 1), _always(DataType.FLOAT), _unary_numpy(np.sqrt, DataType.FLOAT)
)
_register("EXP", (1, 1), _always(DataType.FLOAT), _unary_numpy(np.exp, DataType.FLOAT))
_register("LN", (1, 1), _always(DataType.FLOAT), _unary_numpy(np.log, DataType.FLOAT))
_register("POWER", (2, 2), _always(DataType.FLOAT), _power_impl)
_register(
    "UPPER", (1, 1), _always(DataType.TEXT), _text_map(lambda s: s.upper(), DataType.TEXT)
)
_register(
    "LOWER", (1, 1), _always(DataType.TEXT), _text_map(lambda s: s.lower(), DataType.TEXT)
)
_register(
    "TRIM", (1, 1), _always(DataType.TEXT), _text_map(lambda s: s.strip(), DataType.TEXT)
)
_register(
    "LENGTH", (1, 1), _always(DataType.INTEGER), _text_map(len, DataType.INTEGER)
)
_register("SUBSTR", (2, 3), _always(DataType.TEXT), _substr_impl)
_register("SUBSTRING", (2, 3), _always(DataType.TEXT), _substr_impl)
_register(
    "COALESCE", (1, -1), lambda arg_types: arg_types[0], _coalesce_impl
)
_register("EXTRACT", (2, 2), _always(DataType.INTEGER), _extract_impl)
_register("DATE", (1, 1), _always(DataType.DATE), _date_impl)
_register("INTERVAL", (2, 2), _always(DataType.INTEGER), _interval_impl)


# ----------------------------------------------------------------------
# Aggregate functions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateFunction:
    """An aggregate: return-type rule + whole-group reducer.

    ``reduce`` receives the argument vector restricted to one group (or None
    for COUNT(*)) and returns a Python scalar (None for NULL).
    """

    name: str
    return_type: Callable[[DataType | None], DataType]
    reduce: Callable[[ColumnVector | None, bool], Any]


def _non_null(vector: ColumnVector) -> np.ndarray:
    return vector.values[~vector.nulls]


def _count_reduce(vector: ColumnVector | None, distinct: bool) -> int:
    if vector is None:
        raise ExecutionError("COUNT(*) group size is computed by the executor")
    present = _non_null(vector)
    if distinct:
        if vector.dtype.numpy_dtype == np.dtype(object):
            return len(set(present.tolist()))
        return len(np.unique(present))
    return len(present)


def _sum_reduce(vector: ColumnVector | None, distinct: bool) -> Any:
    present = _non_null(vector)
    if distinct:
        present = np.unique(present)
    if len(present) == 0:
        return None
    return present.sum().item()


def _avg_reduce(vector: ColumnVector | None, distinct: bool) -> Any:
    present = _non_null(vector)
    if distinct:
        present = np.unique(present)
    if len(present) == 0:
        return None
    return float(present.astype(np.float64).mean())


def _minmax_reduce(fn: str):
    def reduce(vector: ColumnVector | None, distinct: bool) -> Any:
        present = _non_null(vector)
        if len(present) == 0:
            return None
        if vector.dtype.numpy_dtype == np.dtype(object):
            items = sorted(present.tolist())
            return items[0] if fn == "min" else items[-1]
        value = present.min() if fn == "min" else present.max()
        return value.item()

    return reduce


def _stddev_reduce(vector: ColumnVector | None, distinct: bool) -> Any:
    present = _non_null(vector).astype(np.float64)
    if distinct:
        present = np.unique(present)
    if len(present) < 2:
        return None
    return float(present.std(ddof=1))


def _sum_type(arg: DataType | None) -> DataType:
    if arg is None or not arg.is_numeric:
        raise BindError(f"SUM/AVG require a numeric argument, got {arg}")
    return arg


AGGREGATE_FUNCTIONS: dict[str, AggregateFunction] = {
    "COUNT": AggregateFunction(
        "COUNT", lambda arg: DataType.INTEGER, _count_reduce
    ),
    "SUM": AggregateFunction("SUM", _sum_type, _sum_reduce),
    "AVG": AggregateFunction(
        "AVG", lambda arg: DataType.FLOAT, _avg_reduce
    ),
    "MIN": AggregateFunction(
        "MIN", lambda arg: arg or DataType.INTEGER, _minmax_reduce("min")
    ),
    "MAX": AggregateFunction(
        "MAX", lambda arg: arg or DataType.INTEGER, _minmax_reduce("max")
    ),
    "STDDEV": AggregateFunction(
        "STDDEV", lambda arg: DataType.FLOAT, _stddev_reduce
    ),
}


def is_aggregate(name: str) -> bool:
    return name.upper() in AGGREGATE_FUNCTIONS


def lookup_scalar(name: str) -> ScalarFunction:
    try:
        return SCALAR_FUNCTIONS[name.upper()]
    except KeyError:
        raise BindError(f"unknown function {name!r}") from None
