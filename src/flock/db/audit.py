"""Tamper-evident audit logging.

Every statement the engine executes is recorded: who, what, on which object,
and whether it succeeded. Records are hash-chained (each record carries the
digest of its predecessor) so truncation or in-place edits are detectable —
the "auditably tracked" storage and scoring of models the paper calls for.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class AuditRecord:
    sequence: int
    timestamp: float
    user: str
    action: str  # e.g. SELECT, INSERT, PREDICT, DEPLOY_MODEL, GRANT
    object_name: str
    detail: str
    success: bool
    previous_digest: str
    digest: str = field(default="", compare=False)

    def payload(self) -> str:
        return (
            f"{self.sequence}|{self.timestamp:.6f}|{self.user}|{self.action}|"
            f"{self.object_name}|{self.detail}|{self.success}|"
            f"{self.previous_digest}"
        )


_GENESIS = "0" * 64


class AuditLog:
    """An append-only, hash-chained audit trail."""

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []
        self._lock = threading.Lock()
        self._sequence = itertools.count(1)

    def record(
        self,
        user: str,
        action: str,
        object_name: str,
        detail: str = "",
        success: bool = True,
    ) -> AuditRecord:
        with self._lock:
            previous = self._records[-1].digest if self._records else _GENESIS
            entry = AuditRecord(
                sequence=next(self._sequence),
                timestamp=time.time(),
                user=user,
                action=action.upper(),
                object_name=object_name,
                detail=detail,
                success=success,
                previous_digest=previous,
            )
            digest = hashlib.sha256(entry.payload().encode()).hexdigest()
            entry = AuditRecord(
                entry.sequence,
                entry.timestamp,
                entry.user,
                entry.action,
                entry.object_name,
                entry.detail,
                entry.success,
                entry.previous_digest,
                digest,
            )
            self._records.append(entry)
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        with self._lock:
            return iter(list(self._records))

    @property
    def last_sequence(self) -> int:
        """Sequence number of the newest record (0 when empty)."""
        with self._lock:
            return self._records[-1].sequence if self._records else 0

    def records_after(self, sequence: int) -> list[AuditRecord]:
        """Records newer than *sequence*, oldest first (WAL piggybacking)."""
        with self._lock:
            return [r for r in self._records if r.sequence > sequence]

    def restore(self, records: list[AuditRecord]) -> None:
        """Append recovered *records*, skipping any we already hold.

        Recovery replays WAL records whose piggybacked audit entries may
        overlap what the checkpoint snapshot already restored; matching on
        sequence keeps the trail exactly-once and the hash chain intact.
        """
        with self._lock:
            last = self._records[-1].sequence if self._records else 0
            for record in records:
                if record.sequence <= last:
                    continue
                self._records.append(record)
                last = record.sequence
            self._sequence = itertools.count(last + 1)

    def records(
        self,
        user: str | None = None,
        action: str | None = None,
        object_name: str | None = None,
    ) -> list[AuditRecord]:
        """Filtered view of the trail."""
        with self._lock:
            snapshot = list(self._records)
        out = []
        for r in snapshot:
            if user is not None and r.user != user:
                continue
            if action is not None and r.action != action.upper():
                continue
            if object_name is not None and r.object_name != object_name:
                continue
            out.append(r)
        return out

    def verify_chain(self) -> bool:
        """True iff the hash chain is intact (no tampering/truncation)."""
        with self._lock:
            snapshot = list(self._records)
        previous = _GENESIS
        for r in snapshot:
            if r.previous_digest != previous:
                return False
            if hashlib.sha256(r.payload().encode()).hexdigest() != r.digest:
                return False
            previous = r.digest
        return True
