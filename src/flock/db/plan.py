"""Logical query plans.

The binder produces these nodes; the optimizer rewrites them; the physical
planner lowers them to executable operators. The inference layer's
:class:`PredictNode` is a *first-class relational operator* (§4.1 of the
paper): scoring sits inside the plan where the optimizer can move filters and
projections across the model boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from flock.db.expr import BoundExpr
from flock.db.types import DataType


@dataclass(frozen=True)
class Field:
    """One column of a plan node's output schema."""

    name: str
    dtype: DataType

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}:{self.dtype}"


class PlanNode:
    """Base class for logical plan nodes."""

    fields: list[Field]

    def children(self) -> list["PlanNode"]:
        return []

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def explain(self, indent: int = 0) -> str:
        """A readable plan tree (EXPLAIN output)."""
        line = "  " * indent + self.describe()
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


class ScanNode(PlanNode):
    """Full scan of a base table (optionally restricted to some columns)."""

    def __init__(
        self,
        table_name: str,
        fields: Sequence[Field],
        column_indexes: Sequence[int],
        alias: str | None = None,
        via_view: str | None = None,
    ):
        self.table_name = table_name
        self.fields = list(fields)
        self.column_indexes = list(column_indexes)  # positions in base table
        self.alias = alias or table_name
        # Set when this scan came from expanding a view: access control then
        # checks SELECT on the view, not on the base table (definer
        # semantics — views are grant boundaries).
        self.via_view = via_view
        # Zone-map pruning hints set by the optimizer's access-path pass:
        # a list of (base_column_position, op, physical_value) conjuncts the
        # executor may use to drop whole zones before scanning. Advisory —
        # the filter above this scan still evaluates the full predicate.
        self.zone_predicates: list[tuple[int, str, object]] | None = None

    def describe(self) -> str:
        cols = ", ".join(f.name for f in self.fields)
        suffix = ""
        if self.zone_predicates:
            zones = ", ".join(
                f"{op}#{pos}" for pos, op, _ in self.zone_predicates
            )
            suffix = f" zones=[{zones}]"
        return f"Scan({self.table_name} [{cols}]){suffix}"


class IndexLookupNode(ScanNode):
    """Hash-index point/IN-list access to a base table.

    A drop-in ScanNode replacement chosen by the optimizer when an equality
    or IN-list conjunct hits an indexed column with low estimated
    selectivity. The executor asks the index for the matching row positions
    (ascending, so row order matches the plain scan) and falls back to the
    full scan whenever the index cannot serve the visible snapshot — the
    filter above always re-checks the predicate, so the lookup only has to
    produce a superset of the surviving rows.
    """

    def __init__(
        self,
        table_name: str,
        fields: Sequence[Field],
        column_indexes: Sequence[int],
        alias: str | None = None,
        via_view: str | None = None,
        index_name: str = "",
        key_column: str = "",
        key_values: Sequence[object] = (),
    ):
        super().__init__(table_name, fields, column_indexes, alias, via_view)
        self.index_name = index_name
        self.key_column = key_column
        self.key_values = list(key_values)

    def describe(self) -> str:
        cols = ", ".join(f.name for f in self.fields)
        return (
            f"IndexLookup({self.table_name} [{cols}] "
            f"index={self.index_name} key={self.key_column} "
            f"keys={len(self.key_values)})"
        )


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: BoundExpr):
        self.child = child
        self.predicate = predicate
        self.fields = list(child.fields)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class ProjectNode(PlanNode):
    def __init__(
        self, child: PlanNode, exprs: Sequence[BoundExpr], names: Sequence[str]
    ):
        self.child = child
        self.exprs = list(exprs)
        self.fields = [Field(n, e.dtype) for n, e in zip(names, exprs)]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        items = ", ".join(
            f"{f.name}={e!r}" for f, e in zip(self.fields, self.exprs)
        )
        return f"Project({items})"


class PredictNode(PlanNode):
    """ML inference as a plan operator.

    Consumes the child's rows, feeds ``input_indexes`` (child column
    positions, ordered as the model's input features) to the model named
    ``model_name``, and appends the prediction columns to the child schema.

    ``strategy`` is filled by the physical selector ('batch' | 'row_udf' |
    'inline'); ``compiled`` caches artifacts the executor needs (a pruned /
    compressed model graph, or an inlined expression).
    """

    def __init__(
        self,
        child: PlanNode,
        model_name: str,
        input_indexes: Sequence[int],
        output_fields: Sequence[Field],
        strategy: str = "batch",
    ):
        self.child = child
        self.model_name = model_name
        self.input_indexes = list(input_indexes)
        self.output_fields = list(output_fields)
        self.strategy = strategy
        self.compiled: Optional[object] = None
        self.fields = list(child.fields) + list(output_fields)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        outs = ", ".join(f.name for f in self.output_fields)
        return (
            f"Predict(model={self.model_name}, inputs={self.input_indexes}, "
            f"outputs=[{outs}], strategy={self.strategy})"
        )


class JoinNode(PlanNode):
    """INNER/LEFT/CROSS/SEMI/ANTI join.

    ``condition`` sees left fields then right. SEMI/ANTI joins (the
    decorrelated form of EXISTS / NOT EXISTS) output only the left
    schema: each left row appears at most once, in left order.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        condition: BoundExpr | None,
    ):
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition
        if join_type in ("SEMI", "ANTI"):
            self.fields = list(left.fields)
        else:
            self.fields = list(left.fields) + list(right.fields)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        cond = f" ON {self.condition!r}" if self.condition is not None else ""
        return f"Join({self.join_type}{cond})"


@dataclass
class AggregateSpec:
    """One aggregate in an AggregateNode."""

    func_name: str  # COUNT/SUM/AVG/MIN/MAX/STDDEV
    arg: BoundExpr | None  # None for COUNT(*)
    distinct: bool
    alias: str
    dtype: DataType

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        d = "DISTINCT " if self.distinct else ""
        return f"{self.func_name}({d}{inner}) AS {self.alias}"


class AggregateNode(PlanNode):
    """Hash aggregation: group keys first, then aggregate outputs."""

    def __init__(
        self,
        child: PlanNode,
        group_exprs: Sequence[BoundExpr],
        group_names: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        self.child = child
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)
        self.fields = [
            Field(n, e.dtype) for n, e in zip(group_names, group_exprs)
        ] + [Field(a.alias, a.dtype) for a in aggregates]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        groups = ", ".join(repr(e) for e in self.group_exprs)
        aggs = ", ".join(repr(a) for a in self.aggregates)
        return f"Aggregate(groups=[{groups}], aggs=[{aggs}])"


class WindowNode(PlanNode):
    """One window function appended as a new column.

    Partitions the child rows by ``partition_exprs``, orders each
    partition by ``order_keys`` (BoundExpr, ascending) and computes
    ``func_name`` (ROW_NUMBER / RANK / SUM) per row. Output preserves
    the child's row order and schema with one extra column appended.
    """

    def __init__(
        self,
        child: PlanNode,
        func_name: str,
        arg: BoundExpr | None,
        partition_exprs: Sequence[BoundExpr],
        order_keys: Sequence[tuple[BoundExpr, bool]],
        output_name: str,
        dtype: DataType,
    ):
        self.child = child
        self.func_name = func_name
        self.arg = arg
        self.partition_exprs = list(partition_exprs)
        self.order_keys = list(order_keys)
        self.output_name = output_name
        self.dtype = dtype
        self.fields = list(child.fields) + [Field(output_name, dtype)]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        arg = "" if self.arg is None else repr(self.arg)
        parts = ", ".join(repr(e) for e in self.partition_exprs)
        keys = ", ".join(
            f"{e!r} {'ASC' if asc else 'DESC'}" for e, asc in self.order_keys
        )
        return (
            f"Window({self.func_name}({arg}) OVER "
            f"(PARTITION BY [{parts}] ORDER BY [{keys}]) "
            f"AS {self.output_name})"
        )


class SortNode(PlanNode):
    """Sort by expressions over the child's output."""

    def __init__(self, child: PlanNode, keys: Sequence[tuple[BoundExpr, bool]]):
        self.child = child
        self.keys = list(keys)
        self.fields = list(child.fields)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(
            f"{e!r} {'ASC' if asc else 'DESC'}" for e, asc in self.keys
        )
        return f"Sort({keys})"


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, limit: int | None, offset: int):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.fields = list(child.fields)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode):
        self.child = child
        self.fields = list(child.fields)

    def children(self) -> list[PlanNode]:
        return [self.child]


class SetOpNode(PlanNode):
    """UNION [ALL] / EXCEPT / INTERSECT over schema-compatible inputs."""

    def __init__(self, left: PlanNode, right: PlanNode, op: str, all: bool):
        self.left = left
        self.right = right
        self.op = op
        self.all = all
        self.fields = list(left.fields)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"SetOp({self.op}{' ALL' if self.all else ''})"
