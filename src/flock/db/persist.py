"""Database persistence: snapshot to disk and restore.

The paper calls for "data abstractions backed by query, lineage-tracking and
storage technology that can cover heterogeneous, versioned, and *durable*
data" (§4.2). This module makes a :class:`~flock.db.Database` durable: the
snapshot covers every table's **full version history** (temporal fidelity —
historical versions restore scan-identical), views (as re-parseable SQL),
principals and grants, the hash-chained audit log (which still verifies
after restore) and the query log (so lazy provenance capture works across
restarts). Deployed models ride along inside the ``flock_models`` table's
MODEL-typed column.

Format: a directory with one ``manifest.json`` plus one JSON file per table.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any

from flock.db.audit import AuditRecord
from flock.db.engine import Database, QueryLogEntry
from flock.db.schema import Column, TableSchema
from flock.db.storage import TableVersion
from flock.db.types import DataType
from flock.db.vector import ColumnVector
from flock.errors import FlockError
from flock.testing import faultpoints

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def save_database(
    database: Database,
    path: str | Path,
    *,
    wal_generation: int | None = None,
    durable: bool = False,
) -> None:
    """Snapshot *database* into the directory *path* (created if needed).

    ``wal_generation`` stamps the snapshot with the write-ahead-log
    generation that starts *after* it (see :mod:`flock.db.wal`); ``durable``
    fsyncs every file and the directory, which checkpointing requires before
    it may truncate the log.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)

    table_names = database.catalog.table_names()
    manifest: dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "tables": table_names,
        "views": {
            name: str(database.catalog.view(name))
            for name in database.catalog.view_names()
        },
        "indexes": [
            {"name": d.name, "table": d.table, "column": d.column}
            for d in database.catalog.index_defs()
        ],
        "principals": _dump_principals(database),
        "audit": [_dump_audit_record(r) for r in database.audit.log],
        "query_log": [
            {
                "sql": e.sql,
                "user": e.user,
                "timestamp": e.timestamp,
                "statement_type": e.statement_type,
                "success": e.success,
                "duration_ms": e.duration_ms,
            }
            for e in database.query_log
        ],
    }
    if wal_generation is not None:
        manifest["wal_generation"] = wal_generation
    _write_json(root / "manifest.json", manifest, durable)

    faultpoints.reach("checkpoint.mid_write")

    for name in table_names:
        table = database.catalog.table(name)
        payload = {
            "schema": [
                {
                    "name": c.name,
                    "dtype": c.dtype.value,
                    "nullable": c.nullable,
                    "primary_key": c.primary_key,
                    "hidden": c.hidden,
                }
                for c in table.schema.columns
            ],
            "versions": [
                _dump_version(v) for v in table.versions()
            ],
        }
        _write_json(root / f"table_{name.lower()}.json", payload, durable)

    if durable:
        _fsync_dir(root)


def _write_json(path: Path, obj: Any, durable: bool) -> None:
    data = json.dumps(obj)
    if not durable:
        path.write_text(data)
        return
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def dump_values(vector: ColumnVector) -> list:
    """One column's values as JSON-safe Python objects (NULL as None)."""
    values = []
    # Hoist once: on encoded vectors each property access decodes the
    # whole column, which would make this loop quadratic.
    physical = vector.values
    nulls = vector.nulls
    for i in range(len(vector)):
        if nulls[i]:
            values.append(None)
        else:
            value = physical[i]
            if isinstance(value, float) and not math.isfinite(value):
                # float() first: repr(np.float64(nan)) spells the type out.
                values.append({"__float__": repr(float(value))})
            elif hasattr(value, "item"):
                values.append(value.item())
            else:
                values.append(value)
    return values


def load_values(values: list) -> list:
    """Invert :func:`dump_values` (decode non-finite float markers)."""
    return [
        float(v["__float__"]) if isinstance(v, dict) and "__float__" in v
        else v
        for v in values
    ]


def _dump_version(version: TableVersion) -> dict:
    return {
        "version_id": version.version_id,
        "operation": version.operation,
        "columns": [dump_values(vector) for vector in version.columns],
    }


def _dump_principals(database: Database) -> list[dict]:
    out = []
    for key, principal in database.security._principals.items():
        out.append(
            {
                "name": principal.name,
                "is_role": principal.is_role,
                "roles": sorted(principal.roles),
                "grants": {
                    obj: sorted(privs)
                    for obj, privs in principal.grants.items()
                },
            }
        )
    return out


def _dump_audit_record(record: AuditRecord) -> dict:
    return {
        "sequence": record.sequence,
        "timestamp": record.timestamp,
        "user": record.user,
        "action": record.action,
        "object_name": record.object_name,
        "detail": record.detail,
        "success": record.success,
        "previous_digest": record.previous_digest,
        "digest": record.digest,
    }


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def load_database(
    path: str | Path,
    model_store=None,
    scorer=None,
    optimizer=None,
    encodings: bool | None = None,
    memory_budget: int | None = None,
) -> Database:
    """Restore a snapshot into a fresh :class:`Database`."""
    root = Path(path)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise FlockError(f"no database snapshot at {root}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise FlockError(
            f"unsupported snapshot format {manifest.get('format_version')!r}"
        )

    database = Database(
        model_store=model_store,
        scorer=scorer,
        optimizer=optimizer,
        encodings=encodings,
        memory_budget=memory_budget,
    )

    for name in manifest["tables"]:
        payload = json.loads((root / f"table_{name.lower()}.json").read_text())
        schema = TableSchema.of(
            name,
            [
                Column(
                    c["name"],
                    DataType(c["dtype"]),
                    nullable=c["nullable"],
                    primary_key=c["primary_key"],
                    hidden=c.get("hidden", False),
                )
                for c in payload["schema"]
            ],
        )
        table = database.catalog.create_table(schema)
        # Replace the implicit empty history with the stored one.
        versions = [
            _load_version(schema, v) for v in payload["versions"]
        ]
        if versions and database.encodings_enabled():
            # Encoded chunks survive round-trips: the head version (the one
            # scans read) comes back encoded; historical versions stay
            # plain — they are read rarely and decode bit-identically
            # either way.
            from flock.db.encoding import encode_columns

            head = versions[-1]
            head.columns = tuple(encode_columns(head.columns, True))
        table._versions = versions
        table._head = len(versions) - 1

    from flock.db.sql.parser import parse_statement

    for view_name, view_sql in manifest["views"].items():
        database.catalog.create_view(view_name, parse_statement(view_sql))

    # Secondary-index definitions (snapshots from before the field lack
    # it). Bucket contents are not persisted — the first lookup rebuilds
    # them lazily against the restored head version.
    for d in manifest.get("indexes", []):
        database.catalog.create_index(
            d["name"], d["table"], d["column"], if_not_exists=True
        )

    _load_principals(database, manifest["principals"])

    database.audit.log._records = [
        AuditRecord(**r) for r in manifest["audit"]
    ]
    if manifest["audit"]:
        import itertools

        database.audit.log._sequence = itertools.count(
            manifest["audit"][-1]["sequence"] + 1
        )

    database.query_log = [
        QueryLogEntry(**e) for e in manifest["query_log"]
    ]
    return database


def _load_version(schema: TableSchema, payload: dict) -> TableVersion:
    vectors = []
    for column, values in zip(schema.columns, payload["columns"]):
        decoded = load_values(values)
        if column.dtype is DataType.DATE:
            # Stored physically as day numbers; from_values expects that.
            vector = ColumnVector.from_values(DataType.DATE, decoded)
        else:
            vector = ColumnVector.from_values(column.dtype, decoded)
        vectors.append(vector)
    return TableVersion(
        payload["version_id"], schema, vectors, payload["operation"]
    )


def _load_principals(database: Database, payloads: list[dict]) -> None:
    security = database.security
    for p in payloads:
        if p["name"] == "admin":
            continue
        if p["is_role"]:
            security.create_role(p["name"])
        else:
            security.create_user(p["name"])
    for p in payloads:
        principal = security.principal(p["name"])
        principal.roles = set(p["roles"])
        principal.grants = {
            obj: set(privs) for obj, privs in p["grants"].items()
        }
