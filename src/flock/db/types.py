"""The flock.db type system.

Types are deliberately small: INTEGER, FLOAT, TEXT, BOOLEAN, DATE and MODEL.
MODEL is the paper's "models as first-class data types" (§4.1): a column may
hold serialized model graphs, which the PREDICT operator and the registry
consume.

Values are stored columnar as numpy arrays plus an explicit null mask (see
:mod:`flock.db.vector`). DATE values are stored as int64 days since the Unix
epoch; :func:`date_to_days` / :func:`days_to_date` convert at the boundary.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

import numpy as np

from flock.errors import TypeMismatchError

_EPOCH = datetime.date(1970, 1, 1)


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    MODEL = "MODEL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def numpy_dtype(self) -> np.dtype:
        """The physical numpy dtype used to store values of this type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_orderable(self) -> bool:
        return self is not DataType.MODEL


_NUMPY_DTYPES = {
    DataType.INTEGER: np.dtype(np.int64),
    DataType.FLOAT: np.dtype(np.float64),
    DataType.TEXT: np.dtype(object),
    DataType.BOOLEAN: np.dtype(np.bool_),
    DataType.DATE: np.dtype(np.int64),
    DataType.MODEL: np.dtype(object),
}

# SQL type-name spellings accepted by the parser, mapped to logical types.
SQL_TYPE_ALIASES = {
    "INT": DataType.INTEGER,
    "INTEGER": DataType.INTEGER,
    "BIGINT": DataType.INTEGER,
    "SMALLINT": DataType.INTEGER,
    "FLOAT": DataType.FLOAT,
    "REAL": DataType.FLOAT,
    "DOUBLE": DataType.FLOAT,
    "DECIMAL": DataType.FLOAT,
    "NUMERIC": DataType.FLOAT,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "CHAR": DataType.TEXT,
    "STRING": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "BOOL": DataType.BOOLEAN,
    "DATE": DataType.DATE,
    "MODEL": DataType.MODEL,
}


def date_to_days(value: datetime.date | str) -> int:
    """Convert a date (or ISO ``YYYY-MM-DD`` string) to days since the epoch."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Convert days since the epoch back to a :class:`datetime.date`."""
    return _EPOCH + datetime.timedelta(days=int(days))


def infer_type(value: Any) -> DataType:
    """Infer the logical type of a Python literal.

    Raises :class:`TypeMismatchError` for unsupported Python types.
    """
    if isinstance(value, bool):  # must precede int: bool is a subclass of int
        return DataType.BOOLEAN
    if isinstance(value, (int, np.integer)):
        return DataType.INTEGER
    if isinstance(value, (float, np.floating)):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.TEXT
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise TypeMismatchError(f"cannot infer SQL type for Python value {value!r}")


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce a Python value to the physical representation of *dtype*.

    ``None`` passes through (it is represented by the null mask, not by the
    value array). Raises :class:`TypeMismatchError` when the value cannot be
    represented in the target type without data loss surprises (e.g. TEXT
    into INTEGER).
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            if isinstance(value, (float, np.floating)) and float(value).is_integer():
                return int(value)
            raise TypeMismatchError(f"cannot store {value!r} in INTEGER column")
        return int(value)
    if dtype is DataType.FLOAT:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            raise TypeMismatchError(f"cannot store {value!r} in FLOAT column")
        return float(value)
    if dtype is DataType.TEXT:
        if not isinstance(value, str):
            raise TypeMismatchError(f"cannot store {value!r} in TEXT column")
        return value
    if dtype is DataType.BOOLEAN:
        if not isinstance(value, (bool, np.bool_)):
            raise TypeMismatchError(f"cannot store {value!r} in BOOLEAN column")
        return bool(value)
    if dtype is DataType.DATE:
        if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
            return int(value)
        if isinstance(value, (str, datetime.date)):
            return date_to_days(value)
        raise TypeMismatchError(f"cannot store {value!r} in DATE column")
    if dtype is DataType.MODEL:
        return value  # opaque payload; the registry validates it
    raise TypeMismatchError(f"unknown data type {dtype}")


def common_type(left: DataType, right: DataType) -> DataType:
    """The result type of combining *left* and *right* in an expression.

    INTEGER and FLOAT unify to FLOAT; otherwise the types must match.
    """
    if left is right:
        return left
    numeric = {DataType.INTEGER, DataType.FLOAT}
    if left in numeric and right in numeric:
        return DataType.FLOAT
    raise TypeMismatchError(f"incompatible types {left} and {right}")


def python_value(value: Any, dtype: DataType) -> Any:
    """Convert a stored physical value back to a user-facing Python value."""
    if value is None:
        return None
    if dtype is DataType.DATE:
        return days_to_date(value)
    if dtype is DataType.INTEGER:
        return int(value)
    if dtype is DataType.FLOAT:
        return float(value)
    if dtype is DataType.BOOLEAN:
        return bool(value)
    return value
