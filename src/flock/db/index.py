"""Hash indexes and per-morsel zone maps.

Two access-path accelerators over the versioned columnar storage:

:class:`HashIndex` maps column values to ascending row positions of one
specific :class:`~flock.db.storage.TableVersion`. MVCC correctness comes from
exact version matching: a lookup is answered only for the version the index
was built against. When the visible head has moved, the index either advances
itself from the committed INSERT deltas (the common append-heavy case) or is
rebuilt lazily on the next lookup — both under the statement lock regime,
where the head cannot move while any statement is in flight. A lookup against
any *other* version (e.g. a transaction reading its own staged writes)
returns ``None`` and the executor falls back to the full scan, which is
always correct because the optimizer keeps the original filter above the
index lookup (the index only has to return a superset of the matching rows —
it returns exactly the equality matches).

Zone maps (:class:`ColumnZones`) are min/max/present-count summaries per
fixed-size row range, aligned with the default morsel size of the parallel
executor so that pruning a zone prunes a whole morsel before fan-out. They
are computed lazily per version and cached on the version; INSERT versions
reuse the full-zone prefix of their base version (the first ``base.row_count``
rows are bitwise the same columns), so append-heavy workloads pay only for
the tail.

Both structures are advisory: dropping them, disabling them
(``SET flock.indexes = 0`` / ``FLOCK_INDEXES=0``) or racing them stale can
only ever route a query back to the plain scan path, never change results.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from flock.db.types import DataType
from flock.db.vector import ColumnVector
from flock.observability.metrics import metrics
from flock.testing import faultpoints

#: Rows per zone. Matches the parallel executor's DEFAULT_MORSEL_ROWS so a
#: pruned zone corresponds to a whole default-size morsel.
ZONE_ROWS = 8192

#: Comparison operators zone maps understand (plus "in" for IN-lists).
ZONE_OPS = ("=", "<", "<=", ">", ">=", "in")


@dataclass(frozen=True)
class IndexDef:
    """Catalog entry for one hash index: a name over one column of one table.

    ``auto`` marks the implicit primary-key index, which exists outside the
    CREATE/DROP INDEX namespace and follows the table's lifetime.
    """

    name: str
    table: str
    column: str
    auto: bool = False


class HashIndex:
    """Value -> ascending-row-ids map for one column of one table version."""

    def __init__(self, defn: IndexDef, column_position: int, dtype: DataType):
        self.defn = defn
        self.column_position = column_position
        self.dtype = dtype
        self._lock = threading.Lock()
        # The version this index reflects; -1 = never built.
        self.version_id = -1
        self._row_count = 0
        self._buckets: dict[Any, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def lookup(self, version, probes: Sequence[Any]) -> np.ndarray | None:
        """Ascending unique row positions in *version* matching any probe.

        *version* must be the table's visible head (the caller checks);
        stale indexes rebuild here, under the index lock, so concurrent
        readers of the same head race at most one rebuild.
        NULL probes match nothing, mirroring SQL equality semantics.
        """
        with self._lock:
            if self.version_id != version.version_id:
                faultpoints.reach("index.pre_rebuild")
                self._rebuild(version)
                metrics().counter("index.rebuilds").inc()
            hits = [
                self._buckets.get(_probe_key(p))
                for p in probes
                if p is not None
            ]
        hits = [h for h in hits if h is not None]
        metrics().counter("index.lookups").inc()
        if not hits:
            return np.empty(0, dtype=np.int64)
        if len(hits) == 1:
            return hits[0]
        return np.unique(np.concatenate(hits))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def advance(self, prev_version_id: int, effects: Sequence[Any]) -> bool:
        """Advance the index across a commit's ordered per-table *effects*.

        Only pure-INSERT effect chains starting exactly at the version the
        index reflects can be applied incrementally (fresh rows append at
        the tail, so existing buckets stay valid and new row ids are the
        old row count onward). Anything else leaves the index stale — the
        next lookup rebuilds. Returns True when the index advanced.
        """
        with self._lock:
            if self.version_id != prev_version_id:
                return False
            for staged in effects:
                delta = staged.delta
                if not delta or delta[0] != "INSERT":
                    return False
            faultpoints.reach("index.pre_advance")
            for staged in effects:
                fresh = staged.delta[1][self.column_position]
                self._append(fresh)
                self.version_id = staged.version_id
            metrics().counter("index.advances").inc()
            return True

    def _append(self, fresh: ColumnVector) -> None:
        start = self._row_count
        additions: dict[Any, list[int]] = {}
        nulls = fresh.nulls
        if fresh.dtype.numpy_dtype == np.dtype(object):
            for i, value in enumerate(fresh.values):
                if not nulls[i]:
                    additions.setdefault(value, []).append(start + i)
        else:
            for i, value in enumerate(fresh.values.tolist()):
                if not nulls[i]:
                    additions.setdefault(value, []).append(start + i)
        for key, ids in additions.items():
            arr = np.asarray(ids, dtype=np.int64)
            existing = self._buckets.get(key)
            if existing is None:
                self._buckets[key] = arr
            else:
                # Appended ids are all larger than existing ones, so the
                # concatenation stays ascending.
                self._buckets[key] = np.concatenate([existing, arr])
        self._row_count += len(fresh)

    def _rebuild(self, version) -> None:
        vector = version.columns[self.column_position]
        self._buckets = _build_buckets(vector)
        self._row_count = len(vector)
        self.version_id = version.version_id
        faultpoints.reach("index.post_rebuild")


def _probe_key(value: Any) -> Any:
    """Normalize a probe literal to the bucket-key domain.

    Buckets are keyed by physical values (int/float/str/bool — DATE is its
    int day number). Python hashing already unifies 1, 1.0 and True, which
    matches numpy's ``==`` semantics on mixed numeric comparisons, so the
    only normalization needed is unwrapping numpy scalars.
    """
    if isinstance(value, np.generic):
        return value.item()
    return value


def _build_buckets(vector: ColumnVector) -> dict[Any, np.ndarray]:
    """Group ascending row positions by (non-null) value."""
    nulls = vector.nulls
    if vector.dtype.numpy_dtype == np.dtype(object):
        groups: dict[Any, list[int]] = {}
        for i, value in enumerate(vector.values):
            if not nulls[i]:
                groups.setdefault(value, []).append(i)
        return {
            key: np.asarray(ids, dtype=np.int64)
            for key, ids in groups.items()
        }
    present = np.nonzero(~nulls)[0]
    values = vector.values[present]
    # Stable sort by value keeps row ids ascending within each value group.
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    sorted_ids = present[order].astype(np.int64, copy=False)
    if len(sorted_values) == 0:
        return {}
    boundaries = np.nonzero(sorted_values[1:] != sorted_values[:-1])[0] + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(sorted_values)]])
    buckets: dict[Any, np.ndarray] = {}
    for start, stop in zip(starts, stops):
        buckets[sorted_values[start].item()] = sorted_ids[start:stop]
    return buckets


# ----------------------------------------------------------------------
# Zone maps
# ----------------------------------------------------------------------
class ColumnZones:
    """Min/max/present-count per fixed ZONE_ROWS range of one column."""

    __slots__ = ("zone_rows", "row_count", "mins", "maxs", "present")

    def __init__(
        self,
        zone_rows: int,
        row_count: int,
        mins: np.ndarray,
        maxs: np.ndarray,
        present: np.ndarray,
    ):
        self.zone_rows = zone_rows
        self.row_count = row_count
        self.mins = mins
        self.maxs = maxs
        self.present = present

    @property
    def zone_count(self) -> int:
        return len(self.present)


def zone_eligible(dtype: DataType) -> bool:
    """Zone maps cover the totally ordered fixed-width types."""
    return dtype in (DataType.INTEGER, DataType.FLOAT, DataType.DATE)


def _sentinels(vector: ColumnVector) -> tuple[Any, Any]:
    if vector.dtype is DataType.FLOAT:
        return np.inf, -np.inf
    info = np.iinfo(np.int64)
    return info.max, info.min


def _compute_zones(vector: ColumnVector, start_zone: int) -> tuple:
    """Per-zone (mins, maxs, present) arrays from zone *start_zone* on."""
    lo = start_zone * ZONE_ROWS
    values = vector.values[lo:]
    nulls = vector.nulls[lo:]
    n = len(values)
    starts = np.arange(0, n, ZONE_ROWS)
    if n == 0:
        empty = np.empty(0, dtype=values.dtype)
        return empty, empty.copy(), np.empty(0, dtype=np.int64)
    hi_sent, lo_sent = _sentinels(vector)
    masked = values.copy()
    masked[nulls] = hi_sent
    mins = np.minimum.reduceat(masked, starts)
    masked[nulls] = lo_sent
    # Rows already overwritten with hi_sent that are NOT null must be
    # restored before the max pass.
    masked[~nulls] = values[~nulls]
    maxs = np.maximum.reduceat(masked, starts)
    present = np.add.reduceat((~nulls).astype(np.int64), starts)
    return mins, maxs, present


def zones_for(version, column_position: int) -> ColumnZones | None:
    """The (cached) zone maps of one column of *version*.

    INSERT versions reuse the full-zone prefix of their base version when
    the base already has zones built — the first ``base.row_count`` rows of
    the column are the same arrays, so only the tail is summarized.
    """
    vector = version.columns[column_position]
    if not zone_eligible(vector.dtype):
        return None
    cache = version.zone_cache
    if cache is None:
        cache = version.zone_cache = {}
    zones = cache.get(column_position)
    if zones is not None:
        return zones
    base = version.zone_base
    base_zones = None
    if base is not None and base.zone_cache:
        base_zones = base.zone_cache.get(column_position)
    if base_zones is not None and base_zones.row_count == base.row_count:
        full = base.row_count // ZONE_ROWS
        mins, maxs, present = _compute_zones(vector, full)
        zones = ColumnZones(
            ZONE_ROWS,
            len(vector),
            np.concatenate([base_zones.mins[:full], mins]),
            np.concatenate([base_zones.maxs[:full], maxs]),
            np.concatenate([base_zones.present[:full], present]),
        )
    else:
        mins, maxs, present = _compute_zones(vector, 0)
        zones = ColumnZones(ZONE_ROWS, len(vector), mins, maxs, present)
    cache[column_position] = zones
    return zones


def zone_keep_mask(zones: ColumnZones, op: str, value: Any) -> np.ndarray:
    """Boolean keep-mask over zones for ``column <op> value``.

    Conservative: a zone is dropped only when *no* row in it can satisfy
    the predicate. All-null zones never satisfy a comparison. A NULL
    literal satisfies nothing, dropping every zone.
    """
    n = zones.zone_count
    if op == "in":
        items = [v for v in value if v is not None]
        if not items:
            return np.zeros(n, dtype=bool)
        keep = np.zeros(n, dtype=bool)
        for item in items:
            keep |= (zones.mins <= item) & (item <= zones.maxs)
    elif value is None:
        return np.zeros(n, dtype=bool)
    elif op == "=":
        keep = (zones.mins <= value) & (value <= zones.maxs)
    elif op == "<":
        keep = zones.mins < value
    elif op == "<=":
        keep = zones.mins <= value
    elif op == ">":
        keep = zones.maxs > value
    elif op == ">=":
        keep = zones.maxs >= value
    else:  # pragma: no cover - optimizer only emits ZONE_OPS
        return np.ones(n, dtype=bool)
    return keep & (zones.present > 0)


def prune_row_mask(
    version, predicates: Sequence[tuple[int, str, Any]]
) -> tuple[np.ndarray | None, int, int]:
    """Combined row keep-mask for ANDed zone *predicates* over *version*.

    Returns ``(row_mask_or_None, zones_pruned, zones_total)``; the mask is
    None when nothing can be pruned (so callers skip the filter copy).
    """
    keep: np.ndarray | None = None
    total = 0
    for column_position, op, value in predicates:
        zones = zones_for(version, column_position)
        if zones is None:
            continue
        total = zones.zone_count
        mask = zone_keep_mask(zones, op, value)
        keep = mask if keep is None else (keep & mask)
    if keep is None:
        return None, 0, total
    pruned = int(total - int(keep.sum()))
    if pruned == 0:
        return None, 0, total
    metrics().counter("index.zones_pruned").inc(pruned)
    row_mask = np.repeat(keep, ZONE_ROWS)[: version.row_count]
    return row_mask, pruned, total
