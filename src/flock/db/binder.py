"""Name resolution and type checking: AST → logical plan.

The binder resolves table/column names against the catalog, resolves function
calls against the registry, types every expression, and lifts ``PREDICT``
expressions into :class:`~flock.db.plan.PredictNode` operators so the
optimizer can treat inference as relational algebra (§4.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from flock.db import functions as fn
from flock.db.expr import (
    BoundBinary,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundExpr,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundLiteral,
    BoundUnary,
)
from flock.db.plan import (
    AggregateNode,
    AggregateSpec,
    DistinctNode,
    Field,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    PredictNode,
    ProjectNode,
    ScanNode,
    SortNode,
    WindowNode,
)
from flock.db.schema import TableSchema
from flock.db.sql import ast_nodes as ast
from flock.db.types import SQL_TYPE_ALIASES, DataType, common_type, infer_type
from flock.db.vector import Batch
from flock.errors import BindError, TypeMismatchError


class ModelSignature(Protocol):
    """What the binder needs to know about a deployed model."""

    input_names: list[str]
    input_dtypes: list[DataType]
    output_fields: list[Field]


class BinderContext(Protocol):
    """Catalog access required during binding."""

    def resolve_table(self, name: str) -> TableSchema: ...

    def resolve_model(self, name: str) -> ModelSignature: ...

    def resolve_view(self, name: str):
        """The view's Select AST, or None when no such view exists."""
        return None


@dataclass
class ScopeEntry:
    qualifier: str | None
    name: str
    dtype: DataType


@dataclass
class Scope:
    """Visible columns at some point of the plan, in output order."""

    entries: list[ScopeEntry] = field(default_factory=list)

    def extend(self, other: "Scope") -> "Scope":
        return Scope(self.entries + other.entries)

    def add(self, qualifier: str | None, name: str, dtype: DataType) -> None:
        self.entries.append(ScopeEntry(qualifier, name, dtype))

    def resolve(self, name: str, qualifier: str | None) -> tuple[int, DataType]:
        """Position and type of a column reference; raises on miss/ambiguity."""
        name_l = name.lower()
        qual_l = qualifier.lower() if qualifier else None
        matches = [
            (i, e)
            for i, e in enumerate(self.entries)
            if e.name.lower() == name_l
            and (qual_l is None or (e.qualifier or "").lower() == qual_l)
        ]
        if not matches:
            target = f"{qualifier}.{name}" if qualifier else name
            raise BindError(f"unknown column {target!r}")
        if len(matches) > 1:
            target = f"{qualifier}.{name}" if qualifier else name
            raise BindError(f"ambiguous column reference {target!r}")
        index, entry = matches[0]
        return index, entry.dtype


def fold_constants(expr: BoundExpr) -> BoundExpr:
    """Replace column-free subtrees with literals (evaluated once)."""
    if isinstance(expr, BoundLiteral):
        return expr
    if not expr.referenced_columns():
        result = expr.evaluate(_ONE_ROW)
        if len(result) >= 1:
            return BoundLiteral(expr.dtype, result[0])
        return expr
    for attr in ("operand", "left", "right"):
        if hasattr(expr, attr):
            setattr(expr, attr, fold_constants(getattr(expr, attr)))
    if hasattr(expr, "args"):
        expr.args = [fold_constants(a) for a in expr.args]
    if hasattr(expr, "branches"):
        expr.branches = [
            (fold_constants(c), fold_constants(v)) for c, v in expr.branches
        ]
        if expr.default is not None:
            expr.default = fold_constants(expr.default)
    return expr


class _OneRowBatch(Batch):
    """A columnless batch that reports one row (for constant folding)."""

    def __init__(self) -> None:
        super().__init__([], [])

    @property
    def num_rows(self) -> int:
        return 1


_ONE_ROW = _OneRowBatch()


class Binder:
    """Binds SELECT statements (and standalone expressions) to plans."""

    def __init__(
        self,
        context: BinderContext,
        parameters: list[Any] | None = None,
    ):
        self.context = context
        # Positional values for '?' placeholders; None means the statement
        # must not contain any placeholders.
        self.parameters = parameters
        # WITH-clause bindings visible at the current point of the tree:
        # lowercased name → (query AST, registry snapshot to bind it under).
        # The snapshot holds only *earlier* CTEs of the same WITH clause, so
        # references resolve left-to-right and self-recursion is a plain
        # unknown-table error rather than infinite regress.
        self._ctes: dict[str, tuple[ast.Statement, dict]] = {}

    def _bind_parameter(self, param: ast.Parameter) -> BoundLiteral:
        if self.parameters is None:
            raise BindError(
                "statement contains '?' placeholders but no parameters "
                "were supplied"
            )
        if not 0 <= param.index < len(self.parameters):
            raise BindError(
                f"parameter {param.index + 1} is out of range: "
                f"{len(self.parameters)} value(s) supplied"
            )
        value = self.parameters[param.index]
        if value is None:
            return BoundLiteral(DataType.TEXT, None)
        try:
            dtype = infer_type(value)
        except TypeMismatchError:
            raise TypeMismatchError(
                f"parameter {param.index + 1} has unsupported type "
                f"{type(value).__name__!r}"
            ) from None
        return BoundLiteral(dtype, value)

    # ------------------------------------------------------------------
    # Query expressions (SELECT and set operations)
    # ------------------------------------------------------------------
    def bind_query(self, statement: ast.Statement) -> PlanNode:
        """Bind a SELECT or a UNION/EXCEPT/INTERSECT chain."""
        if isinstance(statement, ast.Select):
            return self.bind_select(statement)
        if isinstance(statement, ast.SetOperation):
            return self._bind_set_operation(statement)
        raise BindError(
            f"cannot bind {type(statement).__name__} as a query"
        )

    def _register_ctes(self, ctes: list[ast.CTE]) -> dict:
        """Install *ctes* into the registry; returns the registry to restore."""
        saved = self._ctes
        if ctes:
            current = dict(saved)
            for cte in ctes:
                snapshot = dict(current)
                current[cte.name.lower()] = (cte.query, snapshot)
            self._ctes = current
        return saved

    def _bind_set_operation(self, setop: ast.SetOperation) -> PlanNode:
        saved = self._register_ctes(setop.ctes)
        try:
            return self._bind_set_operation_body(setop)
        finally:
            self._ctes = saved

    def _bind_set_operation_body(self, setop: ast.SetOperation) -> PlanNode:
        from flock.db.plan import SetOpNode

        left = self.bind_query(setop.left)
        right = self.bind_query(setop.right)
        if len(left.fields) != len(right.fields):
            raise BindError(
                f"{setop.op} inputs have {len(left.fields)} vs "
                f"{len(right.fields)} columns"
            )
        # Unify types column-wise; INTEGER/FLOAT mixes cast to FLOAT.
        casts_left: list[BoundExpr] = []
        casts_right: list[BoundExpr] = []
        needs_left = needs_right = False
        for i, (lf, rf) in enumerate(zip(left.fields, right.fields)):
            try:
                unified = common_type(lf.dtype, rf.dtype)
            except TypeMismatchError:
                raise BindError(
                    f"{setop.op} column {i + 1}: incompatible types "
                    f"{lf.dtype} and {rf.dtype}"
                ) from None
            lcol: BoundExpr = BoundColumn(i, lf.dtype, lf.name)
            rcol: BoundExpr = BoundColumn(i, rf.dtype, rf.name)
            if lf.dtype is not unified:
                lcol = BoundCast(lcol, unified)
                needs_left = True
            if rf.dtype is not unified:
                rcol = BoundCast(rcol, unified)
                needs_right = True
            casts_left.append(lcol)
            casts_right.append(rcol)
        names = [f.name for f in left.fields]
        if needs_left:
            left = ProjectNode(left, casts_left, names)
        if needs_right:
            right = ProjectNode(right, casts_right, names)
        plan: PlanNode = SetOpNode(left, right, setop.op, setop.all)

        if setop.order_by:
            keys = []
            for order in setop.order_by:
                position = self._setop_order_position(order.expr, plan)
                keys.append(
                    (
                        BoundColumn(
                            position,
                            plan.fields[position].dtype,
                            plan.fields[position].name,
                        ),
                        order.ascending,
                    )
                )
            plan = SortNode(plan, keys)
        if setop.limit is not None or setop.offset is not None:
            plan = LimitNode(plan, setop.limit, setop.offset or 0)
        return plan

    def _setop_order_position(self, expr: ast.Expr, plan: PlanNode) -> int:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(plan.fields):
                raise BindError(f"ORDER BY position {expr.value} out of range")
            return position
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            lowered = expr.name.lower()
            for i, f in enumerate(plan.fields):
                if f.name.lower() == lowered:
                    return i
        raise BindError(
            "set operations support ORDER BY output column names or "
            "positions only"
        )

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def bind_select(self, select: ast.Select) -> PlanNode:
        saved = self._register_ctes(select.ctes)
        try:
            return self._bind_select_body(select)
        finally:
            self._ctes = saved

    def _bind_select_body(self, select: ast.Select) -> PlanNode:
        plan, scope = self._bind_from(select.from_clause)

        # Lift PREDICT expressions appearing anywhere in this SELECT into
        # PredictNode operators; the rewriter replaces each Predict AST node
        # with a ColumnRef to the prediction output column.
        plan, scope, select = self._lift_predicts(plan, scope, select)

        # Lift uncorrelated IN (SELECT ...) conjuncts into semi/anti joins.
        plan, scope, select = self._lift_in_subqueries(plan, scope, select)

        # Lift scalar subqueries into LEFT joins (grouped equality joins for
        # the correlated-aggregate form) and EXISTS conjuncts into SEMI/ANTI
        # joins — the decorrelation that makes faithful TPC-H run on the same
        # join plans as the rewritten templates.
        plan, scope, select = self._lift_scalar_subqueries(plan, scope, select)
        plan, scope, select = self._lift_exists(plan, scope, select)

        if select.where is not None:
            predicate = self._bind_boolean(select.where, scope)
            plan = FilterNode(plan, fold_constants(predicate))

        has_aggregates = any(
            self._contains_aggregate(item.expr) for item in select.items
        ) or (select.having is not None) or bool(select.group_by)

        if has_aggregates:
            if self._contains_window(select):
                raise BindError(
                    "window functions cannot be combined with GROUP BY or "
                    "aggregates"
                )
            return self._bind_aggregate_select(select, plan, scope)
        plan, scope, select = self._lift_windows(plan, scope, select)
        return self._bind_plain_select(select, plan, scope)

    def _contains_window(self, select: ast.Select) -> bool:
        def has(expr: ast.Expr | None) -> bool:
            if expr is None:
                return False
            return any(isinstance(n, ast.WindowFunction) for n in expr.walk())

        return (
            any(has(item.expr) for item in select.items)
            or has(select.having)
            or any(has(g) for g in select.group_by)
            or any(has(o.expr) for o in select.order_by)
        )

    # -- FROM ----------------------------------------------------------
    def _bind_from(
        self, from_clause: ast.TableExpr | None
    ) -> tuple[PlanNode, Scope]:
        if from_clause is None:
            raise BindError("SELECT without FROM is not supported")
        if isinstance(from_clause, ast.TableRef):
            qualifier = from_clause.alias or from_clause.name
            cte = self._ctes.get(from_clause.name.lower())
            if cte is not None:
                # Each FROM-position reference re-binds the CTE body under
                # the registry snapshot it was declared with (earlier CTEs
                # only), so one CTE may be used in several FROM positions.
                cte_query, snapshot = cte
                outer_registry = self._ctes
                self._ctes = snapshot
                try:
                    inner = self.bind_query(cte_query)
                finally:
                    self._ctes = outer_registry
                scope = Scope(
                    [
                        ScopeEntry(qualifier, f.name, f.dtype)
                        for f in inner.fields
                    ]
                )
                return inner, scope
            view_query = getattr(self.context, "resolve_view", lambda n: None)(
                from_clause.name
            )
            if view_query is not None:
                inner = self.bind_query(view_query)
                # Definer semantics: every scan under the view is governed
                # by a grant on the (outermost) view, not the base tables.
                for node in inner.walk():
                    if isinstance(node, ScanNode):
                        node.via_view = from_clause.name
                scope = Scope(
                    [
                        ScopeEntry(qualifier, f.name, f.dtype)
                        for f in inner.fields
                    ]
                )
                return inner, scope
            schema = self.context.resolve_table(from_clause.name)
            # Hidden columns (always physically last) are invisible to
            # queries: not in the scope, not in ``SELECT *``. Visible
            # positions therefore equal physical positions.
            visible = schema.visible_columns
            fields = [Field(c.name, c.dtype) for c in visible]
            plan = ScanNode(
                schema.name, fields, list(range(len(visible))), alias=qualifier
            )
            scope = Scope(
                [ScopeEntry(qualifier, c.name, c.dtype) for c in visible]
            )
            return plan, scope
        if isinstance(from_clause, ast.SubqueryRef):
            inner = self.bind_query(from_clause.query)
            scope = Scope(
                [
                    ScopeEntry(from_clause.alias, f.name, f.dtype)
                    for f in inner.fields
                ]
            )
            return inner, scope
        if isinstance(from_clause, ast.Join):
            left_plan, left_scope = self._bind_from(from_clause.left)
            right_plan, right_scope = self._bind_from(from_clause.right)
            scope = left_scope.extend(right_scope)
            condition = None
            if from_clause.condition is not None:
                condition = self._bind_boolean(from_clause.condition, scope)
            plan = JoinNode(
                left_plan, right_plan, from_clause.join_type, condition
            )
            return plan, scope
        raise BindError(f"unsupported FROM clause item {from_clause!r}")

    # -- PREDICT lifting -------------------------------------------------
    def _lift_predicts(
        self, plan: PlanNode, scope: Scope, select: ast.Select
    ) -> tuple[PlanNode, Scope, ast.Select]:
        predicts: list[ast.Predict] = []

        def collect(expr: ast.Expr | None) -> None:
            if expr is None:
                return
            for node in expr.walk():
                if isinstance(node, ast.Predict):
                    predicts.append(node)

        for item in select.items:
            collect(item.expr)
        collect(select.where)
        collect(select.having)
        for g in select.group_by:
            collect(g)
        for o in select.order_by:
            collect(o.expr)

        if not predicts:
            return plan, scope, select

        replacement: dict[int, ast.ColumnRef] = {}
        signature_to_column: dict[str, ast.ColumnRef] = {}
        for index, predict in enumerate(predicts):
            key = str(predict)
            if key in signature_to_column:
                replacement[id(predict)] = signature_to_column[key]
                continue
            plan, scope, column_ref = self._append_predict(
                plan, scope, predict, index
            )
            signature_to_column[key] = column_ref
            replacement[id(predict)] = column_ref

        rewritten = _replace_exprs(select, replacement)
        return plan, scope, rewritten

    def _append_predict(
        self, plan: PlanNode, scope: Scope, predict: ast.Predict, index: int
    ) -> tuple[PlanNode, Scope, ast.ColumnRef]:
        signature = self.context.resolve_model(predict.model_name)
        if predict.args:
            arg_exprs = [self._bind_expr(a, scope) for a in predict.args]
            if len(arg_exprs) != len(signature.input_names):
                raise BindError(
                    f"model {predict.model_name!r} expects "
                    f"{len(signature.input_names)} inputs, got {len(arg_exprs)}"
                )
        else:
            # PREDICT(model): bind the model's features by name against scope.
            arg_exprs = []
            for feature_name in signature.input_names:
                position, dtype = scope.resolve(feature_name, None)
                arg_exprs.append(BoundColumn(position, dtype, feature_name))

        input_indexes: list[int] = []
        if all(isinstance(e, BoundColumn) for e in arg_exprs):
            input_indexes = [e.index for e in arg_exprs]  # type: ignore[attr-defined]
        else:
            # Compute non-trivial arguments as extra projected columns.
            passthrough = [
                BoundColumn(i, e.dtype, e.name)
                for i, e in enumerate(scope.entries)
            ]
            names = [e.name for e in scope.entries]
            arg_names = [
                f"__predict{index}_arg{i}" for i in range(len(arg_exprs))
            ]
            plan = ProjectNode(plan, passthrough + arg_exprs, names + arg_names)
            base = len(scope.entries)
            new_scope = Scope(list(scope.entries))
            for i, (arg_name, arg) in enumerate(zip(arg_names, arg_exprs)):
                new_scope.add(None, arg_name, arg.dtype)
                input_indexes.append(base + i)
            scope = new_scope

        # Choose which model output this expression refers to.
        if predict.output is not None:
            wanted = predict.output.lower()
            chosen = [
                f for f in signature.output_fields if f.name.lower() == wanted
            ]
            if not chosen:
                raise BindError(
                    f"model {predict.model_name!r} has no output "
                    f"{predict.output!r}"
                )
            output_fields = [
                Field(f"__predict{index}_{f.name}", f.dtype) for f in chosen
            ]
            target = output_fields[0]
        else:
            first = signature.output_fields[0]
            output_fields = [
                Field(f"__predict{index}_{first.name}", first.dtype)
            ]
            target = output_fields[0]

        plan = PredictNode(plan, predict.model_name, input_indexes, output_fields)
        new_scope = Scope(list(scope.entries))
        for f in output_fields:
            new_scope.add(None, f.name, f.dtype)
        return plan, new_scope, ast.ColumnRef(target.name)

    # -- IN (SELECT ...) lifting -------------------------------------------
    def _lift_in_subqueries(
        self, plan: PlanNode, scope: Scope, select: ast.Select
    ) -> tuple[PlanNode, Scope, ast.Select]:
        def contains_in_query(expr: ast.Expr | None) -> bool:
            if expr is None:
                return False
            return any(isinstance(n, ast.InQuery) for n in expr.walk())

        for item in select.items:
            if contains_in_query(item.expr):
                raise BindError(
                    "IN (SELECT ...) is only supported in the WHERE clause"
                )
        if contains_in_query(select.having) or any(
            contains_in_query(g) for g in select.group_by
        ):
            raise BindError(
                "IN (SELECT ...) is only supported in the WHERE clause"
            )
        if select.where is None or not contains_in_query(select.where):
            return plan, scope, select

        conjuncts = _ast_conjuncts(select.where)
        remaining: list[ast.Expr] = []
        counter = 0
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.InQuery):
                plan, scope, replacement = self._append_in_subquery(
                    plan, scope, conjunct, counter
                )
                counter += 1
                if replacement is not None:
                    remaining.append(replacement)
                continue
            if contains_in_query(conjunct):
                raise BindError(
                    "IN (SELECT ...) must be a top-level AND-conjunct of "
                    "the WHERE clause"
                )
            remaining.append(conjunct)

        new_where: ast.Expr | None = None
        for conjunct in remaining:
            new_where = (
                conjunct
                if new_where is None
                else ast.BinaryOp("AND", new_where, conjunct)
            )
        rewritten = ast.Select(
            items=select.items,
            from_clause=select.from_clause,
            where=new_where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
            ctes=select.ctes,
        )
        return plan, scope, rewritten

    def _append_in_subquery(
        self, plan: PlanNode, scope: Scope, in_query: ast.InQuery, index: int
    ) -> tuple[PlanNode, Scope, ast.Expr | None]:
        subplan = self.bind_query(in_query.query)
        if len(subplan.fields) != 1:
            raise BindError(
                "IN (SELECT ...) subquery must produce exactly one column"
            )
        subplan = DistinctNode(subplan)
        operand = self._bind_expr(in_query.operand, scope)
        hidden_name = f"__inq{index}"
        sub_field = subplan.fields[0]
        sub_column = BoundColumn(
            len(scope.entries), sub_field.dtype, hidden_name
        )
        condition = self._make_binary("=", operand, sub_column)
        join_type = "LEFT" if in_query.negated else "INNER"
        plan = JoinNode(plan, subplan, join_type, condition)
        new_scope = Scope(list(scope.entries))
        new_scope.add(None, hidden_name, sub_field.dtype)
        if in_query.negated:
            # Anti-join: keep left rows with no match. (Simplification vs
            # full SQL NOT IN: a NULL-containing subquery does not veto all
            # rows here; documented in DESIGN.md.)
            return plan, new_scope, ast.IsNull(ast.ColumnRef(hidden_name))
        return plan, new_scope, None

    # -- scalar subquery lifting ------------------------------------------
    def _lift_scalar_subqueries(
        self, plan: PlanNode, scope: Scope, select: ast.Select
    ) -> tuple[PlanNode, Scope, ast.Select]:
        def collect(expr: ast.Expr | None) -> list[ast.ScalarSubquery]:
            if expr is None:
                return []
            return [
                n for n in expr.walk() if isinstance(n, ast.ScalarSubquery)
            ]

        occurrences: list[tuple[ast.ScalarSubquery, str]] = []
        for item in select.items:
            occurrences += [(n, "item") for n in collect(item.expr)]
        occurrences += [(n, "where") for n in collect(select.where)]
        occurrences += [(n, "having") for n in collect(select.having)]
        for order in select.order_by:
            occurrences += [(n, "order") for n in collect(order.expr)]
        for g in select.group_by:
            if collect(g):
                raise BindError(
                    "scalar subqueries are not supported in GROUP BY"
                )
        if not occurrences:
            return plan, scope, select

        aggregate_select = any(
            self._contains_aggregate(item.expr) for item in select.items
        ) or (select.having is not None) or bool(select.group_by)

        replacement: dict[int, ast.Expr] = {}
        signature_to_name: dict[str, str] = {}
        for node, context in occurrences:
            key = str(node)
            if key not in signature_to_name:
                plan, scope, name = self._append_scalar_subquery(
                    plan, scope, node, len(signature_to_name)
                )
                signature_to_name[key] = name
            ref: ast.Expr = ast.ColumnRef(signature_to_name[key])
            if aggregate_select and context in ("item", "having", "order"):
                # Post-aggregation contexts see the subquery value through
                # MIN(): the value is constant per group (it is LEFT-joined
                # on the group's correlation keys), so MIN is exact.
                ref = ast.FunctionCall("MIN", [ref])
            replacement[id(node)] = ref
        rewritten = _replace_exprs(select, replacement)
        for old_item, new_item in zip(select.items, rewritten.items):
            if new_item.alias is None and isinstance(
                old_item.expr, ast.ScalarSubquery
            ):
                new_item.alias = _scalar_subquery_name(old_item.expr)
        return plan, scope, rewritten

    def _append_scalar_subquery(
        self,
        plan: PlanNode,
        scope: Scope,
        node: ast.ScalarSubquery,
        index: int,
    ) -> tuple[PlanNode, Scope, str]:
        hidden_name = f"__sq{index}"
        query = node.query
        # Uncorrelated first: the subquery binds on its own.
        try:
            subplan = self.bind_query(query)
        except BindError:
            subplan = None
        if subplan is not None:
            if len(subplan.fields) != 1:
                raise BindError(
                    "scalar subquery must produce exactly one column"
                )
            if not self._scalar_shape_ok(query):
                raise BindError(
                    "scalar subquery must be an aggregate without GROUP BY "
                    "or use LIMIT 1"
                )
            dtype = subplan.fields[0].dtype
            subplan = ProjectNode(
                subplan, [BoundColumn(0, dtype, hidden_name)], [hidden_name]
            )
            # LEFT join on a literal TRUE condition: every outer row picks up
            # the single subquery row, or NULL when it produced no rows.
            condition = BoundLiteral(DataType.BOOLEAN, True)
            plan = JoinNode(plan, subplan, "LEFT", condition)
            new_scope = Scope(list(scope.entries))
            new_scope.add(None, hidden_name, dtype)
            return plan, new_scope, hidden_name
        return self._append_correlated_scalar(plan, scope, query, hidden_name)

    def _scalar_shape_ok(self, query: ast.Statement) -> bool:
        limit = getattr(query, "limit", None)
        if limit is not None and limit <= 1:
            return True
        if isinstance(query, ast.Select) and not query.group_by:
            return any(
                self._contains_aggregate(item.expr) for item in query.items
            )
        return False

    def _append_correlated_scalar(
        self,
        plan: PlanNode,
        scope: Scope,
        query: ast.Statement,
        hidden_name: str,
    ) -> tuple[PlanNode, Scope, str]:
        if not isinstance(query, ast.Select):
            raise BindError(
                "correlated scalar subquery must be a plain SELECT"
            )
        if (
            query.group_by
            or query.having is not None
            or query.order_by
            or query.limit is not None
            or query.offset is not None
            or query.distinct
            or query.ctes
        ):
            raise BindError(
                "correlated scalar subquery must be a plain aggregate "
                "SELECT without GROUP BY/HAVING/ORDER BY/LIMIT/DISTINCT"
            )
        if len(query.items) != 1:
            raise BindError("scalar subquery must produce exactly one column")
        if not self._contains_aggregate(query.items[0].expr):
            raise BindError(
                "correlated scalar subquery must compute an aggregate"
            )
        sub_plan, sub_scope = self._bind_from(query.from_clause)
        del sub_plan  # probe bind only: classifies conjuncts below

        local_asts: list[ast.Expr] = []
        pairs: list[tuple[ast.Expr, ast.Expr]] = []  # (outer, inner) keys
        conjuncts = (
            _ast_conjuncts(query.where) if query.where is not None else []
        )
        for conjunct in conjuncts:
            try:
                self._bind_boolean(conjunct, sub_scope)
                local_asts.append(conjunct)
                continue
            except BindError:
                pass
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
            ):
                raise BindError(
                    f"cannot decorrelate scalar subquery predicate "
                    f"{conjunct}: only equality correlations are supported"
                )
            for inner_ast, outer_ast in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                try:
                    self._bind_expr(inner_ast, sub_scope)
                    self._bind_expr(outer_ast, scope)
                except BindError:
                    continue
                pairs.append((outer_ast, inner_ast))
                break
            else:
                raise BindError(
                    f"cannot decorrelate scalar subquery predicate "
                    f"{conjunct}"
                )
        if not pairs:
            raise BindError(
                "scalar subquery is neither uncorrelated nor an "
                "equality-correlated aggregate"
            )

        # Decorrelate: group the subquery by its correlation keys, then
        # LEFT-join the grouped result on outer key = inner key. This is the
        # same pre-aggregated-join plan the rewritten TPC-H templates use,
        # so results (including float rounding) match bit-for-bit.
        key_items = [
            ast.SelectItem(inner_ast, f"{hidden_name}k{i}")
            for i, (_, inner_ast) in enumerate(pairs)
        ]
        local_where: ast.Expr | None = None
        for conjunct in local_asts:
            local_where = (
                conjunct
                if local_where is None
                else ast.BinaryOp("AND", local_where, conjunct)
            )
        derived = ast.Select(
            items=key_items + [ast.SelectItem(query.items[0].expr, hidden_name)],
            from_clause=query.from_clause,
            where=local_where,
            group_by=[inner_ast for _, inner_ast in pairs],
        )
        subplan = self.bind_select(derived)

        left_width = len(scope.entries)
        condition: BoundExpr | None = None
        for i, (outer_ast, _) in enumerate(pairs):
            outer_bound = self._bind_expr(outer_ast, scope)
            key_field = subplan.fields[i]
            right_col = BoundColumn(
                left_width + i, key_field.dtype, key_field.name
            )
            eq = self._make_binary("=", outer_bound, right_col)
            condition = (
                eq
                if condition is None
                else BoundBinary("AND", condition, eq, DataType.BOOLEAN)
            )
        plan = JoinNode(plan, subplan, "LEFT", fold_constants(condition))
        new_scope = Scope(list(scope.entries))
        for f in subplan.fields:
            new_scope.add(None, f.name, f.dtype)
        return plan, new_scope, hidden_name

    # -- EXISTS lifting ----------------------------------------------------
    def _lift_exists(
        self, plan: PlanNode, scope: Scope, select: ast.Select
    ) -> tuple[PlanNode, Scope, ast.Select]:
        def contains(expr: ast.Expr | None) -> bool:
            if expr is None:
                return False
            return any(isinstance(n, ast.Exists) for n in expr.walk())

        misplaced = (
            any(contains(item.expr) for item in select.items)
            or contains(select.having)
            or any(contains(g) for g in select.group_by)
            or any(contains(o.expr) for o in select.order_by)
        )
        if misplaced:
            raise BindError(
                "EXISTS is only supported in the WHERE clause"
            )
        if select.where is None or not contains(select.where):
            return plan, scope, select

        remaining: list[ast.Expr] = []
        for conjunct in _ast_conjuncts(select.where):
            if isinstance(conjunct, ast.Exists):
                plan = self._append_exists(plan, scope, conjunct)
                continue
            if contains(conjunct):
                raise BindError(
                    "EXISTS must be a top-level AND-conjunct of the "
                    "WHERE clause"
                )
            remaining.append(conjunct)

        new_where: ast.Expr | None = None
        for conjunct in remaining:
            new_where = (
                conjunct
                if new_where is None
                else ast.BinaryOp("AND", new_where, conjunct)
            )
        rewritten = ast.Select(
            items=select.items,
            from_clause=select.from_clause,
            where=new_where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            limit=select.limit,
            offset=select.offset,
            distinct=select.distinct,
            ctes=select.ctes,
        )
        return plan, scope, rewritten

    def _append_exists(
        self, plan: PlanNode, scope: Scope, exists: ast.Exists
    ) -> PlanNode:
        sub = exists.query
        if not isinstance(sub, ast.Select):
            raise BindError("EXISTS subquery must be a plain SELECT")
        if (
            sub.group_by
            or sub.having is not None
            or sub.order_by
            or sub.limit is not None
            or sub.offset is not None
            or sub.distinct
            or sub.ctes
        ):
            raise BindError(
                "EXISTS subquery must be a plain SELECT without "
                "GROUP BY/HAVING/ORDER BY/LIMIT/DISTINCT"
            )
        if any(
            self._contains_aggregate(item.expr)
            for item in sub.items
            if not isinstance(item.expr, ast.Star)
        ):
            raise BindError(
                "aggregates are not supported in an EXISTS subquery"
            )
        sub_plan, sub_scope = self._bind_from(sub.from_clause)

        # Split the subquery's WHERE into conjuncts the subquery can evaluate
        # alone (filter below the join) and correlated conjuncts referencing
        # the outer scope (the SEMI/ANTI join condition; positions are outer
        # columns then inner, exactly the JoinNode condition space).
        local: list[BoundExpr] = []
        correlated: list[BoundExpr] = []
        combined = scope.extend(sub_scope)
        conjuncts = _ast_conjuncts(sub.where) if sub.where is not None else []
        for conjunct in conjuncts:
            try:
                local.append(self._bind_boolean(conjunct, sub_scope))
                continue
            except BindError:
                pass
            correlated.append(self._bind_boolean(conjunct, combined))

        if local:
            predicate = local[0]
            for extra in local[1:]:
                predicate = BoundBinary(
                    "AND", predicate, extra, DataType.BOOLEAN
                )
            sub_plan = FilterNode(sub_plan, fold_constants(predicate))
        condition: BoundExpr | None = None
        for extra in correlated:
            condition = (
                extra
                if condition is None
                else BoundBinary("AND", condition, extra, DataType.BOOLEAN)
            )
        if condition is not None:
            condition = fold_constants(condition)
        join_type = "ANTI" if exists.negated else "SEMI"
        return JoinNode(plan, sub_plan, join_type, condition)

    # -- window function lifting -------------------------------------------
    def _lift_windows(
        self, plan: PlanNode, scope: Scope, select: ast.Select
    ) -> tuple[PlanNode, Scope, ast.Select]:
        collected: list[ast.WindowFunction] = []

        def collect(expr: ast.Expr | None) -> None:
            if expr is None:
                return
            for n in expr.walk():
                if isinstance(n, ast.WindowFunction):
                    collected.append(n)

        for item in select.items:
            collect(item.expr)
        for order in select.order_by:
            collect(order.expr)
        if not collected:
            return plan, scope, select

        replacement: dict[int, ast.Expr] = {}
        signature_to_name: dict[str, str] = {}
        for node in collected:
            key = str(node)
            if key not in signature_to_name:
                plan, scope, name = self._append_window(
                    plan, scope, node, len(signature_to_name)
                )
                signature_to_name[key] = name
            replacement[id(node)] = ast.ColumnRef(signature_to_name[key])
        rewritten = _replace_exprs(select, replacement)
        for old_item, new_item in zip(select.items, rewritten.items):
            if new_item.alias is None and isinstance(
                old_item.expr, ast.WindowFunction
            ):
                new_item.alias = old_item.expr.name.lower()
        return plan, scope, rewritten

    def _append_window(
        self,
        plan: PlanNode,
        scope: Scope,
        win: ast.WindowFunction,
        index: int,
    ) -> tuple[PlanNode, Scope, str]:
        name = win.name.upper()
        output_name = f"__win{index}"
        for sub in win.children():
            for n in sub.walk():
                if isinstance(n, ast.WindowFunction):
                    raise BindError("window functions cannot be nested")
                if isinstance(n, ast.FunctionCall) and fn.is_aggregate(
                    n.name
                ):
                    raise BindError(
                        "aggregates are not allowed inside window functions"
                    )
        arg: BoundExpr | None = None
        if name in ("ROW_NUMBER", "RANK"):
            if win.args:
                raise BindError(f"{name}() takes no arguments")
            dtype = DataType.INTEGER
        elif name == "SUM":
            if len(win.args) != 1:
                raise BindError("SUM(...) OVER takes exactly one argument")
            arg = self._bind_expr(win.args[0], scope)
            if not arg.dtype.is_numeric:
                raise BindError("SUM(...) OVER requires a numeric argument")
            dtype = fn.AGGREGATE_FUNCTIONS["SUM"].return_type(arg.dtype)
        else:
            raise BindError(
                f"unsupported window function {win.name!r} "
                "(supported: ROW_NUMBER, RANK, SUM)"
            )
        partition_exprs = [
            self._bind_expr(e, scope) for e in win.partition_by
        ]
        order_keys = [
            (self._bind_expr(o.expr, scope), o.ascending)
            for o in win.order_by
        ]
        node = WindowNode(
            plan, name, arg, partition_exprs, order_keys, output_name, dtype
        )
        new_scope = Scope(list(scope.entries))
        new_scope.add(None, output_name, dtype)
        return node, new_scope, output_name

    # -- plain (non-aggregate) SELECT ------------------------------------
    def _bind_plain_select(
        self, select: ast.Select, plan: PlanNode, scope: Scope
    ) -> PlanNode:
        exprs, names = self._bind_select_items(select.items, scope)
        output_scope = Scope(
            [ScopeEntry(None, n, e.dtype) for n, e in zip(names, exprs)]
        )

        hidden: list[tuple[BoundExpr, bool]] = []
        sort_keys: list[tuple[int, bool]] = []  # positions into projection
        for order in select.order_by:
            position = self._try_projection_position(
                order.expr, select.items, names, output_scope
            )
            if position is not None:
                sort_keys.append((position, order.ascending))
                continue
            if select.distinct:
                raise BindError(
                    "ORDER BY items must appear in the select list when "
                    "DISTINCT is used"
                )
            bound = self._bind_expr(order.expr, scope)
            hidden.append((bound, order.ascending))
            sort_keys.append((len(exprs) + len(hidden) - 1, order.ascending))

        all_exprs = exprs + [h[0] for h in hidden]
        all_names = names + [f"__sort{i}" for i in range(len(hidden))]
        plan = ProjectNode(plan, [fold_constants(e) for e in all_exprs], all_names)

        if select.distinct:
            plan = DistinctNode(plan)
        if sort_keys:
            keys = [
                (
                    BoundColumn(pos, plan.fields[pos].dtype, plan.fields[pos].name),
                    asc,
                )
                for pos, asc in sort_keys
            ]
            plan = SortNode(plan, keys)
        if hidden:
            keep = [
                BoundColumn(i, f.dtype, f.name)
                for i, f in enumerate(plan.fields[: len(exprs)])
            ]
            plan = ProjectNode(plan, keep, names)
        if select.limit is not None or select.offset is not None:
            plan = LimitNode(plan, select.limit, select.offset or 0)
        return plan

    def _try_projection_position(
        self,
        expr: ast.Expr,
        items: list[ast.SelectItem],
        names: list[str],
        output_scope: Scope,
    ) -> int | None:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(items):
                raise BindError(f"ORDER BY position {expr.value} out of range")
            return position
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            lowered = expr.name.lower()
            for i, n in enumerate(names):
                if n.lower() == lowered:
                    return i
        text = str(expr)
        for i, item in enumerate(items):
            if str(item.expr) == text:
                return i
        return None

    def _bind_select_items(
        self, items: list[ast.SelectItem], scope: Scope
    ) -> tuple[list[BoundExpr], list[str]]:
        exprs: list[BoundExpr] = []
        names: list[str] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                qual = item.expr.table
                for i, entry in enumerate(scope.entries):
                    if entry.name.startswith("__"):
                        continue  # hidden predict/arg columns
                    if qual and (entry.qualifier or "").lower() != qual.lower():
                        continue
                    exprs.append(BoundColumn(i, entry.dtype, entry.name))
                    names.append(entry.name)
                continue
            bound = self._bind_expr(item.expr, scope)
            exprs.append(bound)
            names.append(item.alias or _default_name(item.expr))
        return exprs, names

    # -- aggregate SELECT -------------------------------------------------
    def _bind_aggregate_select(
        self, select: ast.Select, plan: PlanNode, scope: Scope
    ) -> PlanNode:
        group_exprs = [self._bind_expr(g, scope) for g in select.group_by]
        group_names = [_default_name(g) for g in select.group_by]
        group_keys = [str(g) for g in select.group_by]

        # Collect every aggregate call in items, HAVING and ORDER BY.
        agg_calls: dict[str, ast.FunctionCall] = {}

        def collect(expr: ast.Expr | None) -> None:
            if expr is None:
                return
            for node in expr.walk():
                if isinstance(node, ast.FunctionCall) and fn.is_aggregate(
                    node.name
                ):
                    agg_calls.setdefault(str(node), node)

        for item in select.items:
            collect(item.expr)
        collect(select.having)
        for order in select.order_by:
            collect(order.expr)

        specs: list[AggregateSpec] = []
        agg_position: dict[str, int] = {}
        for i, (key, call) in enumerate(agg_calls.items()):
            spec = self._bind_aggregate_call(call, scope, alias=f"__agg{i}")
            agg_position[key] = len(group_exprs) + i
            specs.append(spec)

        plan = AggregateNode(plan, group_exprs, group_names, specs)

        # Post-aggregation scope: group keys by AST text, then aggregates.
        post = _PostAggregateScope(
            group_keys=group_keys,
            group_fields=[(n, e.dtype) for n, e in zip(group_names, group_exprs)],
            agg_position=agg_position,
            agg_fields=[(s.alias, s.dtype) for s in specs],
        )

        if select.having is not None:
            predicate = self._bind_post_aggregate(select.having, post)
            if predicate.dtype is not DataType.BOOLEAN:
                raise BindError("HAVING predicate must be boolean")
            plan = FilterNode(plan, predicate)

        exprs: list[BoundExpr] = []
        names: list[str] = []
        for item in select.items:
            bound = self._bind_post_aggregate(item.expr, post)
            exprs.append(bound)
            names.append(item.alias or _default_name(item.expr))

        output_scope = Scope(
            [ScopeEntry(None, n, e.dtype) for n, e in zip(names, exprs)]
        )
        hidden: list[tuple[BoundExpr, bool]] = []
        sort_keys: list[tuple[int, bool]] = []
        for order in select.order_by:
            position = self._try_projection_position(
                order.expr, select.items, names, output_scope
            )
            if position is not None:
                sort_keys.append((position, order.ascending))
                continue
            bound = self._bind_post_aggregate(order.expr, post)
            hidden.append((bound, order.ascending))
            sort_keys.append((len(exprs) + len(hidden) - 1, order.ascending))

        all_exprs = exprs + [h[0] for h in hidden]
        all_names = names + [f"__sort{i}" for i in range(len(hidden))]
        plan = ProjectNode(plan, all_exprs, all_names)
        if select.distinct:
            plan = DistinctNode(plan)
        if sort_keys:
            keys = [
                (
                    BoundColumn(pos, plan.fields[pos].dtype, plan.fields[pos].name),
                    asc,
                )
                for pos, asc in sort_keys
            ]
            plan = SortNode(plan, keys)
        if hidden:
            keep = [
                BoundColumn(i, f.dtype, f.name)
                for i, f in enumerate(plan.fields[: len(exprs)])
            ]
            plan = ProjectNode(plan, keep, names)
        if select.limit is not None or select.offset is not None:
            plan = LimitNode(plan, select.limit, select.offset or 0)
        return plan

    def _bind_aggregate_call(
        self, call: ast.FunctionCall, scope: Scope, alias: str
    ) -> AggregateSpec:
        agg = fn.AGGREGATE_FUNCTIONS[call.name.upper()]
        if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            if call.name.upper() != "COUNT":
                raise BindError(f"{call.name}(*) is not valid")
            return AggregateSpec("COUNT", None, False, alias, DataType.INTEGER)
        if len(call.args) != 1:
            raise BindError(
                f"aggregate {call.name} takes exactly one argument"
            )
        arg = self._bind_expr(call.args[0], scope)
        dtype = agg.return_type(arg.dtype)
        return AggregateSpec(call.name.upper(), arg, call.distinct, alias, dtype)

    def _bind_post_aggregate(
        self, expr: ast.Expr, post: "_PostAggregateScope"
    ) -> BoundExpr:
        position = post.position_of(expr)
        if position is not None:
            name, dtype = post.field_at(position)
            return BoundColumn(position, dtype, name)
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return BoundLiteral(DataType.TEXT, None)
            return BoundLiteral(infer_type(expr.value), expr.value)
        if isinstance(expr, ast.Parameter):
            return self._bind_parameter(expr)
        if isinstance(expr, ast.UnaryOp):
            inner = self._bind_post_aggregate(expr.operand, post)
            return BoundUnary(expr.op, inner)
        if isinstance(expr, ast.BinaryOp):
            left = self._bind_post_aggregate(expr.left, post)
            right = self._bind_post_aggregate(expr.right, post)
            return self._make_binary(expr.op, left, right)
        if isinstance(expr, ast.FunctionCall) and not fn.is_aggregate(expr.name):
            args = [self._bind_post_aggregate(a, post) for a in expr.args]
            return self._make_function(expr.name, args)
        if isinstance(expr, ast.CaseWhen):
            branches = [
                (
                    self._bind_post_aggregate(c, post),
                    self._bind_post_aggregate(v, post),
                )
                for c, v in expr.branches
            ]
            default = (
                self._bind_post_aggregate(expr.default, post)
                if expr.default is not None
                else None
            )
            return self._make_case(branches, default)
        if isinstance(expr, ast.Cast):
            inner = self._bind_post_aggregate(expr.operand, post)
            return BoundCast(inner, _resolve_type_name(expr.type_name))
        if isinstance(expr, ast.ColumnRef):
            raise BindError(
                f"column {expr} must appear in GROUP BY or inside an aggregate"
            )
        raise BindError(
            f"expression {expr} is not valid after aggregation"
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _bind_boolean(self, expr: ast.Expr, scope: Scope) -> BoundExpr:
        bound = self._bind_expr(expr, scope)
        if bound.dtype is not DataType.BOOLEAN:
            raise BindError(f"expected a boolean predicate, got {bound.dtype}")
        return bound

    def _bind_expr(self, expr: ast.Expr, scope: Scope) -> BoundExpr:
        if isinstance(expr, ast.Literal):
            if expr.value is None:
                return BoundLiteral(DataType.TEXT, None)
            return BoundLiteral(infer_type(expr.value), expr.value)
        if isinstance(expr, ast.Parameter):
            return self._bind_parameter(expr)
        if isinstance(expr, ast.ColumnRef):
            position, dtype = scope.resolve(expr.name, expr.table)
            return BoundColumn(position, dtype, expr.name)
        if isinstance(expr, ast.UnaryOp):
            inner = self._bind_expr(expr.operand, scope)
            if expr.op == "NOT" and inner.dtype is not DataType.BOOLEAN:
                raise BindError("NOT requires a boolean operand")
            if expr.op == "-" and not inner.dtype.is_numeric:
                raise BindError("unary minus requires a numeric operand")
            return BoundUnary(expr.op, inner)
        if isinstance(expr, ast.BinaryOp):
            left = self._bind_expr(expr.left, scope)
            right = self._bind_expr(expr.right, scope)
            return self._make_binary(expr.op, left, right)
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(self._bind_expr(expr.operand, scope), expr.negated)
        if isinstance(expr, ast.Between):
            import copy

            operand = self._bind_expr(expr.operand, scope)
            low = self._bind_expr(expr.low, scope)
            high = self._bind_expr(expr.high, scope)
            lower = self._make_binary(">=", operand, low)
            # The upper bound gets its own copy of the operand: shared
            # subtrees would be visited twice by tree rewrites.
            upper = self._make_binary("<=", copy.deepcopy(operand), high)
            combined = BoundBinary("AND", lower, upper, DataType.BOOLEAN)
            if expr.negated:
                return BoundUnary("NOT", combined)
            return combined
        if isinstance(expr, ast.InList):
            operand = self._bind_expr(expr.operand, scope)
            literals: list[Any] = []
            all_literal = True
            bound_items = [self._bind_expr(i, scope) for i in expr.items]
            for item in bound_items:
                folded = fold_constants(item)
                if isinstance(folded, BoundLiteral) and folded.value is not None:
                    literals.append(folded.value)
                else:
                    all_literal = False
                    break
            if all_literal:
                return BoundInList(operand, literals, expr.negated)
            import copy

            chain: BoundExpr | None = None
            for i, item in enumerate(bound_items):
                # Each equality gets its own operand copy (no shared subtrees).
                this_operand = operand if i == 0 else copy.deepcopy(operand)
                eq = self._make_binary("=", this_operand, item)
                chain = (
                    eq
                    if chain is None
                    else BoundBinary("OR", chain, eq, DataType.BOOLEAN)
                )
            assert chain is not None
            return BoundUnary("NOT", chain) if expr.negated else chain
        if isinstance(expr, ast.Like):
            operand = self._bind_expr(expr.operand, scope)
            pattern = fold_constants(self._bind_expr(expr.pattern, scope))
            if not isinstance(pattern, BoundLiteral) or not isinstance(
                pattern.value, str
            ):
                raise BindError("LIKE pattern must be a string literal")
            return BoundLike(operand, pattern.value, expr.negated)
        if isinstance(expr, ast.CaseWhen):
            branches = [
                (self._bind_boolean(c, scope), self._bind_expr(v, scope))
                for c, v in expr.branches
            ]
            default = (
                self._bind_expr(expr.default, scope)
                if expr.default is not None
                else None
            )
            return self._make_case(branches, default)
        if isinstance(expr, ast.Cast):
            inner = self._bind_expr(expr.operand, scope)
            return BoundCast(inner, _resolve_type_name(expr.type_name))
        if isinstance(expr, ast.FunctionCall):
            if fn.is_aggregate(expr.name):
                raise BindError(
                    f"aggregate {expr.name} is not allowed in this context"
                )
            args = [self._bind_expr(a, scope) for a in expr.args]
            return self._make_function(expr.name, args)
        if isinstance(expr, ast.Predict):
            raise BindError(
                "PREDICT must appear within a SELECT statement (it is lifted "
                "into the plan); standalone expression binding does not "
                "support it"
            )
        if isinstance(expr, ast.InQuery):
            raise BindError(
                "IN (SELECT ...) is only supported as a top-level conjunct "
                "of a SELECT's WHERE clause"
            )
        if isinstance(expr, ast.Exists):
            raise BindError(
                "EXISTS is only supported as a top-level AND-conjunct of a "
                "SELECT's WHERE clause"
            )
        if isinstance(expr, ast.ScalarSubquery):
            raise BindError(
                "scalar subqueries are not supported in this context"
            )
        if isinstance(expr, ast.WindowFunction):
            raise BindError(
                "window functions are only allowed in the select list and "
                "ORDER BY of a non-aggregate SELECT"
            )
        if isinstance(expr, ast.Star):
            raise BindError("'*' is only valid in the select list or COUNT(*)")
        raise BindError(f"unsupported expression {expr!r}")

    def _make_binary(
        self, op: str, left: BoundExpr, right: BoundExpr
    ) -> BoundExpr:
        if op in ("AND", "OR"):
            if (
                left.dtype is not DataType.BOOLEAN
                or right.dtype is not DataType.BOOLEAN
            ):
                raise BindError(f"{op} requires boolean operands")
            return BoundBinary(op, left, right, DataType.BOOLEAN)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            self._check_comparable(left.dtype, right.dtype)
            return BoundBinary(op, left, right, DataType.BOOLEAN)
        if op == "||":
            return BoundBinary(op, left, right, DataType.TEXT)
        if op in ("+", "-"):
            # DATE arithmetic: DATE ± INTEGER → DATE; DATE - DATE → INTEGER.
            if left.dtype is DataType.DATE and right.dtype is DataType.INTEGER:
                return BoundBinary(op, left, right, DataType.DATE)
            if (
                op == "+"
                and left.dtype is DataType.INTEGER
                and right.dtype is DataType.DATE
            ):
                return BoundBinary(op, left, right, DataType.DATE)
            if (
                op == "-"
                and left.dtype is DataType.DATE
                and right.dtype is DataType.DATE
            ):
                return BoundBinary(op, left, right, DataType.INTEGER)
        if op in ("+", "-", "*", "/"):
            try:
                dtype = common_type(left.dtype, right.dtype)
            except TypeMismatchError as exc:
                raise BindError(str(exc)) from None
            if op == "/":
                dtype = DataType.FLOAT
            return BoundBinary(op, left, right, dtype)
        if op == "%":
            if (
                left.dtype is not DataType.INTEGER
                or right.dtype is not DataType.INTEGER
            ):
                raise BindError("% requires integer operands")
            return BoundBinary(op, left, right, DataType.INTEGER)
        raise BindError(f"unknown operator {op!r}")

    def _check_comparable(self, left: DataType, right: DataType) -> None:
        if left is right:
            return
        numeric = {DataType.INTEGER, DataType.FLOAT}
        if left in numeric and right in numeric:
            return
        if {left, right} == {DataType.DATE, DataType.INTEGER}:
            return  # dates are stored as day numbers
        raise BindError(f"cannot compare {left} with {right}")

    def _make_function(self, name: str, args: list[BoundExpr]) -> BoundExpr:
        scalar = fn.lookup_scalar(name)
        scalar.check_arity(len(args))
        dtype = scalar.return_type([a.dtype for a in args])
        return BoundFunction(scalar.name, args, dtype, scalar.impl)

    def _make_case(
        self,
        branches: list[tuple[BoundExpr, BoundExpr]],
        default: BoundExpr | None,
    ) -> BoundExpr:
        value_types = [v.dtype for _, v in branches]
        if default is not None:
            value_types.append(default.dtype)
        dtype = value_types[0]
        for other in value_types[1:]:
            try:
                dtype = common_type(dtype, other)
            except TypeMismatchError as exc:
                raise BindError(f"CASE branches disagree on type: {exc}") from None
        return BoundCase(branches, default, dtype)

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        return any(
            isinstance(node, ast.FunctionCall) and fn.is_aggregate(node.name)
            for node in expr.walk()
        )


@dataclass
class _PostAggregateScope:
    """Columns visible after aggregation: group keys then aggregates."""

    group_keys: list[str]  # AST text of each GROUP BY expression
    group_fields: list[tuple[str, DataType]]
    agg_position: dict[str, int]  # AST text of aggregate call → position
    agg_fields: list[tuple[str, DataType]]

    def position_of(self, expr: ast.Expr) -> int | None:
        text = str(expr)
        for i, key in enumerate(self.group_keys):
            if key == text:
                return i
        return self.agg_position.get(text)

    def field_at(self, position: int) -> tuple[str, DataType]:
        if position < len(self.group_fields):
            return self.group_fields[position]
        return self.agg_fields[position - len(self.group_fields)]


def _ast_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _ast_conjuncts(expr.left) + _ast_conjuncts(expr.right)
    return [expr]


def _scalar_subquery_name(node: ast.ScalarSubquery) -> str:
    # Mirror the Postgres convention: a bare scalar subquery in the select
    # list is named after its inner output expression.
    query = node.query
    if isinstance(query, ast.Select) and len(query.items) == 1:
        item = query.items[0]
        return item.alias or _default_name(item.expr)
    return "subquery"


def _default_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    text = str(expr)
    return text if len(text) <= 40 else "expr"


def _resolve_type_name(type_name: str) -> DataType:
    try:
        return SQL_TYPE_ALIASES[type_name.upper()]
    except KeyError:
        raise BindError(f"unknown type {type_name!r} in CAST") from None


def _replace_exprs(
    select: ast.Select, replacement: dict[int, ast.Expr]
) -> ast.Select:
    """A copy of *select* with the nodes in *replacement* (keyed by ``id``)
    swapped for their replacement expressions (used to lift PREDICT, scalar
    subqueries, and window functions out of the expression trees)."""

    def rewrite(expr: ast.Expr | None) -> ast.Expr | None:
        if expr is None:
            return None
        if id(expr) in replacement:
            return replacement[id(expr)]
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(rewrite(expr.operand), expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(
                rewrite(expr.operand),
                rewrite(expr.low),
                rewrite(expr.high),
                expr.negated,
            )
        if isinstance(expr, ast.InList):
            return ast.InList(
                rewrite(expr.operand),
                [rewrite(i) for i in expr.items],
                expr.negated,
            )
        if isinstance(expr, ast.Like):
            return ast.Like(
                rewrite(expr.operand), rewrite(expr.pattern), expr.negated
            )
        if isinstance(expr, ast.CaseWhen):
            return ast.CaseWhen(
                [(rewrite(c), rewrite(v)) for c, v in expr.branches],
                rewrite(expr.default),
            )
        if isinstance(expr, ast.Cast):
            return ast.Cast(rewrite(expr.operand), expr.type_name)
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                expr.name, [rewrite(a) for a in expr.args], expr.distinct
            )
        if isinstance(expr, ast.InQuery):
            return ast.InQuery(
                rewrite(expr.operand), expr.query, expr.negated
            )
        return expr

    return ast.Select(
        items=[
            ast.SelectItem(rewrite(item.expr), item.alias)
            for item in select.items
        ],
        from_clause=select.from_clause,
        where=rewrite(select.where),
        group_by=[rewrite(g) for g in select.group_by],
        having=rewrite(select.having),
        order_by=[
            ast.OrderItem(rewrite(o.expr), o.ascending) for o in select.order_by
        ],
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
        ctes=select.ctes,
    )
