"""Disk spill for blocking operators under a memory budget.

When ``SET flock.memory_budget`` / ``FLOCK_MEMORY_BUDGET`` is set and a
hash aggregate or hash join input exceeds it, the executor hash-partitions
the input by key and writes each partition — with the columns still in
their compressed encodings — to files under the database's spill
directory, then processes partitions one at a time. The merge orders
results by global first-occurrence / (left, right) row position, which is
what makes spilled execution bit-identical to the in-memory path.

Every spilled batch carries the global row positions of its rows, so a
partition can map its local results back into the serial output order.
"""

from __future__ import annotations

import os
import pickle
from typing import Iterator

import numpy as np

from flock.db.encoding import batch_nbytes  # re-exported for the executor
from flock.db.vector import Batch
from flock.errors import ExecutionError
from flock.observability import metrics

__all__ = ["batch_nbytes", "partition_count", "SpillManager"]

#: Partition-count bounds: at least 2 (or there is nothing to gain), at
#: most 64 (beyond that the per-partition overhead dominates).
MIN_PARTITIONS = 2
MAX_PARTITIONS = 64


def partition_count(total_bytes: int, budget: int) -> int:
    """How many partitions bring ``total_bytes`` under ``budget`` each."""
    needed = -(-total_bytes // max(1, budget))
    return max(MIN_PARTITIONS, min(MAX_PARTITIONS, needed))


class SpillManager:
    """Writes and reads spill files for one operator execution.

    Files live under the database's spill directory and are deleted as
    soon as they are read back (and unconditionally on ``close``), so a
    crash leaves at most one operator's worth of spill garbage, cleaned
    up by the next ``spill_directory()`` user or directory removal.
    """

    def __init__(self, directory: str):
        self.directory = directory
        self._seq = 0
        self._files: list[str] = []

    def spill(self, batch: Batch, rows: np.ndarray) -> str:
        """Write one partition (batch + global row positions); path token."""
        self._seq += 1
        path = os.path.join(
            self.directory, f"part-{os.getpid()}-{id(self)}-{self._seq}.bin"
        )
        payload = pickle.dumps(
            (batch.names, batch.columns, rows), protocol=pickle.HIGHEST_PROTOCOL
        )
        with open(path, "wb") as f:
            f.write(payload)
        self._files.append(path)
        registry = metrics()
        registry.counter("spill.partitions").inc()
        registry.counter("spill.bytes_written").inc(len(payload))
        return path

    def load(self, path: str) -> tuple[Batch, np.ndarray]:
        """Read a partition back and delete its file."""
        try:
            with open(path, "rb") as f:
                names, columns, rows = pickle.loads(f.read())
        except OSError as error:
            raise ExecutionError(f"cannot read spill file {path}: {error}")
        try:
            os.unlink(path)
        except OSError:
            pass
        if path in self._files:
            self._files.remove(path)
        return Batch(names, columns), rows

    def close(self) -> None:
        for path in self._files:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._files.clear()

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def partition_rows(part_ids: np.ndarray, partitions: int) -> Iterator[np.ndarray]:
    """Ascending global row positions of each non-empty partition."""
    for p in range(partitions):
        rows = np.nonzero(part_ids == p)[0].astype(np.int64, copy=False)
        if len(rows):
            yield rows


def key_partition_ids(key_rows: list, partitions: int) -> np.ndarray:
    """Deterministic-by-value partition assignment for per-row key tuples.

    Which partition a key lands in does not affect results (the merge
    restores global order), it only needs to be consistent within one
    execution — Python's salted hash is fine.
    """
    return np.fromiter(
        (hash(key) % partitions for key in key_rows),
        dtype=np.int64,
        count=len(key_rows),
    )
