"""Vectorized key formation for the common single-integer-key case.

Hash joins and hash aggregation both form per-row keys; the generic paths
build Python tuples row by row, which dominates the profile once predicates
and projections are vectorized. For a single INTEGER (or DATE — same int64
physical type) key column these helpers do the same work with numpy sorts
and searches, reproducing the documented orderings **bit for bit**:

- :func:`group_single_int` returns groups in first-occurrence order with
  ascending row indexes per group — exactly the dict-insertion order the
  per-row loop produces.
- :func:`join_single_int` returns (left_idx, right_idx) pairs ordered by
  left row, with each left row's matches in ascending right-row order —
  exactly the build-then-probe order of the per-row hash join. NULL keys on
  either side never match.

FLOAT keys stay on the generic path on purpose: Python dict semantics for
NaN (identity-based) differ from numpy sort/unique semantics, and the
generic path is the documented behaviour.
"""

from __future__ import annotations

import numpy as np

from flock.db.encoding import DictionaryVector
from flock.db.types import DataType, python_value
from flock.db.vector import ColumnVector

#: Key dtypes with int64 physical storage and dict-compatible equality.
_INT_KEY_TYPES = (DataType.INTEGER, DataType.DATE)


def group_single_int(
    vector: ColumnVector,
) -> tuple[list[tuple], list[np.ndarray]] | None:
    """First-occurrence-ordered groups of one int64-backed key column.

    Returns ``(keys, indexes)`` — keys as 1-tuples of user-facing Python
    values (None for the NULL group), indexes ascending per group — or None
    when the column is not eligible for the vectorized path.

    Dictionary-encoded TEXT keys are eligible too: the dictionary maps
    values to codes injectively, so grouping by int32 code produces the
    same groups in the same first-occurrence order as grouping by string —
    without decoding a single row.
    """
    if isinstance(vector, DictionaryVector):
        return _group_dict_codes(vector)
    if vector.dtype not in _INT_KEY_TYPES:
        return None
    nulls = vector.nulls
    nn_pos = np.nonzero(~nulls)[0]
    entries: list[tuple[int, tuple, np.ndarray]] = []
    if len(nn_pos):
        uniq, first_idx, inverse = np.unique(
            vector.values[nn_pos], return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        counts = np.bincount(inverse, minlength=len(uniq))
        # Stable sort by group id keeps row positions ascending per group.
        grouped_rows = nn_pos[np.argsort(inverse, kind="stable")].astype(
            np.int64, copy=False
        )
        stops = np.cumsum(counts)
        starts = stops - counts
        first_pos = nn_pos[first_idx]
        for g in range(len(uniq)):
            entries.append(
                (
                    int(first_pos[g]),
                    (python_value(uniq[g], vector.dtype),),
                    grouped_rows[starts[g]:stops[g]],
                )
            )
    if nulls.any():
        null_rows = np.nonzero(nulls)[0].astype(np.int64, copy=False)
        entries.append((int(null_rows[0]), (None,), null_rows))
    entries.sort(key=lambda e: e[0])
    keys = [key for _, key, _ in entries]
    indexes = [rows for _, _, rows in entries]
    return keys, indexes


def _group_dict_codes(
    vector: DictionaryVector,
) -> tuple[list[tuple], list[np.ndarray]]:
    """Group a dictionary-encoded column by its int32 codes (-1 = NULL)."""
    codes = vector.codes
    nulls = codes < 0
    nn_pos = np.nonzero(~nulls)[0]
    entries: list[tuple[int, tuple, np.ndarray]] = []
    if len(nn_pos):
        uniq, first_idx, inverse = np.unique(
            codes[nn_pos], return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        counts = np.bincount(inverse, minlength=len(uniq))
        grouped_rows = nn_pos[np.argsort(inverse, kind="stable")].astype(
            np.int64, copy=False
        )
        stops = np.cumsum(counts)
        starts = stops - counts
        first_pos = nn_pos[first_idx]
        dictionary = vector.dictionary
        for g in range(len(uniq)):
            entries.append(
                (
                    int(first_pos[g]),
                    (python_value(dictionary[uniq[g]], vector.dtype),),
                    grouped_rows[starts[g]:stops[g]],
                )
            )
    if nulls.any():
        null_rows = np.nonzero(nulls)[0].astype(np.int64, copy=False)
        entries.append((int(null_rows[0]), (None,), null_rows))
    entries.sort(key=lambda e: e[0])
    keys = [key for _, key, _ in entries]
    indexes = [rows for _, _, rows in entries]
    return keys, indexes


def group_keys(
    vectors: list[ColumnVector],
) -> tuple[list[tuple], list[np.ndarray]] | None:
    """Vectorized grouping over one or many key columns, or None.

    The single-column form handles int64-backed and dictionary-encoded
    keys; the multi-column form additionally fuses per-column dense codes
    into one int64 key (see :func:`group_multi_int`).
    """
    if len(vectors) == 1:
        return group_single_int(vectors[0])
    return group_multi_int(vectors)


def group_multi_int(
    vectors: list[ColumnVector],
) -> tuple[list[tuple], list[np.ndarray]] | None:
    """First-occurrence-ordered groups over several fused key columns.

    Each eligible column maps injectively onto dense codes — dictionary-
    encoded TEXT already is its codes (+1 so NULL takes 0), int64-backed
    INTEGER/DATE columns are dense-ranked through ``np.unique`` — and the
    per-column codes combine positionally into one int64 key
    (``c0 + c1*K0 + c2*K0*K1 + ...``). Injective per column and disjoint
    per position, the fused key partitions rows exactly like the generic
    Python-tuple dict, so groups and their first-occurrence order are
    reproduced bit for bit. Returns None when any column is ineligible
    (FLOAT/BOOLEAN/plain TEXT) or the fused key space would overflow.
    """
    codes_per: list[np.ndarray] = []
    decoders: list = []
    cards: list[int] = []
    for vector in vectors:
        if isinstance(vector, DictionaryVector):
            codes = vector.codes.astype(np.int64) + 1
            cards.append(len(vector.dictionary) + 1)

            def decode(c, d=vector.dictionary, t=vector.dtype):
                return None if c == 0 else python_value(d[c - 1], t)

        elif vector.dtype in _INT_KEY_TYPES:
            values = np.asarray(vector.values)
            nulls = np.asarray(vector.nulls)
            uniq = np.unique(values[~nulls])
            codes = np.searchsorted(uniq, values).astype(np.int64) + 1
            codes[nulls] = 0
            cards.append(len(uniq) + 1)

            def decode(c, u=uniq, t=vector.dtype):
                return None if c == 0 else python_value(u[c - 1], t)

        else:
            return None
        codes_per.append(codes)
        decoders.append(decode)
    span = 1
    for k in cards:
        span *= k
    if span > 1 << 62:
        return None
    combined = np.zeros(len(vectors[0]), dtype=np.int64)
    mult = 1
    for codes, k in zip(codes_per, cards):
        combined += codes * mult
        mult *= k
    uniq_c, first_idx, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    counts = np.bincount(inverse, minlength=len(uniq_c))
    grouped_rows = np.argsort(inverse, kind="stable").astype(
        np.int64, copy=False
    )
    stops = np.cumsum(counts)
    starts = stops - counts
    entries: list[tuple[int, tuple, np.ndarray]] = []
    for g in range(len(uniq_c)):
        code = int(uniq_c[g])
        key = []
        for decode, k in zip(decoders, cards):
            key.append(decode(code % k))
            code //= k
        entries.append(
            (int(first_idx[g]), tuple(key), grouped_rows[starts[g]:stops[g]])
        )
    entries.sort(key=lambda e: e[0])
    keys = [key for _, key, _ in entries]
    indexes = [rows for _, _, rows in entries]
    return keys, indexes


def join_single_int(
    left_vec: ColumnVector, right_vec: ColumnVector
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Vectorized equi-match of two int64-backed key columns.

    Returns ``(left_idx, right_idx, match_counts)`` where the pairs are
    ordered by left row with ascending right matches per left row, and
    ``match_counts[i]`` is left row *i*'s match count (0 for NULL keys) —
    or None when the key dtypes are not eligible.
    """
    if (
        left_vec.dtype is not right_vec.dtype
        or left_vec.dtype not in _INT_KEY_TYPES
    ):
        return None
    r_present = np.nonzero(~right_vec.nulls)[0]
    r_vals = right_vec.values[r_present]
    order = np.argsort(r_vals, kind="stable")
    sorted_vals = r_vals[order]
    sorted_ids = r_present[order].astype(np.int64, copy=False)
    l_vals = left_vec.values
    lo = np.searchsorted(sorted_vals, l_vals, side="left")
    hi = np.searchsorted(sorted_vals, l_vals, side="right")
    counts = (hi - lo).astype(np.int64)
    if left_vec.nulls.any():
        counts[left_vec.nulls] = 0
    total = int(counts.sum())
    left_idx = np.repeat(
        np.arange(len(l_vals), dtype=np.int64), counts
    )
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    right_idx = sorted_ids[np.repeat(lo.astype(np.int64), counts) + within]
    return left_idx, right_idx, counts
